//! Every worked example of the paper, recomputed and printed next to the
//! paper's figures.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```
//!
//! Sections: Fig. 4 attribute matching (Eqs. 4/5), Fig. 7 possible worlds
//! and both derivations (Eqs. 6–9), Figs. 9–13 SNM adaptations, Fig. 14
//! blocking. The same computations back the `experiments` binary and the
//! integration tests; this example narrates them.
//!
//! All SNM/blocking calls below run on the **interned key path**: keys are
//! rendered once into a `KeyPool` (`Symbol`-backed, see
//! `probdedup::reduction::key::KeyTable`), multi-pass methods sort by
//! precomputed rank from the second pass on, and the key strings printed
//! here are resolved from the pool for display only.

use std::sync::Arc;

use probdedup::decision::combine::{CombinationFunction, WeightedSum};
use probdedup::decision::derive_decision::MatchingWeightDerivation;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::{DecisionBasedModel, SimilarityBasedModel, XTupleDecisionModel};
use probdedup::matching::matrix::compare_xtuples;
use probdedup::matching::pvalue_sim::pvalue_similarity;
use probdedup::matching::value_cmp::ValueComparator;
use probdedup::matching::vector::{compare_tuples, AttributeComparators};
use probdedup::model::world::enumerate_worlds;
use probdedup::paper::{self, rows};
use probdedup::reduction::{
    block_alternatives, conflict_resolved_snm, multipass_snm, ranked_snm, sorting_alternatives,
    ConflictResolution, RankingFunction, WorldSelection,
};
use probdedup::textsim::NormalizedHamming;

fn main() {
    fig4_attribute_matching();
    fig7_worlds_and_derivations();
    fig9_to_13_snm();
    fig14_blocking();
}

fn comparators() -> AttributeComparators {
    AttributeComparators::uniform(&paper::schema(), NormalizedHamming::new())
}

fn fig4_attribute_matching() {
    println!("=== Fig. 4 / Section IV-A: attribute value matching ===");
    let r1 = paper::fig4_r1();
    let r2 = paper::fig4_r2();
    let t11 = &r1.tuples()[0];
    let t22 = &r2.tuples()[1];
    let cmp = ValueComparator::text(NormalizedHamming::new());

    let sim_name = pvalue_similarity(t11.value(0), t22.value(0), &cmp);
    let sim_job = pvalue_similarity(t11.value(1), t22.value(1), &cmp);
    println!("sim(t11.name, t22.name) = {sim_name:.3}   (paper: 0.9)");
    println!("sim(t11.job,  t22.job)  = {sim_job:.5}  (paper: 0.59, rounded from 53/90)");

    let c = compare_tuples(t11, t22, &comparators());
    let phi = WeightedSum::new([0.8, 0.2]).expect("weights");
    println!(
        "φ(c⃗) = 0.8·{:.3} + 0.2·{:.5} = {:.4}   (paper: 0.838)",
        c[0],
        c[1],
        phi.combine(&c)
    );
    println!();
}

fn fig7_worlds_and_derivations() {
    println!("=== Fig. 7 / Section IV-B: possible worlds of (t32, t42) ===");
    let r34 = paper::r34();
    let t32 = r34.get(rows::T32).expect("t32").clone();
    let t42 = r34.get(rows::T42).expect("t42").clone();
    let pair = [t32.clone(), t42.clone()];

    let worlds = enumerate_worlds(&pair, 100).expect("8 worlds");
    println!("{} possible worlds:", worlds.len());
    for (i, w) in worlds.iter().enumerate() {
        let desc: Vec<String> = w
            .choices
            .iter()
            .zip(["t32", "t42"])
            .map(|(c, l)| match c {
                Some(a) => format!("{l}={}", a + 1),
                None => format!("{l}=∅"),
            })
            .collect();
        println!(
            "  I{} [{}]  P = {:.2}",
            i + 1,
            desc.join(", "),
            w.probability
        );
    }
    let pb = probdedup::model::condition::existence_event_probability(&pair);
    println!("P(B) = {pb:.2}   (paper: 0.72)");

    let matrix = compare_xtuples(&t32, &t42, &comparators());
    let phi: Arc<dyn CombinationFunction> = Arc::new(WeightedSum::new([0.8, 0.2]).expect("w"));

    let sim_model = SimilarityBasedModel::new(
        phi.clone(),
        Arc::new(ExpectedSimilarity),
        Thresholds::new(0.4, 0.7).expect("thresholds"),
    );
    let d = sim_model.decide(&t32, &t42, &matrix);
    println!(
        "similarity-based (Eq. 6): sim(t32, t42) = {:.6} = 7/15 → {}   (paper: 7/15)",
        d.similarity, d.class
    );

    let dec_model = DecisionBasedModel::new(
        phi,
        Thresholds::new(0.4, 0.7).expect("inner"),
        Arc::new(MatchingWeightDerivation::new()),
        Thresholds::new(0.5, 2.0).expect("outer"),
    );
    let d = dec_model.decide(&t32, &t42, &matrix);
    println!(
        "decision-based (Eqs. 7-9): P(m)/P(u) = {:.2} → {}   (paper: 0.75)",
        d.similarity, d.class
    );
    println!();
}

fn fig9_to_13_snm() {
    let r34 = paper::r34();
    let tuples = r34.xtuples();
    let spec = paper::sorting_key();
    let labels = ["t31", "t32", "t41", "t42", "t43"];
    let show = |pairs: &[(usize, usize)]| -> String {
        pairs
            .iter()
            .map(|&(i, j)| format!("({}, {})", labels[i], labels[j]))
            .collect::<Vec<_>>()
            .join(", ")
    };

    println!("=== Fig. 9 / Section V-A.1: multi-pass over possible worlds ===");
    // Keys are interned once before the first pass; pass 2 is sort-only
    // (zero key renders — see reduction's interned_oracle tests).
    let mp = multipass_snm(tuples, &spec, 2, WorldSelection::TopK(2));
    for (world, order) in &mp.passes {
        let keys: Vec<String> = order
            .iter()
            .map(|e| format!("{}:{}", e.key, labels[e.tuple]))
            .collect();
        println!("  world P={:.4}: {}", world.probability, keys.join("  "));
    }
    println!("  union of matchings: {}", show(mp.pairs.pairs()));

    println!("=== Fig. 10 / Section V-A.2: conflict-resolved certain keys ===");
    let (pairs, order) = conflict_resolved_snm(
        tuples,
        &spec,
        2,
        ConflictResolution::MostProbableAlternative,
    );
    let keys: Vec<String> = order
        .iter()
        .map(|e| format!("{}:{}", e.key, labels[e.tuple]))
        .collect();
    println!("  sorted keys: {}", keys.join("  "));
    println!("  matchings: {}", show(pairs.pairs()));

    println!("=== Fig. 11/12 / Section V-A.3: sorting alternatives ===");
    let sa = sorting_alternatives(tuples, &spec, 2);
    let keys: Vec<String> = sa
        .order
        .iter()
        .map(|e| format!("{}:{}", e.key, labels[e.tuple]))
        .collect();
    println!("  collapsed sorted entries: {}", keys.join("  "));
    println!(
        "  matchings (each executed once via the Fig. 12 matrix): {}",
        show(sa.pairs.pairs())
    );
    println!("  (paper: five matchings)");

    println!("=== Fig. 13 / Section V-A.4: uncertain keys + ranking ===");
    for t in tuples {
        let keys = spec.xtuple_keys(t);
        let rendered: Vec<String> = keys.iter().map(|(k, p)| format!("{k} ({p:.1})")).collect();
        println!("  {}: {}", t.label().unwrap_or("?"), rendered.join(", "));
    }
    let (pairs, order) = ranked_snm(tuples, &spec, 2, RankingFunction::MostProbableKey);
    let ranked: Vec<&str> = order.iter().map(|&i| labels[i]).collect();
    println!(
        "  ranked order: {}   (paper: t32, t31, t41, t43, t42)",
        ranked.join(", ")
    );
    println!("  matchings: {}", show(pairs.pairs()));
    println!();
}

fn fig14_blocking() {
    println!("=== Fig. 14 / Section V-B: blocking with alternative keys ===");
    let r34 = paper::r34();
    let labels = ["t31", "t32", "t41", "t42", "t43"];
    let r = block_alternatives(r34.xtuples(), &paper::blocking_key());
    for (key, members) in &r.blocks {
        let names: Vec<&str> = members.iter().map(|&i| labels[i]).collect();
        println!("  block {key:>2}: {}", names.join(", "));
    }
    let shown: Vec<String> = r
        .pairs
        .pairs()
        .iter()
        .map(|&(i, j)| format!("({}, {})", labels[i], labels[j]))
        .collect();
    println!(
        "  matchings: {}   (paper: three matchings)",
        shown.join(", ")
    );
}
