//! Consolidating two sky-survey catalogs — the paper's motivating scenario
//! ("for example for unifying data produced by different space telescopes",
//! Section I; astronomy's embrace of uncertainty is reference [1]).
//!
//! ```text
//! cargo run --example telescope_catalog
//! ```
//!
//! Two synthetic telescope catalogs observe the same sky objects. Each
//! records a designation (noisy), an uncertain **classification** (a
//! categorical distribution over object classes — exactly attribute-level
//! probabilistic data), a region, and a detection confidence (tuple-level
//! membership probability). We deduplicate across the catalogs with
//! per-alternative blocking and a decision-based derivation, then measure
//! against the ground truth.

use std::sync::Arc;

use probdedup::core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_decision::MatchingWeightDerivation;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::DecisionBasedModel;
use probdedup::eval::{ConfusionCounts, EffectivenessMetrics, ReductionMetrics, Table};
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::stats::RelationStats;
use probdedup::reduction::{KeyPart, KeySpec};
use probdedup::textsim::JaroWinkler;

fn star_dictionaries() -> Dictionaries {
    // Designations from historic catalogs; classes; sky regions.
    let designations: Vec<String> = (0..400)
        .map(|i| format!("NGC-{:04}", 40 * i + i * i % 97))
        .chain((0..200).map(|i| format!("HD-{:05}", 137 * i + 11)))
        .collect();
    let classes = [
        "spiral galaxy",
        "elliptical galaxy",
        "lenticular galaxy",
        "irregular galaxy",
        "open cluster",
        "globular cluster",
        "planetary nebula",
        "emission nebula",
        "reflection nebula",
        "supernova remnant",
        "quasar",
        "variable star",
        "binary star",
        "white dwarf",
        "red giant",
    ];
    let regions = [
        "Andromeda",
        "Orion",
        "Cygnus",
        "Lyra",
        "Draco",
        "Perseus",
        "Cassiopeia",
        "Sagittarius",
        "Scorpius",
        "Centaurus",
        "Carina",
        "Vela",
        "Pegasus",
    ];
    Dictionaries::new(
        &designations.iter().map(String::as_str).collect::<Vec<_>>(),
        &classes,
        &regions,
    )
}

fn main() {
    // Two "telescopes" observing 400 objects: noisy designations,
    // uncertain classifications, detection confidences < 1.
    let cfg = DatasetConfig {
        entities: 400,
        sources: 2,
        presence_rate: 0.85,
        extra_copy_rate: 0.05,
        typo_rate: 0.25,
        missing_rate: 0.08,
        uncertainty_rate: 0.6, // classifications are usually soft
        truth_in_support_rate: 0.9,
        xtuple_rate: 0.25,
        maybe_rate: 0.35, // detection confidence
        seed: 2026,
        ..DatasetConfig::default()
    };
    let ds = generate(&star_dictionaries(), &cfg);
    println!(
        "catalog A: {} detections, catalog B: {} detections",
        ds.relations[0].len(),
        ds.relations[1].len()
    );
    println!("\nuncertainty profile of the combined catalog:");
    println!("{}", RelationStats::for_xrelation(&ds.combined()));

    // Blocking key: first 4 characters of the designation + first 2 of the
    // class; every alternative contributes a key (Fig. 14 style).
    let spec = KeySpec::new(vec![KeyPart::prefix(0, 4), KeyPart::prefix(1, 2)]);

    // Decision-based derivation (the paper's recommendation for
    // probabilistic techniques): classify each alternative pair, derive
    // P(m)/P(u).
    let pipeline = DedupPipeline::builder()
        .comparators(AttributeComparators::uniform(
            &ds.schema,
            JaroWinkler::new(),
        ))
        .model(Arc::new(DecisionBasedModel::new(
            Arc::new(WeightedSum::normalized([3.0, 1.0, 1.0, 1.0]).expect("weights")),
            Thresholds::new(0.75, 0.9).expect("inner"),
            Arc::new(MatchingWeightDerivation::with_cap(1e6)),
            Thresholds::new(0.8, 3.0).expect("outer"),
        )))
        .reduction(ReductionStrategy::BlockingAlternatives { spec })
        .threads(4)
        .build();

    let sources: Vec<&probdedup::model::relation::XRelation> = ds.relations.iter().collect();
    let result = pipeline.run(&sources).expect("compatible catalogs");

    // Verification (Section III-E) against the generator's ground truth.
    let truth = ds.truth.true_pairs();
    let n = result.relation.len();
    let candidate_set: std::collections::HashSet<(usize, usize)> =
        result.decisions.iter().map(|d| d.pair).collect();
    let rm = ReductionMetrics::evaluate(&candidate_set, &truth, n);
    let em = EffectivenessMetrics::from_counts(&ConfusionCounts::from_pair_sets(
        &result.match_pair_set(),
        &truth,
        n,
    ));

    let mut table = Table::new(&["stage", "value"]);
    table.row(&["true duplicate pairs", &truth.len().to_string()]);
    table.row(&["candidate pairs", &result.candidates.to_string()]);
    table.row(&[
        "pairs completeness",
        &format!("{:.3}", rm.pairs_completeness),
    ]);
    table.row(&["reduction ratio", &format!("{:.4}", rm.reduction_ratio)]);
    table.row(&["matches", &result.matches().count().to_string()]);
    table.row(&[
        "possible matches",
        &result.possible_matches().count().to_string(),
    ]);
    table.row(&["precision", &format!("{:.3}", em.precision)]);
    table.row(&["recall", &format!("{:.3}", em.recall)]);
    table.row(&["F1", &format!("{:.3}", em.f1)]);
    println!("\n{table}");

    println!("\nlargest consolidated objects:");
    let mut clusters = result.clusters.clone();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for cluster in clusters.iter().take(5) {
        let members: Vec<String> = cluster
            .iter()
            .map(|&r| {
                let h = result.handle(r);
                let t = result.relation.get(r).expect("row");
                let name = t.alternatives()[0].value(0);
                format!("{h}≈{name}")
            })
            .collect();
        println!("  {{{}}}", members.join(", "));
    }
}
