//! Quickstart: deduplicate the paper's two example relations end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds ℛ1 and ℛ2 (Fig. 4 of Panse et al., ICDE 2010), runs the full
//! pipeline — preparation, search-space reduction, expected-similarity
//! matching (Eq. 5), similarity-based x-tuple decisions (Eq. 6) — and
//! prints the matches, possible matches and duplicate clusters.

use std::sync::Arc;

use probdedup::core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::paper;
use probdedup::textsim::NormalizedHamming;

fn main() {
    // The paper's probabilistic relations (Fig. 4), converted to the
    // x-tuple view the pipeline consumes.
    let r1 = paper::fig4_r1().to_x_relation();
    let r2 = paper::fig4_r2().to_x_relation();
    println!("ℛ1 ({} tuples) and ℛ2 ({} tuples)", r1.len(), r2.len());
    for (label, r) in [("ℛ1", &r1), ("ℛ2", &r2)] {
        for (i, t) in r.xtuples().iter().enumerate() {
            println!("  {label}[{i}] = {t}");
        }
    }

    // φ(c⃗) = 0.8·c_name + 0.2·c_job — the paper's combination function —
    // over normalized-Hamming attribute matching, with thresholds
    // T_λ = 0.6, T_μ = 0.8.
    let pipeline = DedupPipeline::builder()
        .comparators(AttributeComparators::uniform(
            &paper::schema(),
            NormalizedHamming::new(),
        ))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::new([0.8, 0.2]).expect("weights")),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.6, 0.8).expect("thresholds"),
        )))
        .reduction(ReductionStrategy::Full)
        .build();

    let result = pipeline.run(&[&r1, &r2]).expect("compatible schemas");

    println!("\n{}", result.summary());
    println!("\ndecisions (m = match, p = possible, u = non-match):");
    for d in &result.decisions {
        // `PairDecision` displays combined-relation row indices; map them
        // back to sources with `result.handle(row)` when needed.
        println!("  {d}");
    }

    println!("\nmatches:");
    for d in result.matches() {
        println!(
            "  {} ↔ {}",
            result.handle(d.pair.0),
            result.handle(d.pair.1)
        );
    }
    println!("\npossible matches (clerical review):");
    for d in result.possible_matches() {
        println!(
            "  {} ↔ {}  (sim {:.3})",
            result.handle(d.pair.0),
            result.handle(d.pair.1),
            d.similarity
        );
    }
    println!("\nduplicate clusters:");
    for cluster in &result.clusters {
        let members: Vec<String> = cluster
            .iter()
            .map(|&r| result.handle(r).to_string())
            .collect();
        println!("  {{{}}}", members.join(", "));
    }

    // The Section IV-A spot check: sim(t11, t22) = 0.8·0.9 + 0.2·(53/90).
    let spot = result
        .decisions
        .iter()
        .find(|d| d.pair == (0, 4))
        .expect("t11/t22 compared");
    println!(
        "\npaper spot check: sim(t11, t22) = {:.4} (paper: 0.838 with rounded job similarity)",
        spot.similarity
    );

    // The same dedup through the **persistent front door**: a session
    // ingests the sources one at a time — only new-vs-resident candidate
    // pairs are classified per batch, warm interner pools and similarity
    // caches persist — and the merged view equals the one-shot run.
    let mut session = DedupPipeline::builder()
        .comparators(AttributeComparators::uniform(
            &paper::schema(),
            NormalizedHamming::new(),
        ))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::new([0.8, 0.2]).expect("weights")),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.6, 0.8).expect("thresholds"),
        )))
        .cache_similarities(true)
        .build_session();
    println!("\nincremental ingest through a DedupSession:");
    for (label, r) in [("ℛ1", &r1), ("ℛ2", &r2)] {
        let step = session.ingest(r).expect("compatible schemas");
        println!("  {label}: {}", step.summary());
    }
    let merged = session.result();
    println!("  merged: {}", merged.summary());
    assert_eq!(merged.clusters, result.clusters, "session == one-shot");
}
