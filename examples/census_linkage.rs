//! Record linkage on person data with the Fellegi–Sunter model and
//! unsupervised EM parameter estimation — the probabilistic-technique
//! branch of the paper (Section III-D, references [16], [26]).
//!
//! ```text
//! cargo run --example census_linkage
//! ```
//!
//! Two census-style snapshots of the same population are generated, the
//! m/u-probabilities are estimated **without labels** from the candidate
//! pairs' agreement patterns (EM, Winkler 1988), optimal thresholds are
//! derived from admissible error rates (Fellegi & Sunter 1969), and the
//! end-to-end result is verified against the ground truth — including the
//! probabilistic result relation of the paper's conclusion.

use std::sync::Arc;

use probdedup::core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::prob_result::probabilistic_result;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_decision::ExpectedMatchingResult;
use probdedup::decision::em::{binarize, fit_em, EmConfig};
use probdedup::decision::model::{DecisionModel, FsModel};
use probdedup::decision::threshold::MatchClass;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::DecisionBasedModel;
use probdedup::eval::{ConfusionCounts, EffectivenessMetrics, Table};
use probdedup::matching::matrix::compare_xtuples;
use probdedup::matching::vector::compare_tuples;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::convert::marginalize_xtuple;
use probdedup::reduction::{block_alternatives, ranked_snm, KeyPart, KeySpec, RankingFunction};
use probdedup::textsim::JaroWinkler;

fn main() {
    let cfg = DatasetConfig {
        entities: 600,
        sources: 2,
        presence_rate: 0.9,
        extra_copy_rate: 0.1,
        typo_rate: 0.35,
        uncertainty_rate: 0.45,
        xtuple_rate: 0.3,
        maybe_rate: 0.15,
        seed: 1969, // Fellegi & Sunter's year
        ..DatasetConfig::default()
    };
    let ds = generate(&Dictionaries::people(), &cfg);
    let combined = ds.combined();
    println!(
        "{} records across two snapshots, {} true entities, {} true duplicate pairs",
        combined.len(),
        ds.truth.entity_count(),
        ds.truth.true_pair_count()
    );

    // --- Candidate generation: ranked SNM over uncertain keys. ----------
    // Ranking scores the full key *distributions* (Fig. 13), so it stays
    // on the string path; the blocking comparison below runs on the
    // interned key path (`KeySymbol` buckets — no key string is rendered
    // more than once per distinct value prefix).
    let spec = KeySpec::new(vec![KeyPart::prefix(0, 4), KeyPart::prefix(2, 2)]);
    let comparators = AttributeComparators::uniform(&ds.schema, JaroWinkler::new());
    let (candidates, _) = ranked_snm(
        combined.xtuples(),
        &spec,
        12,
        RankingFunction::ExpectedScore,
    );
    let blocked = block_alternatives(combined.xtuples(), &spec);
    println!(
        "candidate pairs after reduction: {} (ranked SNM; interned-key blocking would give {} in {} blocks)",
        candidates.len(),
        blocked.pairs.len(),
        blocked.blocks.len()
    );

    // --- Unsupervised Fellegi–Sunter fit on the candidates. -------------
    // Comparison vectors of candidate pairs via per-attribute expected
    // similarity of the *marginalized* tuples (the classical FS view).
    let marginals: Vec<probdedup::model::tuple::ProbTuple> =
        combined.xtuples().iter().map(marginalize_xtuple).collect();
    let vectors: Vec<Vec<f64>> = candidates
        .pairs()
        .iter()
        .map(|&(i, j)| compare_tuples(&marginals[i], &marginals[j], &comparators))
        .collect();
    let patterns = binarize(&vectors, 0.8);
    let em = fit_em(&patterns, &EmConfig::default()).expect("EM fit");
    println!(
        "\nEM fit: converged = {} after {} iterations, match proportion = {:.4}",
        em.converged, em.iterations, em.match_proportion
    );
    let mut table = Table::new(&["attribute", "m", "u", "log2(m/u)"]);
    for (i, name) in ["name", "job", "city", "age"].iter().enumerate() {
        table.row(&[
            name.to_string(),
            format!("{:.3}", em.model.m()[i]),
            format!("{:.3}", em.model.u()[i]),
            format!("{:+.2}", (em.model.m()[i] / em.model.u()[i]).log2()),
        ]);
    }
    println!("{table}");

    // --- Optimal thresholds from error bounds (μ = λ = 0.01). Tight
    // bounds widen the clerical-review band — the Fellegi–Sunter trade-off.
    let thresholds = em
        .model
        .optimal_thresholds(0.01, 0.01)
        .expect("threshold selection");
    println!(
        "\nFS thresholds on the matching weight: T_λ = {:.4}, T_μ = {:.1}",
        thresholds.lambda(),
        thresholds.mu()
    );
    let fs_model = FsModel::new(em.model.clone(), thresholds);

    // Classify candidates with the FS model (certain-data decision model
    // over the marginalized comparison vectors).
    let truth = ds.truth.true_pairs();
    let n = combined.len();
    let mut predicted: std::collections::HashSet<(usize, usize)> = Default::default();
    let mut with_review: std::collections::HashSet<(usize, usize)> = Default::default();
    for (&(i, j), c) in candidates.pairs().iter().zip(&vectors) {
        match fs_model.decide(c).1 {
            MatchClass::Match => {
                predicted.insert((i, j));
                with_review.insert((i, j));
            }
            MatchClass::Possible => {
                with_review.insert((i, j));
            }
            MatchClass::NonMatch => {}
        }
    }
    let fs_metrics =
        EffectivenessMetrics::from_counts(&ConfusionCounts::from_pair_sets(&predicted, &truth, n));
    let review_metrics = EffectivenessMetrics::from_counts(&ConfusionCounts::from_pair_sets(
        &with_review,
        &truth,
        n,
    ));
    println!(
        "FS auto-matches only: {} matches → {}",
        predicted.len(),
        fs_metrics
    );
    println!(
        "FS matches + clerical review resolved correctly: {} pairs → {}",
        with_review.len(),
        review_metrics
    );

    // --- End-to-end x-tuple pipeline with a decision-based derivation. ---
    let pipeline = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(comparators.clone())
        .model(Arc::new(DecisionBasedModel::new(
            Arc::new(WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).expect("weights")),
            Thresholds::new(0.7, 0.88).expect("inner"),
            Arc::new(ExpectedMatchingResult::new()),
            Thresholds::new(0.9, 1.7).expect("outer, [0,2] scale"),
        )))
        .reduction(ReductionStrategy::RankedKeys {
            spec,
            window: 8,
            ranking: RankingFunction::ExpectedScore,
        })
        .threads(4)
        .build();
    let sources: Vec<&probdedup::model::relation::XRelation> = ds.relations.iter().collect();
    let result = pipeline.run(&sources).expect("run");
    let pm = EffectivenessMetrics::from_counts(&ConfusionCounts::from_pair_sets(
        &result.match_pair_set(),
        &truth,
        n,
    ));
    println!(
        "\nx-tuple pipeline (E(η) derivation): {} matches, {} possible → {}",
        result.matches().count(),
        result.possible_matches().count(),
        pm
    );

    // --- The paper's conclusion: a probabilistic result relation. --------
    let prob = probabilistic_result(&result, false);
    println!(
        "\nprobabilistic result: {} rows, {} mutually-exclusive-set constraints",
        prob.relation.len(),
        prob.constraints.len()
    );
    if let Some(sets) = prob.constraints.first() {
        println!("first constraint (merged ⊕ originals):");
        for (rows, p) in sets.options() {
            println!("  rows {rows:?} with probability {p:.3}");
        }
    }

    // Sanity check used by the smoke test harness: the FS auto-match
    // region must be high-precision (that is its design goal; recall is
    // deliberately routed to clerical review under tight error bounds).
    let _ = compare_xtuples(
        combined.xtuples().first().expect("rows"),
        combined.xtuples().last().expect("rows"),
        &comparators,
    );
    assert!(
        fs_metrics.precision > 0.3,
        "FS auto-match precision unexpectedly low"
    );
    assert!(
        review_metrics.recall > fs_metrics.recall,
        "clerical review must add recall"
    );
}
