//! Cross-crate property tests: invariants that only hold when the model,
//! matching, decision and reduction layers agree with each other.

use std::sync::Arc;

use proptest::prelude::*;

use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::{ExpectedSimilarity, MaxSimilarity, MinSimilarity};
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::{SimilarityBasedModel, XTupleDecisionModel};
use probdedup::matching::matrix::compare_xtuples;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::convert::marginalize_xtuple;
use probdedup::model::schema::Schema;
use probdedup::model::world::{full_worlds, world_count};
use probdedup::model::xtuple::XTuple;
use probdedup::paper;
use probdedup::textsim::NormalizedHamming;

fn arb_xtuple() -> impl Strategy<Value = XTuple> {
    proptest::collection::vec(("[A-C][a-b]{1,2}", "[x-z]{1,2}", 1u32..40), 1..4).prop_map(|alts| {
        let total: u32 = alts.iter().map(|(_, _, w)| *w).sum();
        let denom = f64::from(total) * 1.2;
        let s = Schema::new(["name", "job"]);
        let mut b = XTuple::builder(&s);
        for (n, j, w) in alts {
            b = b.alt(f64::from(w) / denom, [n, j]);
        }
        b.build().unwrap()
    })
}

fn comparators() -> AttributeComparators {
    AttributeComparators::uniform(&paper::schema(), NormalizedHamming::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eq. 6 (expected similarity over the comparison matrix) equals the
    /// explicit expectation over conditioned full worlds — "equations 5
    /// and 6 are equivalent to the expected value of the corresponding
    /// similarity over all possible worlds containing the considered
    /// tuples" (Section IV-B).
    #[test]
    fn eq6_equals_world_expectation(t1 in arb_xtuple(), t2 in arb_xtuple()) {
        prop_assume!(world_count(&[t1.clone(), t2.clone()]) <= 256);
        let cmp = comparators();
        let phi = WeightedSum::new([0.8, 0.2]).unwrap();
        let model = SimilarityBasedModel::new(
            Arc::new(phi.clone()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.4, 0.7).unwrap(),
        );
        let matrix = compare_xtuples(&t1, &t2, &cmp);
        let via_model = model.decide(&t1, &t2, &matrix).similarity;

        // Explicit: Σ_worlds P(world | B) · sim(world's alternative pair).
        let pair = [t1.clone(), t2.clone()];
        let pb: f64 = probdedup::model::condition::existence_event_probability(&pair);
        let mut expectation = 0.0;
        for w in full_worlds(&pair) {
            let (i, j) = (w.choices[0].unwrap(), w.choices[1].unwrap());
            let sim = {
                use probdedup::decision::combine::CombinationFunction;
                phi.combine(matrix.vector(i, j))
            };
            expectation += w.probability / pb * sim;
        }
        prop_assert!((via_model - expectation).abs() < 1e-9,
            "model {via_model} vs worlds {expectation}");
    }

    /// The expected similarity of x-tuples is sandwiched between the min
    /// and max derivations for any pair.
    #[test]
    fn derivation_sandwich(t1 in arb_xtuple(), t2 in arb_xtuple()) {
        let cmp = comparators();
        let matrix = compare_xtuples(&t1, &t2, &cmp);
        let mk = |d: Arc<dyn probdedup::decision::derive_sim::SimilarityDerivation>| {
            SimilarityBasedModel::new(
                Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
                d,
                Thresholds::new(0.4, 0.7).unwrap(),
            )
            .decide(&t1, &t2, &matrix)
            .similarity
        };
        let e = mk(Arc::new(ExpectedSimilarity));
        let lo = mk(Arc::new(MinSimilarity));
        let hi = mk(Arc::new(MaxSimilarity));
        prop_assert!(lo - 1e-12 <= e && e <= hi + 1e-12, "{lo} ≤ {e} ≤ {hi}");
    }

    /// Marginalizing an x-tuple and comparing with Eq. 5 never differs
    /// from the single-alternative x-tuple comparison (one-alternative
    /// x-tuples ARE dependency-free tuples).
    #[test]
    fn single_alternative_xtuples_match_marginal_view(t in arb_xtuple()) {
        prop_assume!(t.len() == 1);
        let m = marginalize_xtuple(&t);
        let back = XTuple::from_prob_tuple(&m);
        let cmp = comparators();
        let other = XTuple::from_prob_tuple(
            &marginalize_xtuple(&paper::r34().get(0).unwrap().clone()),
        );
        let a = compare_xtuples(&t, &other, &cmp);
        let b = compare_xtuples(&back, &other, &cmp);
        prop_assert_eq!(a.vector(0, 0), b.vector(0, 0));
    }
}
