//! Integration tests for the `probdedup` CLI binary: generate → stats →
//! dedup over the text format, end to end through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_probdedup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probdedup-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn generate_stats_dedup_roundtrip() {
    let dir = temp_dir("roundtrip");
    let prefix = dir.join("demo");
    let prefix_str = prefix.to_str().unwrap();

    // generate
    let out = bin()
        .args([
            "generate",
            "--out-prefix",
            prefix_str,
            "--entities",
            "40",
            "--seed",
            "11",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
    let src0 = format!("{prefix_str}.source0.pxr");
    let src1 = format!("{prefix_str}.source1.pxr");
    assert!(std::path::Path::new(&src0).exists());
    assert!(std::path::Path::new(&src1).exists());
    assert!(prefix.with_extension("truth").exists());

    // The generated files parse back through the library.
    let text = std::fs::read_to_string(&src0).unwrap();
    let parsed = probdedup::model::format::parse_xrelation(&text).expect("valid .pxr");
    assert!(!parsed.is_empty());

    // stats
    let out = bin()
        .args(["stats", "--input", &src0])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tuples:"), "{stdout}");
    assert!(stdout.contains("log10(|worlds|)"), "{stdout}");

    // dedup across both sources
    let out = bin()
        .args([
            "dedup",
            "--input",
            &src0,
            "--input",
            &src1,
            "--reduction",
            "snm-alternatives",
            "--key",
            "name:3,city:2",
            "--window",
            "6",
        ])
        .output()
        .expect("run dedup");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("candidate pairs compared"), "{stdout}");
    assert!(stdout.contains("duplicate clusters:"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn determinism_across_invocations() {
    let dir = temp_dir("determinism");
    let p1 = dir.join("a");
    let p2 = dir.join("b");
    for p in [&p1, &p2] {
        let out = bin()
            .args([
                "generate",
                "--out-prefix",
                p.to_str().unwrap(),
                "--entities",
                "25",
                "--seed",
                "99",
            ])
            .output()
            .expect("run generate");
        assert!(out.status.success());
    }
    let a = std::fs::read_to_string(format!("{}.source0.pxr", p1.display())).unwrap();
    let b = std::fs::read_to_string(format!("{}.source0.pxr", p2.display())).unwrap();
    assert_eq!(a, b, "same seed must produce identical files");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    // Unknown subcommand.
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");

    // Missing required flag.
    let out = bin().args(["generate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out-prefix"));

    // Nonexistent input file.
    let out = bin()
        .args(["stats", "--input", "/nonexistent/nope.pxr"])
        .output()
        .expect("run");
    assert!(!out.status.success());

    // Bad key spec.
    let dir = temp_dir("badkey");
    let prefix = dir.join("x");
    bin()
        .args([
            "generate",
            "--out-prefix",
            prefix.to_str().unwrap(),
            "--entities",
            "10",
        ])
        .output()
        .expect("run generate");
    let out = bin()
        .args([
            "dedup",
            "--input",
            &format!("{}.source0.pxr", prefix.display()),
            "--key",
            "nonexistent:3",
        ])
        .output()
        .expect("run dedup");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown key attribute"));
    std::fs::remove_dir_all(&dir).ok();
}
