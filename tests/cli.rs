//! Integration tests for the `probdedup` CLI binary: generate → stats →
//! dedup over the text format, end to end through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_probdedup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probdedup-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn generate_stats_dedup_roundtrip() {
    let dir = temp_dir("roundtrip");
    let prefix = dir.join("demo");
    let prefix_str = prefix.to_str().unwrap();

    // generate
    let out = bin()
        .args([
            "generate",
            "--out-prefix",
            prefix_str,
            "--entities",
            "40",
            "--seed",
            "11",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
    let src0 = format!("{prefix_str}.source0.pxr");
    let src1 = format!("{prefix_str}.source1.pxr");
    assert!(std::path::Path::new(&src0).exists());
    assert!(std::path::Path::new(&src1).exists());
    assert!(prefix.with_extension("truth").exists());

    // The generated files parse back through the library.
    let text = std::fs::read_to_string(&src0).unwrap();
    let parsed = probdedup::model::format::parse_xrelation(&text).expect("valid .pxr");
    assert!(!parsed.is_empty());

    // stats
    let out = bin()
        .args(["stats", "--input", &src0])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tuples:"), "{stdout}");
    assert!(stdout.contains("log10(|worlds|)"), "{stdout}");

    // dedup across both sources
    let out = bin()
        .args([
            "dedup",
            "--input",
            &src0,
            "--input",
            &src1,
            "--reduction",
            "snm-alternatives",
            "--key",
            "name:3,city:2",
            "--window",
            "6",
        ])
        .output()
        .expect("run dedup");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("candidate pairs compared"), "{stdout}");
    assert!(stdout.contains("duplicate clusters:"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_matches_one_shot_dedup() {
    let dir = temp_dir("ingest");
    let prefix = dir.join("inc");
    let prefix_str = prefix.to_str().unwrap();
    let out = bin()
        .args([
            "generate",
            "--out-prefix",
            prefix_str,
            "--entities",
            "35",
            "--seed",
            "7",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let src0 = format!("{prefix_str}.source0.pxr");
    let src1 = format!("{prefix_str}.source1.pxr");

    let shared = [
        "--input",
        src0.as_str(),
        "--input",
        src1.as_str(),
        "--reduction",
        "snm-alternatives",
        "--key",
        "name:3,city:2",
        "--window",
        "5",
    ];
    let dedup = bin().arg("dedup").args(shared).output().expect("run dedup");
    assert!(
        dedup.status.success(),
        "{}",
        String::from_utf8_lossy(&dedup.stderr)
    );
    let ingest = bin()
        .arg("ingest")
        .args(shared)
        .output()
        .expect("run ingest");
    assert!(
        ingest.status.success(),
        "{}",
        String::from_utf8_lossy(&ingest.stderr)
    );

    let dedup_out = String::from_utf8_lossy(&dedup.stdout);
    let ingest_out = String::from_utf8_lossy(&ingest.stdout);
    // The session narrates its incremental steps...
    assert_eq!(ingest_out.matches("ingested ").count(), 2, "{ingest_out}");
    assert!(ingest_out.contains("pairs classified"), "{ingest_out}");
    assert!(ingest_out.contains("candidates resident"), "{ingest_out}");
    // ...but the merged result — summary, matches, possibles, clusters —
    // is identical to the one-shot pipeline over the same inputs (the
    // split-invariance contract).
    let tail = |s: &str| -> String {
        let from = s.find("candidate pairs compared").expect("summary line");
        let start = s[..from].rfind('\n').map_or(0, |i| i + 1);
        s[start..].to_string()
    };
    assert_eq!(tail(&dedup_out), tail(&ingest_out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn determinism_across_invocations() {
    let dir = temp_dir("determinism");
    let p1 = dir.join("a");
    let p2 = dir.join("b");
    for p in [&p1, &p2] {
        let out = bin()
            .args([
                "generate",
                "--out-prefix",
                p.to_str().unwrap(),
                "--entities",
                "25",
                "--seed",
                "99",
            ])
            .output()
            .expect("run generate");
        assert!(out.status.success());
    }
    let a = std::fs::read_to_string(format!("{}.source0.pxr", p1.display())).unwrap();
    let b = std::fs::read_to_string(format!("{}.source0.pxr", p2.display())).unwrap();
    assert_eq!(a, b, "same seed must produce identical files");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_save_load_roundtrip() {
    let dir = temp_dir("snapshot");
    let prefix = dir.join("snap");
    let prefix_str = prefix.to_str().unwrap();
    let out = bin()
        .args([
            "generate",
            "--out-prefix",
            prefix_str,
            "--entities",
            "30",
            "--seed",
            "5",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let src0 = format!("{prefix_str}.source0.pxr");
    let src1 = format!("{prefix_str}.source1.pxr");
    let snap = format!("{prefix_str}.session.snap");

    let shared = [
        "--input",
        src0.as_str(),
        "--input",
        src1.as_str(),
        "--reduction",
        "snm-alternatives",
        "--key",
        "name:3,city:2",
        "--window",
        "5",
    ];
    let save = bin()
        .args(["snapshot", "save", "--out", &snap])
        .args(shared)
        .output()
        .expect("run snapshot save");
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );
    let save_out = String::from_utf8_lossy(&save.stdout);
    assert!(save_out.contains("saved "), "{save_out}");
    assert!(std::path::Path::new(&snap).exists());

    let load = bin()
        .args(["snapshot", "load", "--snapshot", &snap])
        .args(shared)
        .output()
        .expect("run snapshot load");
    assert!(
        load.status.success(),
        "{}",
        String::from_utf8_lossy(&load.stderr)
    );
    let load_out = String::from_utf8_lossy(&load.stdout);
    // The reopened session replays the unchanged corpus fully warm.
    assert!(load_out.contains("warm rerun: 0 key renders"), "{load_out}");
    // And the restored partition equals the save-time one.
    let tail = |s: &str| -> String {
        let from = s.find("candidate pairs compared").expect("summary line");
        let start = s[..from].rfind('\n').map_or(0, |i| i + 1);
        s[start..].to_string()
    };
    assert_eq!(tail(&save_out), tail(&load_out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distinct_exit_codes_per_error_kind() {
    let dir = temp_dir("exitcodes");

    // Usage error (unknown subcommand) → 2, with the usage text.
    let out = bin().arg("frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2));

    // I/O error (missing input file) → 3, no usage dump.
    let out = bin()
        .args(["stats", "--input", "/nonexistent/nope.pxr"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(!stderr.contains("USAGE"), "{stderr}");

    // Data parse error (exists, but not a .pxr relation) → 4.
    let garbage = dir.join("garbage.pxr");
    std::fs::write(&garbage, "this is not a relation\n").unwrap();
    let out = bin()
        .args(["stats", "--input", garbage.to_str().unwrap()])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(4));

    // Snapshot corruption → 5. The inputs must parse (they are loaded
    // before the snapshot opens), so generate a real relation first.
    let fake = dir.join("fake.snap");
    std::fs::write(&fake, b"PXDSNAP\0garbage that is not a session").unwrap();
    let real = dir.join("real");
    let gen = bin()
        .args([
            "generate",
            "--out-prefix",
            real.to_str().unwrap(),
            "--entities",
            "10",
            "--seed",
            "3",
        ])
        .output()
        .expect("run generate");
    assert!(gen.status.success());
    let src = format!("{}.source0.pxr", real.display());
    let out = bin()
        .args([
            "snapshot",
            "load",
            "--snapshot",
            fake.to_str().unwrap(),
            "--input",
            &src,
        ])
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Missing snapshot file → I/O (3), not corruption.
    let out = bin()
        .args([
            "snapshot",
            "load",
            "--snapshot",
            dir.join("absent.snap").to_str().unwrap(),
            "--input",
            &src,
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn entities_subcommand_resolves_and_scores() {
    let dir = temp_dir("entities");
    let prefix = dir.join("ent");
    let prefix_str = prefix.to_str().unwrap();
    let out = bin()
        .args([
            "generate",
            "--out-prefix",
            prefix_str,
            "--entities",
            "40",
            "--seed",
            "13",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let src0 = format!("{prefix_str}.source0.pxr");
    let src1 = format!("{prefix_str}.source1.pxr");
    let truth = format!("{prefix_str}.truth");

    let shared = [
        "--input",
        src0.as_str(),
        "--input",
        src1.as_str(),
        "--key",
        "name:3,city:2",
    ];
    for strategy in ["components", "correlation-greedy", "correlation-repaired"] {
        let out = bin()
            .arg("entities")
            .args(shared)
            .args(["--strategy", strategy, "--truth", &truth])
            .output()
            .expect("run entities");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(strategy), "{stdout}");
        assert!(stdout.contains("entity clusters (size ≥ 2):"), "{stdout}");
        assert!(stdout.contains("vs truth: pairwise"), "{stdout}");
        assert!(stdout.contains("ccF1="), "{stdout}");
    }

    // Unknown strategy → usage error (2).
    let out = bin()
        .arg("entities")
        .args(shared)
        .args(["--strategy", "kmeans"])
        .output()
        .expect("run entities");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));

    // A truth file that does not cover the corpus → parse error (4).
    let out = bin()
        .arg("entities")
        .args(["--input", src0.as_str(), "--truth", &truth])
        .output()
        .expect("run entities");
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_wal_flags_and_exit_code() {
    let dir = temp_dir("walflags");

    // An unusable --wal-dir is its own exit code (6): the daemon refuses
    // to accept traffic it could not journal, and a supervisor can tell
    // "fix the disk" apart from a plain I/O error.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"a file, not a directory").unwrap();
    let wal = blocker.join("wal");
    let out = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            wal.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(6),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wal dir"), "{stderr}");

    // A corrupt journal (not our magic) also refuses boot with 6 — the
    // foreign file is reported, never clobbered.
    let waldir = dir.join("wal-ok");
    std::fs::create_dir_all(&waldir).unwrap();
    std::fs::write(waldir.join("census.wal"), b"NOTAWAL\0junk bytes here").unwrap();
    let out = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            waldir.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(6),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --max-inflight 0 is a usage error, caught before binding.
    let out = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--max-inflight", "0"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));

    // So is a non-positive --request-timeout-secs.
    let out = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--request-timeout-secs",
            "0",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    // Unknown subcommand.
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");

    // Missing required flag.
    let out = bin().args(["generate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out-prefix"));

    // Nonexistent input file.
    let out = bin()
        .args(["stats", "--input", "/nonexistent/nope.pxr"])
        .output()
        .expect("run");
    assert!(!out.status.success());

    // Bad key spec.
    let dir = temp_dir("badkey");
    let prefix = dir.join("x");
    bin()
        .args([
            "generate",
            "--out-prefix",
            prefix.to_str().unwrap(),
            "--entities",
            "10",
        ])
        .output()
        .expect("run generate");
    let out = bin()
        .args([
            "dedup",
            "--input",
            &format!("{}.source0.pxr", prefix.display()),
            "--key",
            "nonexistent:3",
        ])
        .output()
        .expect("run dedup");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown key attribute"));
    std::fs::remove_dir_all(&dir).ok();
}
