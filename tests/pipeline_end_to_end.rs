//! End-to-end pipeline tests on synthetic data: the five-step process with
//! different reduction strategies and decision models, verified against
//! ground truth.

use std::sync::Arc;

use probdedup::core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::prob_result::probabilistic_result;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_decision::MatchingWeightDerivation;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::{DecisionBasedModel, SimilarityBasedModel, XTupleDecisionModel};
use probdedup::eval::{ConfusionCounts, EffectivenessMetrics};
use probdedup::matching::vector::AttributeComparators;
use probdedup::reduction::{KeyPart, KeySpec, RankingFunction, WorldSelection};
use probdedup::textsim::JaroWinkler;

fn dataset() -> probdedup::datagen::SyntheticDataset {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 150,
            sources: 2,
            presence_rate: 0.85,
            extra_copy_rate: 0.1,
            typo_rate: 0.25,
            uncertainty_rate: 0.35,
            xtuple_rate: 0.25,
            maybe_rate: 0.2,
            seed: 99,
            ..DatasetConfig::default()
        },
    )
}

fn weights() -> WeightedSum {
    WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap()
}

fn similarity_model() -> Arc<dyn XTupleDecisionModel> {
    Arc::new(SimilarityBasedModel::new(
        Arc::new(weights()),
        Arc::new(ExpectedSimilarity),
        // Tuned on this generator config: P ≈ 0.97, R ≈ 0.72 at full scan.
        Thresholds::new(0.72, 0.82).unwrap(),
    ))
}

fn key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)])
}

fn run(reduction: ReductionStrategy, model: Arc<dyn XTupleDecisionModel>) -> (usize, f64, f64) {
    let ds = dataset();
    let sources: Vec<&probdedup::model::relation::XRelation> = ds.relations.iter().collect();
    let result = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(
            &ds.schema,
            JaroWinkler::new(),
        ))
        .model(model)
        .reduction(reduction)
        .threads(2)
        .build()
        .run(&sources)
        .unwrap();
    let truth = ds.truth.true_pairs();
    let m = EffectivenessMetrics::from_counts(&ConfusionCounts::from_pair_sets(
        &result.match_pair_set(),
        &truth,
        result.relation.len(),
    ));
    (result.candidates, m.precision, m.recall)
}

/// Full comparison with the similarity-based model must reach solid
/// precision and recall on moderately dirty data.
#[test]
fn full_comparison_quality() {
    let (candidates, precision, recall) = run(ReductionStrategy::Full, similarity_model());
    let ds = dataset();
    let n = ds.total_rows();
    assert_eq!(candidates, n * (n - 1) / 2);
    assert!(precision > 0.9, "precision = {precision}");
    assert!(recall > 0.65, "recall = {recall}");
}

/// Reduction strategies trade candidates for recall but never precision
/// (matches are a subset of full-comparison matches by construction).
#[test]
fn reduction_trades_candidates_for_recall() {
    let (full_cand, _, full_recall) = run(ReductionStrategy::Full, similarity_model());
    for strategy in [
        ReductionStrategy::SortingAlternatives {
            spec: key(),
            window: 6,
        },
        ReductionStrategy::RankedKeys {
            spec: key(),
            window: 6,
            ranking: RankingFunction::ExpectedScore,
        },
        ReductionStrategy::MultipassWorlds {
            spec: key(),
            window: 6,
            selection: WorldSelection::DiverseTopK { k: 3, pool: 16 },
        },
        ReductionStrategy::BlockingAlternatives { spec: key() },
    ] {
        let name = strategy.name();
        let (cand, precision, recall) = run(strategy, similarity_model());
        assert!(cand < full_cand, "{name}: {cand} !< {full_cand}");
        assert!(recall <= full_recall + 1e-12, "{name}");
        assert!(precision > 0.85, "{name}: precision = {precision}");
        assert!(recall > 0.25, "{name}: recall = {recall}");
    }
}

/// The decision-based model (matching weight) works end to end too.
#[test]
fn decision_based_model_end_to_end() {
    let model: Arc<dyn XTupleDecisionModel> = Arc::new(DecisionBasedModel::new(
        Arc::new(weights()),
        Thresholds::new(0.72, 0.82).unwrap(),
        Arc::new(MatchingWeightDerivation::with_cap(1e9)),
        Thresholds::new(0.5, 3.0).unwrap(),
    ));
    let (_, precision, recall) = run(ReductionStrategy::Full, model);
    assert!(precision > 0.85, "precision = {precision}");
    assert!(recall > 0.4, "recall = {recall}");
}

/// The probabilistic result is structurally valid on real pipeline output.
#[test]
fn probabilistic_result_is_valid() {
    let ds = dataset();
    let sources: Vec<&probdedup::model::relation::XRelation> = ds.relations.iter().collect();
    let result = DedupPipeline::builder()
        .comparators(AttributeComparators::uniform(
            &ds.schema,
            JaroWinkler::new(),
        ))
        .model(similarity_model())
        .reduction(ReductionStrategy::Full)
        .build()
        .run(&sources)
        .unwrap();
    let prob = probabilistic_result(&result, true);
    for sets in &prob.constraints {
        sets.validate(&prob.relation).unwrap();
        let total: f64 = sets.options().iter().map(|(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9);
    }
    // Fused clusters shrink the relation; possible matches add rows.
    assert!(!prob.relation.is_empty());
}
