//! Cross-crate consistency of the reduction methods on synthetic data:
//! containment laws at scale, pairs-completeness ordering, and agreement
//! between SNM and blocking on what they may propose.

use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::eval::ReductionMetrics;
use probdedup::reduction::{
    block_alternatives, block_conflict_resolved, conflict_resolved_snm, multipass_snm, ranked_snm,
    sorting_alternatives, ConflictResolution, KeyPart, KeySpec, RankingFunction, WorldSelection,
};

fn dataset() -> probdedup::datagen::SyntheticDataset {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 120,
            sources: 2,
            typo_rate: 0.2,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.35,
            seed: 4242,
            ..DatasetConfig::default()
        },
    )
}

fn key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)])
}

fn to_set(pairs: &[(usize, usize)]) -> std::collections::HashSet<(usize, usize)> {
    pairs.iter().copied().collect()
}

/// Conflict-resolved SNM ⊆ top-k multipass with enough worlds (the most
/// probable world is always in the top-k) — the paper's subset claim at
/// dataset scale.
#[test]
fn subset_claim_at_scale() {
    let ds = dataset();
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let (resolved, _) = conflict_resolved_snm(
        tuples,
        &key(),
        4,
        ConflictResolution::MostProbableAlternative,
    );
    let multi = multipass_snm(tuples, &key(), 4, WorldSelection::TopK(1));
    // TopK(1) is exactly the most probable world → identical pair sets.
    assert_eq!(to_set(resolved.pairs()), to_set(multi.pairs.pairs()));
}

/// More worlds ⇒ pairs completeness can only grow; window growth too.
#[test]
fn completeness_monotonicity() {
    let ds = dataset();
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let truth = ds.truth.true_pairs();
    let n = tuples.len();

    let mut last_pc = -1.0;
    for k in [1usize, 2, 4, 8] {
        let r = multipass_snm(tuples, &key(), 4, WorldSelection::TopK(k));
        let pc = ReductionMetrics::evaluate(&to_set(r.pairs.pairs()), &truth, n).pairs_completeness;
        assert!(pc >= last_pc - 1e-12, "k = {k}: {pc} < {last_pc}");
        last_pc = pc;
    }

    let mut last_pc = -1.0;
    for w in [2usize, 4, 8, 16] {
        let r = sorting_alternatives(tuples, &key(), w);
        let pc = ReductionMetrics::evaluate(&to_set(r.pairs.pairs()), &truth, n).pairs_completeness;
        assert!(pc >= last_pc - 1e-12, "w = {w}: {pc} < {last_pc}");
        last_pc = pc;
    }
}

/// Per-alternative methods dominate their conflict-resolved counterparts
/// in pairs completeness (they consider strictly more keys).
#[test]
fn alternatives_dominate_conflict_resolution() {
    let ds = dataset();
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let truth = ds.truth.true_pairs();
    let n = tuples.len();

    let blocking_alt = block_alternatives(tuples, &key());
    let blocking_res =
        block_conflict_resolved(tuples, &key(), ConflictResolution::MostProbableAlternative);
    let pc_alt = ReductionMetrics::evaluate(&to_set(blocking_alt.pairs.pairs()), &truth, n)
        .pairs_completeness;
    let pc_res = ReductionMetrics::evaluate(&to_set(blocking_res.pairs.pairs()), &truth, n)
        .pairs_completeness;
    assert!(pc_alt >= pc_res - 1e-12, "{pc_alt} < {pc_res}");
}

/// All reduction methods stay within the quadratic bound and produce some
/// reduction on realistic data.
#[test]
fn all_methods_actually_reduce() {
    let ds = dataset();
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let n = tuples.len();
    let total = n * (n - 1) / 2;
    let spec = key();
    let counts = vec![
        multipass_snm(
            tuples,
            &spec,
            4,
            WorldSelection::DiverseTopK { k: 3, pool: 16 },
        )
        .pairs
        .len(),
        conflict_resolved_snm(tuples, &spec, 4, ConflictResolution::MostProbableKey)
            .0
            .len(),
        sorting_alternatives(tuples, &spec, 4).pairs.len(),
        ranked_snm(tuples, &spec, 4, RankingFunction::ExpectedScore)
            .0
            .len(),
        block_alternatives(tuples, &spec).pairs.len(),
    ];
    for c in counts {
        assert!(c > 0, "a method proposed nothing on duplicate-rich data");
        assert!(c < total / 2, "{c} pairs is no reduction over {total}");
    }
}
