//! The write-ahead journal's **crash contract**, end to end: a `kill -9`
//! at *any* point of the append / snapshot / compaction protocol recovers
//! (via `snapshot + journal tail`) exactly the partition of the committed
//! ingest prefix — never a half-applied batch, never a lost acknowledged
//! one. Three layers:
//!
//! * a **crash matrix** enumerating every interleaving point of the
//!   protocol (including the synthesized mid-compaction state a crash
//!   between the base write and the truncation leaves behind);
//! * a **property test** over random batch splits × crash after any
//!   prefix of appends × an arbitrary snapshot/compaction point, reusing
//!   the split-invariance machinery of `tests/session_incremental.rs`;
//! * a **fuzz pass** over torn and bit-flipped journal tails: recovery
//!   must never panic, and whatever it applies must equal the partition
//!   of exactly the records it reports replayed.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use probdedup::core::pipeline::{DedupPipeline, DedupResult, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::session::DedupSession;
use probdedup::core::wal::{SessionJournal, WAL_HEADER_LEN};
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::relation::XRelation;
use probdedup::model::xtuple::XTuple;
use probdedup::reduction::{KeyPart, KeySpec};
use probdedup::textsim::JaroWinkler;

/// The workload corpus: two small dirty sources, concatenated (the tests
/// re-split them into ingest batches themselves).
fn corpus() -> Vec<XTuple> {
    let ds = generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 12,
            sources: 2,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed: 0x5EED_CAFE,
            ..DatasetConfig::default()
        },
    );
    ds.combined().xtuples().to_vec()
}

fn corpus_schema() -> probdedup::model::schema::Schema {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 1,
            ..DatasetConfig::default()
        },
    )
    .schema
}

fn pipeline() -> DedupPipeline {
    let schema = corpus_schema();
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.72, 0.82).unwrap(),
        )))
        .reduction(ReductionStrategy::SortingAlternatives {
            spec: KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]),
            window: 4,
        })
        .threads(2)
        .cache_similarities(true)
        .build()
}

/// Split `tuples` into 1..=4 batches at the given relative cut points
/// (the machinery of `tests/session_incremental.rs`).
fn split_sources(tuples: &[XTuple], cuts: &[usize]) -> Vec<XRelation> {
    let schema = corpus_schema();
    let n = tuples.len();
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| {
            let mut r = XRelation::new(schema.clone());
            for t in &tuples[w[0]..w[1]] {
                r.push(t.clone());
            }
            r
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// A fresh scratch directory (unique per call — proptest cases run many
/// recoveries in one process).
fn scratch() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "probdedup-wal-matrix-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The partition after ingesting the first `k` batches (the reference a
/// crash at "k batches committed" must recover to).
fn reference_prefix(batches: &[XRelation], k: usize) -> DedupResult {
    let mut s = pipeline().session();
    for b in &batches[..k] {
        s.ingest(b).unwrap();
    }
    s.result()
}

fn assert_partition_eq(got: &DedupResult, want: &DedupResult, label: &str) {
    assert_eq!(got.decisions, want.decisions, "{label}: decisions differ");
    assert_eq!(got.clusters, want.clusters, "{label}: clusters differ");
}

/// One durable state a crash can leave behind: the snapshot bytes (if a
/// snapshot had completed) and the journal bytes at that instant.
struct CrashState {
    label: String,
    snap: Option<Vec<u8>>,
    wal: Vec<u8>,
    /// Ingest batches committed (journaled) at this point.
    committed: usize,
}

/// Recover a session from one crash image: restore the snapshot (or start
/// fresh), then open + replay the journal.
fn recover(state: &CrashState, dir: &Path) -> DedupSession {
    let wal_path = dir.join(format!("{}.wal", state.label.replace(' ', "-")));
    std::fs::write(&wal_path, &state.wal).unwrap();
    let mut session = match &state.snap {
        Some(bytes) => DedupSession::from_snapshot_bytes(bytes, &pipeline()).unwrap(),
        None => pipeline().session(),
    };
    let (_, _replay) = SessionJournal::open_and_replay(&wal_path, &mut session)
        .unwrap_or_else(|e| panic!("{}: recovery refused: {e}", state.label));
    session
}

/// The crash matrix: walk the full protocol once, capturing the durable
/// bytes at every interleaving point (plus the synthesized mid-compaction
/// state and torn-append states), then recover each image and assert the
/// partition equals the committed prefix's.
#[test]
fn crash_matrix_recovers_every_interleaving_point() {
    let tuples = corpus();
    let n = tuples.len();
    let batches = split_sources(&tuples, &[n / 3, 2 * n / 3]);
    assert_eq!(batches.len(), 3, "corpus too small to split three ways");

    let dir = scratch();
    let wal_path = dir.join("live.wal");
    let mut states: Vec<CrashState> = Vec::new();
    let wal_bytes = || std::fs::read(&wal_path).unwrap();

    let mut live = pipeline().session();
    let (mut journal, _) = SessionJournal::open_and_replay(&wal_path, &mut live).unwrap();
    states.push(CrashState {
        label: "boot, nothing committed".into(),
        snap: None,
        wal: wal_bytes(),
        committed: 0,
    });

    // Append the first two batches, capturing after each fsync point.
    for (i, batch) in batches.iter().take(2).enumerate() {
        journal.ingest(&mut live, batch).unwrap();
        states.push(CrashState {
            label: format!("after append {}", i + 1),
            snap: None,
            wal: wal_bytes(),
            committed: i + 1,
        });
    }

    // Torn append: every-byte tearing is covered by the codec's unit
    // tests; here, representative cuts into the *last* frame of the
    // two-record file must recover exactly one batch.
    let two_records = wal_bytes();
    let one_record_len = states[1].wal.len();
    for cut in [
        one_record_len + 1,
        (one_record_len + two_records.len()) / 2,
        two_records.len() - 1,
    ] {
        states.push(CrashState {
            label: format!("append 2 torn at byte {cut}"),
            snap: None,
            wal: two_records[..cut].to_vec(),
            committed: 1,
        });
    }

    // Snapshot protocol. Crash windows, in order:
    //   (a) snapshot durable, compaction not started;
    //   (b) compaction's base_seq written, records not yet truncated;
    //   (c) compaction complete.
    let snap = live.to_snapshot_bytes();
    states.push(CrashState {
        label: "snapshot durable, pre-compaction".into(),
        snap: Some(snap.clone()),
        wal: wal_bytes(),
        committed: 2,
    });
    let mut mid_compact = wal_bytes();
    mid_compact[12..20].copy_from_slice(&live.journal_seq().to_le_bytes());
    states.push(CrashState {
        label: "mid-compaction (base written, not truncated)".into(),
        snap: Some(snap.clone()),
        wal: mid_compact,
        committed: 2,
    });
    journal.compact(live.journal_seq()).unwrap();
    assert_eq!(wal_bytes().len() as u64, WAL_HEADER_LEN);
    states.push(CrashState {
        label: "post-compaction".into(),
        snap: Some(snap.clone()),
        wal: wal_bytes(),
        committed: 2,
    });

    // Append past the snapshot: recovery must stack journal on snapshot.
    journal.ingest(&mut live, &batches[2]).unwrap();
    states.push(CrashState {
        label: "append after snapshot".into(),
        snap: Some(snap.clone()),
        wal: wal_bytes(),
        committed: 3,
    });
    let three = wal_bytes();
    states.push(CrashState {
        label: "append after snapshot, torn".into(),
        snap: Some(snap),
        wal: three[..three.len() - 3].to_vec(),
        committed: 2,
    });
    drop(journal);

    let references: Vec<DedupResult> = (0..=batches.len())
        .map(|k| reference_prefix(&batches, k))
        .collect();
    for state in &states {
        let recovered = recover(state, &dir);
        assert_partition_eq(
            &recovered.result(),
            &references[state.committed],
            &state.label,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any split of the corpus into ingest batches × a crash after any
    /// prefix of journal appends × an arbitrary snapshot/compaction point
    /// within that prefix recovers exactly the committed prefix's
    /// partition.
    #[test]
    fn any_split_and_crash_point_recovers_the_committed_prefix(
        cuts in proptest::collection::vec(0usize..10_000, 0..3),
        snap_raw in 0usize..8,
        crash_raw in 0usize..8,
    ) {
        let tuples = corpus();
        let batches = split_sources(&tuples, &cuts);
        let crash_after = crash_raw % (batches.len() + 1);
        // Snapshot point ≤ crash point (a snapshot after the crash never
        // happened); equal means "snapshot just before the crash".
        let snap_at = snap_raw % (crash_after + 1);

        let dir = scratch();
        let wal_path = dir.join("s.wal");
        let mut live = pipeline().session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal_path, &mut live).unwrap();
        let mut snap: Option<Vec<u8>> = None;
        for (i, batch) in batches.iter().take(crash_after).enumerate() {
            if i == snap_at {
                snap = Some(live.to_snapshot_bytes());
                journal.compact(live.journal_seq()).unwrap();
            }
            journal.ingest(&mut live, batch).unwrap();
        }
        if crash_after == snap_at {
            snap = Some(live.to_snapshot_bytes());
            journal.compact(live.journal_seq()).unwrap();
        }
        drop(journal); // kill -9

        let mut recovered = match &snap {
            Some(bytes) => DedupSession::from_snapshot_bytes(bytes, &pipeline()).unwrap(),
            None => pipeline().session(),
        };
        SessionJournal::open_and_replay(&wal_path, &mut recovered).unwrap();
        let reference = reference_prefix(&batches, crash_after);
        assert_partition_eq(
            &recovered.result(),
            &reference,
            &format!(
                "batches={} snap_at={snap_at} crash_after={crash_after}",
                batches.len()
            ),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Torn and bit-flipped journal tails: recovery never panics, and a
    /// successful recovery equals the partition of exactly the records it
    /// reports replayed (a refused journal — e.g. a flipped header — is
    /// also acceptable; silent wrong data is not).
    #[test]
    fn corrupt_tails_recover_to_a_committed_prefix_or_refuse(
        cut_frac in 0.0f64..1.0,
        flip_on in any::<bool>(),
        flip_pos_frac in 0.0f64..1.0,
        flip_xor in 0u8..255,
    ) {
        let tuples = corpus();
        let n = tuples.len();
        let batches = split_sources(&tuples, &[n / 3, 2 * n / 3]);

        let dir = scratch();
        let wal_path = dir.join("s.wal");
        let mut live = pipeline().session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal_path, &mut live).unwrap();
        for batch in &batches {
            journal.ingest(&mut live, batch).unwrap();
        }
        drop(journal);

        // Damage the file: truncate at a random position, then optionally
        // flip one byte of what remains.
        let full = std::fs::read(&wal_path).unwrap();
        let keep = ((full.len() as f64) * cut_frac) as usize;
        let mut bytes = full[..keep].to_vec();
        if flip_on && !bytes.is_empty() {
            let pos = (((bytes.len() - 1) as f64) * flip_pos_frac) as usize;
            bytes[pos] ^= flip_xor.wrapping_add(1); // never a zero-flip
        }
        std::fs::write(&wal_path, &bytes).unwrap();

        let mut recovered = pipeline().session();
        match SessionJournal::open_and_replay(&wal_path, &mut recovered) {
            Err(_) => {} // refused loudly — acceptable for header damage
            Ok((_, replay)) => {
                let k = usize::try_from(replay.replayed).unwrap();
                prop_assert!(k <= batches.len());
                let reference = reference_prefix(&batches, k);
                assert_partition_eq(
                    &recovered.result(),
                    &reference,
                    &format!("keep={keep} flip_on={flip_on} replayed={k}"),
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
