//! Cache-eviction soundness: a bounded similarity cache (the PR 6 clock
//! eviction) may forget whatever it likes — recomputation is always
//! correct, so capacity only moves work, never answers. Asserted at the
//! pipeline level for brutal capacities (1, 2, 7 memoized pairs per
//! attribute): the cached bounded run classifies every pair exactly as
//! the uncached exact reference does, the cached exact run is even
//! byte-identical, and the stats prove eviction actually happened
//! (`cache_evictions > 0` — the capacities are far below the workload's
//! distinct symbol pairs).

use std::sync::Arc;

use probdedup::core::pipeline::{DedupPipeline, DedupResult, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::relation::XRelation;
use probdedup::textsim::JaroWinkler;

fn source() -> XRelation {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 30,
            sources: 1,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed: 0xE71C7,
            ..DatasetConfig::default()
        },
    )
    .combined()
}

fn pipeline(bounded: bool, cache: bool, capacity: Option<usize>) -> DedupPipeline {
    let r = source();
    let phi = WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap();
    let thresholds = Thresholds::new(0.72, 0.82).unwrap();
    let b = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(
            r.schema(),
            JaroWinkler::new(),
        ))
        .reduction(ReductionStrategy::Full)
        .threads(2)
        .cache_similarities(cache)
        .cache_capacity(capacity);
    if bounded {
        b.classify_only(phi, thresholds).build()
    } else {
        b.model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi),
            Arc::new(ExpectedSimilarity),
            thresholds,
        )))
        .build()
    }
}

fn assert_same_partition(reference: &DedupResult, got: &DedupResult, label: &str) {
    assert_eq!(reference.candidates, got.candidates, "{label}: candidates");
    for (a, b) in reference.decisions.iter().zip(&got.decisions) {
        assert_eq!(a.pair, b.pair, "{label}");
        assert_eq!(a.class, b.class, "{label}: pair {:?}", a.pair);
    }
    assert_eq!(reference.clusters, got.clusters, "{label}: clusters");
}

#[test]
fn bounded_partition_survives_brutal_eviction() {
    let r = source();
    // The uncached exact run is the ground truth the bounded modes are
    // property-tested against elsewhere; eviction must not change it.
    let reference = pipeline(false, false, None).run(&[&r]).unwrap();
    for capacity in [1usize, 2, 7] {
        let result = pipeline(true, true, Some(capacity)).run(&[&r]).unwrap();
        let label = format!("bounded capacity={capacity}");
        assert_same_partition(&reference, &result, &label);
        assert!(
            result.stats.cache_evictions > 0,
            "{label}: expected evictions, got stats {:?}",
            result.stats
        );
    }
}

#[test]
fn exact_decisions_are_byte_identical_under_eviction() {
    let r = source();
    // Reference: the interned exact path with an unbounded cache — the
    // same arithmetic as the capped runs (the plain path may differ in
    // the last ulp through its different accumulation order).
    let reference = pipeline(false, true, None).run(&[&r]).unwrap();
    for capacity in [1usize, 2, 7] {
        let result = pipeline(false, true, Some(capacity)).run(&[&r]).unwrap();
        // Exact mode certifies exact similarities no matter what the
        // cache remembers: full byte equality, not just the partition.
        assert_eq!(
            reference.decisions, result.decisions,
            "exact capacity={capacity}"
        );
        assert_eq!(reference.clusters, result.clusters);
        assert!(
            result.stats.cache_evictions > 0,
            "exact capacity={capacity}: expected evictions"
        );
    }
}
