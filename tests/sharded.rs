//! The sharded pipeline's **shard-invariance** contract: for every
//! reduction strategy and every shard count `k ∈ 1..=8`, the merged
//! [`ShardedPipeline`] result equals the one-shot [`DedupPipeline::run`]
//! over the same sources.
//!
//! Equality is tiered by mode:
//!
//! * **exact** (cached or not) and **bounded uncached** — full byte
//!   equality of the decision list (pairs, classes *and* certified
//!   similarities), the candidate count, the combined relation, the
//!   source offsets and the clusters;
//! * **bounded + cached** — identical match / possible / non-match
//!   partition (pairs, classes, clusters, candidates). The certified
//!   representative similarity of a pair may differ: per-shard
//!   classification order warms the symbol caches differently, and a
//!   warm hit can certify a pair through a `Below`-bound verdict where
//!   the cold run computed the exact value (or vice versa). The
//!   *decision* each certificate proves is the same either way.
//!
//! Stats are excluded everywhere — cache traffic legitimately differs
//! between one sweep and `k` per-shard sweeps.
//!
//! [`ShardedPipeline`]: probdedup::core::shard::ShardedPipeline
//! [`DedupPipeline::run`]: probdedup::core::pipeline::DedupPipeline::run

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use probdedup::core::pipeline::{DedupPipeline, DedupResult, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::{MatchClass, Thresholds};
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::relation::XRelation;
use probdedup::reduction::{
    ClusterBlockingConfig, ConflictResolution, KeyPart, KeySpec, RankingFunction, WorldSelection,
};
use probdedup::textsim::JaroWinkler;

/// Two small dirty sources (kept separate: the sharded run must also
/// reproduce the one-shot source combination and offsets).
fn sources(entities: usize, seed: u64) -> Vec<XRelation> {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities,
            sources: 2,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed,
            ..DatasetConfig::default()
        },
    )
    .relations
}

fn key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)])
}

/// Every reduction variant the pipeline offers — the streaming SNM
/// scans, the spillable blocking scans, the positional stripes (full,
/// ranked) and the in-memory cluster-blocking fallback.
fn strategies() -> Vec<ReductionStrategy> {
    vec![
        ReductionStrategy::Full,
        ReductionStrategy::SortingAlternatives {
            spec: key(),
            window: 4,
        },
        ReductionStrategy::ConflictResolved {
            spec: key(),
            window: 4,
            strategy: ConflictResolution::MostProbableAlternative,
        },
        ReductionStrategy::MultipassWorlds {
            spec: key(),
            window: 3,
            selection: WorldSelection::TopK(3),
        },
        ReductionStrategy::RankedKeys {
            spec: key(),
            window: 4,
            ranking: RankingFunction::MostProbableKey,
        },
        ReductionStrategy::BlockingAlternatives { spec: key() },
        ReductionStrategy::BlockingConflictResolved {
            spec: key(),
            strategy: ConflictResolution::MostProbableAlternative,
        },
        ReductionStrategy::BlockingMultipass {
            spec: key(),
            selection: WorldSelection::TopK(3),
        },
        ReductionStrategy::ClusterBlocking {
            spec: key(),
            config: ClusterBlockingConfig::default(),
        },
    ]
}

fn pipeline(
    strategy: ReductionStrategy,
    bounded: bool,
    cache: bool,
    threads: usize,
) -> DedupPipeline {
    let schema = sources(1, 7).remove(0).schema().clone();
    let phi = WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap();
    let thresholds = Thresholds::new(0.72, 0.82).unwrap();
    let b = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .reduction(strategy)
        .threads(threads)
        .cache_similarities(cache);
    if bounded {
        b.classify_only(phi, thresholds).build()
    } else {
        b.model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi),
            Arc::new(ExpectedSimilarity),
            thresholds,
        )))
        .build()
    }
}

/// Byte equality: everything but the stats.
fn assert_identical(reference: &DedupResult, sharded: &DedupResult, label: &str) {
    assert_eq!(
        reference.candidates, sharded.candidates,
        "{label}: candidates"
    );
    assert_eq!(reference.decisions, sharded.decisions, "{label}: decisions");
    assert_eq!(reference.clusters, sharded.clusters, "{label}: clusters");
    assert_eq!(
        reference.source_offsets, sharded.source_offsets,
        "{label}: offsets"
    );
    assert_eq!(
        reference.relation.xtuples(),
        sharded.relation.xtuples(),
        "{label}: combined relation"
    );
}

/// Partition equality: same pairs with the same classes, same clusters —
/// certified similarities are allowed to differ (bounded + cached mode).
fn assert_same_partition(reference: &DedupResult, sharded: &DedupResult, label: &str) {
    assert_eq!(
        reference.candidates, sharded.candidates,
        "{label}: candidates"
    );
    let classes: HashMap<(usize, usize), MatchClass> = sharded
        .decisions
        .iter()
        .map(|d| (d.pair, d.class))
        .collect();
    assert_eq!(classes.len(), sharded.decisions.len(), "{label}: dup pairs");
    for d in &reference.decisions {
        assert_eq!(
            classes.get(&d.pair),
            Some(&d.class),
            "{label}: pair {:?}",
            d.pair
        );
    }
    assert_eq!(reference.clusters, sharded.clusters, "{label}: clusters");
    assert_eq!(
        reference.source_offsets, sharded.source_offsets,
        "{label}: offsets"
    );
}

/// Exhaustive sweep: every strategy × k ∈ 1..=8 × exact/bounded ×
/// cached/uncached against the one-shot reference.
#[test]
fn shard_invariance_across_strategies() {
    let srcs = sources(16, 0xC0FFEE);
    let refs: Vec<&XRelation> = srcs.iter().collect();
    for strategy in strategies() {
        let name = strategy.name();
        for bounded in [false, true] {
            for cache in [false, true] {
                let p = pipeline(strategy.clone(), bounded, cache, 2);
                let reference = p.run(&refs).unwrap();
                for k in 1..=8usize {
                    let (merged, stats) = p.sharded(k).run_with_stats(&refs).unwrap();
                    let label = format!("{name} bounded={bounded} cache={cache} k={k}");
                    assert_eq!(stats.shards, k, "{label}");
                    assert_eq!(
                        stats.shard_candidates.iter().sum::<usize>(),
                        merged.candidates,
                        "{label}: shard counts"
                    );
                    if bounded && cache {
                        // Warm caches may certify a different (equally
                        // valid) representative similarity per pair; the
                        // partition itself is invariant.
                        assert_same_partition(&reference, &merged, &label);
                    } else {
                        assert_identical(&reference, &merged, &label);
                    }
                }
            }
        }
    }
}

/// A tight memory budget changes *where* the work happens (spill files,
/// evictions), never *what* comes out.
#[test]
fn shard_invariance_under_tight_budget() {
    let srcs = sources(16, 0xBEEF);
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let strategy = ReductionStrategy::SortingAlternatives {
        spec: key(),
        window: 4,
    };
    let reference = pipeline(strategy.clone(), false, true, 2)
        .run(&refs)
        .unwrap();
    let schema = srcs[0].schema().clone();
    let phi = WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap();
    let thresholds = Thresholds::new(0.72, 0.82).unwrap();
    let tight = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi),
            Arc::new(ExpectedSimilarity),
            thresholds,
        )))
        .reduction(strategy)
        .threads(2)
        .cache_similarities(true)
        .memory_budget(Some(1 << 12)) // 4 KiB: everything tiny
        .build();
    for k in [1, 3, 8] {
        let merged = tight.sharded(k).run(&refs).unwrap();
        // Exact matching certifies exact similarities regardless of
        // cache capacity, so even the budgeted run is byte-identical.
        assert_identical(&reference, &merged, &format!("tight budget k={k}"));
    }
}

/// Entity-resolution rider on the shard-invariance harness: resolving
/// the merged sharded result must equal resolving the one-shot result,
/// for every strategy. In exact mode the full [`EntityResolution`]
/// (clusters, stats, possible edges) is byte-identical; in bounded +
/// cached mode — where certified similarities may legitimately differ —
/// the `Components` partition is still invariant, because connected
/// components use only the Match/NonMatch classes, never the weights.
///
/// [`EntityResolution`]: probdedup::entity::EntityResolution
#[test]
fn entity_resolution_is_shard_invariant() {
    use probdedup::entity::{ClusterStrategy, ResolveEntities};

    let srcs = sources(16, 0xC0FFEE);
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let strategy = ReductionStrategy::SortingAlternatives {
        spec: key(),
        window: 4,
    };

    // Exact mode: decisions are byte-identical, so every strategy's
    // resolution must be too — including repair moves and stats.
    let p = pipeline(strategy.clone(), false, true, 2);
    let reference = p.run(&refs).unwrap();
    for k in [1usize, 4] {
        let merged = p.sharded(k).run(&refs).unwrap();
        for s in ClusterStrategy::ALL {
            let a = reference.resolve_entities(s);
            let b = merged.resolve_entities(s);
            assert_eq!(a, b, "exact k={k} strategy={s}");
        }
    }

    // Bounded + cached: certified similarities may differ per shard
    // count, but Components ignores edge weights entirely.
    let p = pipeline(strategy, true, true, 2);
    let reference = p
        .run(&refs)
        .unwrap()
        .resolve_entities(ClusterStrategy::Components);
    for k in [1usize, 4] {
        let merged = p
            .sharded(k)
            .run(&refs)
            .unwrap()
            .resolve_entities(ClusterStrategy::Components);
        assert_eq!(
            reference.clusters, merged.clusters,
            "bounded+cached k={k}: components partition"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random corpora: any seed/size, any strategy, any shard count,
    /// exact or bounded — the merged result matches the one-shot run.
    #[test]
    fn shard_invariance_on_random_corpora(
        seed in 0u64..1_000_000,
        entities in 4usize..20,
        strat_idx in 0usize..9,
        k in 1usize..=8,
        bounded in any::<bool>(),
    ) {
        let srcs = sources(entities, seed);
        let refs: Vec<&XRelation> = srcs.iter().collect();
        let strategy = strategies().swap_remove(strat_idx);
        let label = format!(
            "{} seed={seed} entities={entities} k={k} bounded={bounded}",
            strategy.name()
        );
        let p = pipeline(strategy, bounded, false, 2);
        let reference = p.run(&refs).unwrap();
        let merged = p.sharded(k).run(&refs).unwrap();
        // Uncached in both modes: full byte equality applies.
        assert_identical(&reference, &merged, &label);
    }
}
