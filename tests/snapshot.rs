//! The crash-safety contract of session snapshots, end to end:
//!
//! * **Round trip** (property): save → open reproduces the warm session —
//!   identical match / possible / non-match partition, identical clusters,
//!   and an identical-corpus rerun performs **zero** key renders, across
//!   exact/bounded modes, cache on/off and reduction strategies.
//! * **Corruption matrix** (property): flipping or truncating arbitrary
//!   bytes of a valid snapshot always yields a typed
//!   [`SnapshotError`] — never a panic, never a silently misread session.
//! * **Kill points**: a crash at any step of the atomic write-temp →
//!   fsync → rename protocol leaves the previous snapshot loadable.
//! * **Golden fixture**: a committed format-version-1 snapshot still
//!   loads — the canary that format changes bump the version instead of
//!   silently breaking old files.
//!
//! [`SnapshotError`]: probdedup::model::snapshot::SnapshotError

use std::sync::Arc;

use proptest::prelude::*;

use probdedup::core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::session::DedupSession;
use probdedup::core::snapshot::staging_path;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::relation::XRelation;
use probdedup::model::snapshot::SnapshotError;
use probdedup::reduction::{KeyPart, KeySpec, WorldSelection};
use probdedup::textsim::JaroWinkler;

/// The workload: one seeded dirty corpus split into two sources.
fn sources() -> Vec<XRelation> {
    let ds = generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 12,
            sources: 2,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed: 0xD15C,
            ..DatasetConfig::default()
        },
    );
    ds.relations
}

fn key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)])
}

fn strategies() -> Vec<ReductionStrategy> {
    vec![
        ReductionStrategy::Full,
        ReductionStrategy::SortingAlternatives {
            spec: key(),
            window: 4,
        },
        ReductionStrategy::BlockingAlternatives { spec: key() },
        ReductionStrategy::MultipassWorlds {
            spec: key(),
            window: 3,
            selection: WorldSelection::TopK(3),
        },
    ]
}

/// Build the configured front door (exact model or bounded classify-only).
fn pipeline(strategy: ReductionStrategy, bounded: bool, cache: bool) -> DedupPipeline {
    let schema = sources()[0].schema().clone();
    let phi = WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap();
    let thresholds = Thresholds::new(0.72, 0.82).unwrap();
    let b = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .reduction(strategy)
        .threads(2)
        .cache_similarities(cache);
    if bounded {
        b.classify_only(phi, thresholds).build()
    } else {
        b.model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi),
            Arc::new(ExpectedSimilarity),
            thresholds,
        )))
        .build()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("probdedup-snap-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One canonical warm session + its snapshot bytes, for the corruption
/// matrix (built once per property run — the bytes are deterministic).
fn canonical_snapshot() -> (DedupPipeline, Vec<u8>) {
    let srcs = sources();
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let strategy = ReductionStrategy::SortingAlternatives {
        spec: key(),
        window: 4,
    };
    let pipe = pipeline(strategy.clone(), false, true);
    let mut session = pipe.session();
    session.run(&refs).unwrap();
    let bytes = session.to_snapshot_bytes();
    (pipeline(strategy, false, true), bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// save → open over any strategy/mode reproduces the session: same
    /// partition, same clusters, and the reopened session's
    /// identical-corpus rerun renders **zero** keys.
    #[test]
    fn snapshot_roundtrip_reproduces_warm_session(
        strat_idx in 0usize..4,
        bounded in any::<bool>(),
        cache in any::<bool>(),
    ) {
        let srcs = sources();
        let refs: Vec<&XRelation> = srcs.iter().collect();
        let strategy = strategies().swap_remove(strat_idx);
        let label = format!("{} bounded={bounded} cache={cache}", strategy.name());

        let pipe = pipeline(strategy.clone(), bounded, cache);
        let mut session = pipe.session();
        let before = session.run(&refs).unwrap();
        let renders = session.key_render_count();
        let bytes = session.to_snapshot_bytes();

        let mut reopened = DedupSession::from_snapshot_bytes(&bytes, &pipe)
            .unwrap_or_else(|e| panic!("{label}: reopen failed: {e}"));
        // Opening replays the resident corpus through the restored pools:
        // zero key renders, and the decision memo answers `result()`
        // without classifying anything.
        prop_assert_eq!(reopened.key_render_count(), renders, "{}: open rendered", label);
        let restored = reopened.result();
        prop_assert_eq!(&before.decisions, &restored.decisions, "{}: partition", label);
        prop_assert_eq!(&before.clusters, &restored.clusters, "{}: clusters", label);
        prop_assert_eq!(&before.source_offsets, &restored.source_offsets, "{}", label);

        // An identical-corpus rerun on the reopened session stays fully
        // warm — the tentpole's zero-render acceptance criterion.
        let again = reopened.run(&refs).unwrap();
        prop_assert_eq!(reopened.key_render_count(), renders, "{}: rerun rendered", label);
        prop_assert_eq!(&before.decisions, &again.decisions, "{}: rerun partition", label);
    }

    /// Corruption matrix: flip 1–8 arbitrary bytes of a valid snapshot —
    /// loading must return a typed error (the checksums catch every flip)
    /// and must never panic or silently misread.
    #[test]
    fn corrupted_snapshot_always_errors(
        flips in proptest::collection::vec((0usize..1_000_000, 1u8..=255), 1..8),
    ) {
        let (pipe, bytes) = canonical_snapshot();
        let mut corrupt = bytes.clone();
        let mut changed = false;
        for (pos, xor) in flips {
            let pos = pos % corrupt.len();
            corrupt[pos] ^= xor;
            changed = true;
        }
        prop_assert!(changed);
        match DedupSession::from_snapshot_bytes(&corrupt, &pipe) {
            Err(_) => {} // every corruption is a typed error
            Ok(_) => prop_assert!(false, "corrupted snapshot loaded silently"),
        }
    }

    /// Truncation at any length — including 0 and mid-header — is a typed
    /// error, never a panic.
    #[test]
    fn truncated_snapshot_always_errors(cut in 0usize..1_000_000) {
        let (pipe, bytes) = canonical_snapshot();
        let cut = cut % bytes.len(); // strictly shorter than the file
        let truncated = &bytes[..cut];
        match DedupSession::from_snapshot_bytes(truncated, &pipe) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncated snapshot loaded silently"),
        }
    }
}

/// A snapshot opened under a different pipeline configuration is refused
/// up front with [`SnapshotError::ConfigMismatch`] — not misinterpreted.
#[test]
fn mismatched_pipeline_is_refused() {
    let (_, bytes) = canonical_snapshot();
    let other = pipeline(ReductionStrategy::Full, false, true);
    match DedupSession::from_snapshot_bytes(&bytes, &other) {
        Err(SnapshotError::ConfigMismatch { detail }) => {
            assert!(detail.contains("reduction"), "{detail}");
        }
        Err(other) => panic!("expected ConfigMismatch, got {other}"),
        Ok(_) => panic!("mismatched configuration accepted"),
    }
}

/// An unsupported future format version is refused by its header, before
/// any payload is interpreted.
#[test]
fn future_format_version_is_refused() {
    let (pipe, mut bytes) = canonical_snapshot();
    // The version little-endian u32 sits right after the 8-byte magic.
    bytes[8] = 0xFF;
    match DedupSession::from_snapshot_bytes(&bytes, &pipe) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_ne!(found, supported);
        }
        Err(other) => panic!("expected UnsupportedVersion, got {other}"),
        Ok(_) => panic!("future version accepted"),
    }
}

/// Kill-point matrix for the atomic-write protocol: simulate a crash at
/// each step and assert the previous snapshot stays loadable.
///
/// The protocol is write `<path>.tmp` → fsync → rename. A crash *before*
/// the rename leaves `<path>` untouched (whatever junk is in the staging
/// file is invisible); a crash *after* is indistinguishable from success.
/// We reconstruct each intermediate on-disk state by hand.
#[test]
fn crash_mid_save_preserves_previous_snapshot() {
    let dir = temp_dir("killpoints");
    let path = dir.join("session.snap");
    let srcs = sources();
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let strategy = ReductionStrategy::SortingAlternatives {
        spec: key(),
        window: 4,
    };
    let pipe = pipeline(strategy, false, true);
    let mut session = pipe.session();
    session.run(&refs).unwrap();
    session.save(&path).expect("initial save");
    let good = std::fs::read(&path).unwrap();
    let next = session.to_snapshot_bytes();

    // Kill point 1: crashed after creating an empty staging file.
    // Kill point 2: crashed mid-write (truncated staging contents).
    // Kill point 3: crashed after the full write but before the rename.
    let staged: [&[u8]; 3] = [b"", &next[..next.len() / 2], &next];
    for (i, partial) in staged.iter().enumerate() {
        std::fs::write(staging_path(&path), partial).unwrap();
        let reopened = DedupSession::open(&path, &pipe)
            .unwrap_or_else(|e| panic!("kill point {i}: previous snapshot unloadable: {e}"));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good,
            "kill point {i}: snapshot bytes changed without a rename"
        );
        assert_eq!(reopened.decided_count(), session.decided_count());
        // Recovery: the next save replaces the stale staging file and
        // lands atomically.
        session.save(&path).expect("save over stale staging file");
        assert!(!staging_path(&path).exists(), "stale temp left behind");
        assert_eq!(std::fs::read(&path).unwrap(), next);
        std::fs::write(&path, &good).unwrap(); // reset for the next kill point
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed format-version-1 fixture still loads and reproduces its
/// partition — the canary that format changes bump
/// [`FORMAT_VERSION`](probdedup::model::snapshot::FORMAT_VERSION) instead
/// of silently reinterpreting old files. Regenerate (after a deliberate
/// version bump) with:
/// `cargo test --test snapshot regenerate_golden_fixture -- --ignored`.
#[test]
fn golden_fixture_still_loads() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden-v1.snap");
    let bytes =
        std::fs::read(path).expect("committed golden fixture tests/fixtures/golden-v1.snap");
    let (pipe, _) = canonical_snapshot();
    let reopened =
        DedupSession::from_snapshot_bytes(&bytes, &pipe).expect("golden fixture must load");
    // Its decisions agree with a fresh run of the same seeded corpus.
    let srcs = sources();
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let mut fresh = pipe.session();
    let fresh_result = fresh.run(&refs).unwrap();
    let restored = reopened.result();
    assert_eq!(fresh_result.decisions, restored.decisions);
    assert_eq!(fresh_result.clusters, restored.clusters);
}

/// Writes `tests/fixtures/golden-v1.snap`. Ignored in normal runs — the
/// fixture is committed; rerun explicitly only after a deliberate format
/// change (which must also bump `FORMAT_VERSION`).
#[test]
#[ignore = "regenerates the committed golden fixture"]
fn regenerate_golden_fixture() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::create_dir_all(dir).unwrap();
    let (_, bytes) = canonical_snapshot();
    std::fs::write(format!("{dir}/golden-v1.snap"), bytes).unwrap();
}
