//! Cross-crate integration tests: every number the paper derives in its
//! worked examples, recomputed end to end through the public API.

use std::sync::Arc;

use probdedup::decision::combine::{CombinationFunction, WeightedSum};
use probdedup::decision::derive_decision::{ExpectedMatchingResult, MatchingWeightDerivation};
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::{MatchClass, Thresholds};
use probdedup::decision::xmodel::{DecisionBasedModel, SimilarityBasedModel, XTupleDecisionModel};
use probdedup::matching::matrix::compare_xtuples;
use probdedup::matching::pvalue_sim::pvalue_similarity;
use probdedup::matching::value_cmp::ValueComparator;
use probdedup::matching::vector::{compare_tuples, AttributeComparators};
use probdedup::model::condition::existence_event_probability;
use probdedup::model::world::enumerate_worlds;
use probdedup::paper::{self, rows};
use probdedup::reduction::{
    block_alternatives, conflict_resolved_snm, ranked_snm, sorting_alternatives,
    ConflictResolution, RankingFunction,
};
use probdedup::textsim::{NormalizedHamming, StringComparator};

const EPS: f64 = 1e-12;

fn comparators() -> AttributeComparators {
    AttributeComparators::uniform(&paper::schema(), NormalizedHamming::new())
}

/// Section IV-A: the three string-kernel values the examples rely on.
#[test]
fn section4a_kernel_values() {
    let h = NormalizedHamming::new();
    assert!((h.similarity("Tim", "Kim") - 2.0 / 3.0).abs() < EPS);
    assert!((h.similarity("machinist", "mechanic") - 5.0 / 9.0).abs() < EPS);
    assert!((h.similarity("Jim", "Tom") - 1.0 / 3.0).abs() < EPS);
}

/// Section IV-A: sim(t11.name, t22.name) = 0.9 and
/// sim(t11.job, t22.job) = 53/90 ≈ 0.59 via Eq. 5.
#[test]
fn section4a_attribute_similarities() {
    let r1 = paper::fig4_r1();
    let r2 = paper::fig4_r2();
    let cmp = ValueComparator::text(NormalizedHamming::new());
    let t11 = &r1.tuples()[0];
    let t22 = &r2.tuples()[1];
    assert!((pvalue_similarity(t11.value(0), t22.value(0), &cmp) - 0.9).abs() < EPS);
    assert!((pvalue_similarity(t11.value(1), t22.value(1), &cmp) - 53.0 / 90.0).abs() < EPS);
}

/// Section IV-A: φ(c⃗) = 0.8·c₁ + 0.2·c₂ gives sim(t11, t22) = 377/450
/// (the paper prints 0.838 after rounding c₂ to 0.59).
#[test]
fn section4a_tuple_similarity() {
    let r1 = paper::fig4_r1();
    let r2 = paper::fig4_r2();
    let c = compare_tuples(&r1.tuples()[0], &r2.tuples()[1], &comparators());
    let phi = WeightedSum::new([0.8, 0.2]).unwrap();
    let sim = phi.combine(&c);
    assert!((sim - 377.0 / 450.0).abs() < EPS);
    assert!((sim - 0.838).abs() < 1e-3);
}

/// Fig. 7: the eight worlds of (t32, t42), their probabilities, and
/// P(B) = 0.72.
#[test]
fn fig7_possible_worlds() {
    let r34 = paper::r34();
    let pair = [
        r34.get(rows::T32).unwrap().clone(),
        r34.get(rows::T42).unwrap().clone(),
    ];
    let worlds = enumerate_worlds(&pair, 100).unwrap();
    assert_eq!(worlds.len(), 8);
    let mut probs: Vec<f64> = worlds.iter().map(|w| w.probability).collect();
    probs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut expected = [0.24, 0.16, 0.32, 0.08, 0.06, 0.04, 0.08, 0.02];
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (got, want) in probs.iter().zip(expected.iter()) {
        assert!((got - want).abs() < EPS, "{got} vs {want}");
    }
    assert!((existence_event_probability(&pair) - 0.72).abs() < EPS);
}

/// Fig. 7 similarity-based walkthrough: the alternative-pair similarities
/// 11/15, 7/15, 4/15 and the Eq. 6 expectation 7/15.
#[test]
fn fig7_similarity_based_derivation() {
    let r34 = paper::r34();
    let t32 = r34.get(rows::T32).unwrap();
    let t42 = r34.get(rows::T42).unwrap();
    let matrix = compare_xtuples(t32, t42, &comparators());
    let phi = WeightedSum::new([0.8, 0.2]).unwrap();
    let sims: Vec<f64> = matrix.iter().map(|(_, _, c)| phi.combine(c)).collect();
    assert!((sims[0] - 11.0 / 15.0).abs() < EPS);
    assert!((sims[1] - 7.0 / 15.0).abs() < EPS);
    assert!((sims[2] - 4.0 / 15.0).abs() < EPS);

    let model = SimilarityBasedModel::new(
        Arc::new(phi),
        Arc::new(ExpectedSimilarity),
        Thresholds::new(0.4, 0.7).unwrap(),
    );
    let d = model.decide(t32, t42, &matrix);
    assert!((d.similarity - 7.0 / 15.0).abs() < EPS);
    assert_eq!(d.class, MatchClass::Possible);
}

/// Fig. 7 decision-based walkthrough: P(m) = 3/9, P(u) = 4/9,
/// sim = 0.75; and the sketched E(η) = 8/9.
#[test]
fn fig7_decision_based_derivation() {
    let r34 = paper::r34();
    let t32 = r34.get(rows::T32).unwrap();
    let t42 = r34.get(rows::T42).unwrap();
    let matrix = compare_xtuples(t32, t42, &comparators());
    let phi: Arc<dyn CombinationFunction> = Arc::new(WeightedSum::new([0.8, 0.2]).unwrap());

    let weight_model = DecisionBasedModel::new(
        phi.clone(),
        Thresholds::new(0.4, 0.7).unwrap(),
        Arc::new(MatchingWeightDerivation::new()),
        Thresholds::new(0.5, 2.0).unwrap(),
    );
    let d = weight_model.decide(t32, t42, &matrix);
    assert!((d.similarity - 0.75).abs() < EPS);

    let e_model = DecisionBasedModel::new(
        phi,
        Thresholds::new(0.4, 0.7).unwrap(),
        Arc::new(ExpectedMatchingResult::new()),
        Thresholds::new(0.9, 1.7).unwrap(),
    );
    let d = e_model.decide(t32, t42, &matrix);
    assert!((d.similarity - 8.0 / 9.0).abs() < EPS);
}

/// Fig. 10: conflict-resolved sorting produces Jimba, Johpi, Johpi, Seapi,
/// Tomme — and its matchings are a subset of the all-worlds multi-pass.
#[test]
fn fig10_conflict_resolved_order() {
    let r34 = paper::r34();
    let (_, order) = conflict_resolved_snm(
        r34.xtuples(),
        &paper::sorting_key(),
        2,
        ConflictResolution::MostProbableAlternative,
    );
    let keys: Vec<&str> = order.iter().map(|e| e.key.as_str()).collect();
    assert_eq!(keys, vec!["Jimba", "Johpi", "Johpi", "Seapi", "Tomme"]);
    let tuples: Vec<usize> = order.iter().map(|e| e.tuple).collect();
    assert_eq!(
        tuples,
        vec![rows::T32, rows::T31, rows::T41, rows::T43, rows::T42]
    );
}

/// Fig. 11: sorting alternatives with window 2 executes exactly the five
/// matchings listed in the paper.
#[test]
fn fig11_sorting_alternatives_five_matchings() {
    let r34 = paper::r34();
    let r = sorting_alternatives(r34.xtuples(), &paper::sorting_key(), 2);
    assert_eq!(
        r.pairs.pairs(),
        &[
            (rows::T32, rows::T43),
            (rows::T31, rows::T43),
            (rows::T31, rows::T41),
            (rows::T41, rows::T43),
            (rows::T32, rows::T42),
        ]
    );
}

/// Fig. 13: the probabilistic key values and the ranked order.
#[test]
fn fig13_uncertain_keys_and_ranking() {
    let r34 = paper::r34();
    let spec = paper::sorting_key();
    // t31 keys: Johpi 0.7, Johmu 0.3.
    let mut k31 = spec.xtuple_keys(r34.get(rows::T31).unwrap());
    k31.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(k31[0].0, "Johmu");
    assert!((k31[0].1 - 0.3).abs() < EPS);
    // t41: certain key despite two alternatives.
    let k41 = spec.xtuple_keys(r34.get(rows::T41).unwrap());
    assert_eq!(k41.len(), 1);
    assert!((k41[0].1 - 1.0).abs() < EPS);
    // t43: Joh 0.2, Seapi 0.6 (masses sum to p(t) = 0.8).
    let mut k43 = spec.xtuple_keys(r34.get(rows::T43).unwrap());
    k43.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(k43[0], ("Joh".to_string(), 0.2));
    // Ranked order: t32, t31, t41, t43, t42.
    let (_, order) = ranked_snm(r34.xtuples(), &spec, 2, RankingFunction::MostProbableKey);
    assert_eq!(
        order,
        vec![rows::T32, rows::T31, rows::T41, rows::T43, rows::T42]
    );
}

/// Fig. 14: blocking with alternative keys yields six blocks and three
/// matchings on ℛ34.
#[test]
fn fig14_blocking() {
    let r34 = paper::r34();
    let r = block_alternatives(r34.xtuples(), &paper::blocking_key());
    assert_eq!(r.blocks.len(), 6);
    assert_eq!(
        r.pairs.pairs(),
        &[
            (rows::T31, rows::T32),
            (rows::T31, rows::T41),
            (rows::T32, rows::T42),
        ]
    );
}
