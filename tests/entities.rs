//! End-to-end contracts of the entity-resolution subsystem
//! (`probdedup::entity`) over the real pipeline:
//!
//! * **determinism** — the resolution is byte-identical across thread
//!   counts and invariant under the order the decided pairs arrive in;
//! * **persistence** — a session's memoized resolutions survive a
//!   snapshot save → open round-trip bit-for-bit (snapshot section 9);
//! * **semantics** — on a constructed inconsistent triangle the
//!   correlation-repaired strategy splits what connected components
//!   glue, and on clean corpora all strategies agree.
//!
//! Exactness matters here: these tests run the exact (non-bounded)
//! matcher, whose certified similarities — the edge weights — are
//! invariant. Bounded + cached runs certify the same *partition* but
//! may certify different representative similarities, so only the
//! weight-blind `Components` strategy is byte-stable there (covered by
//! the rider in `tests/sharded.rs`).

use std::sync::Arc;

use proptest::prelude::*;

use probdedup::core::pipeline::{DedupPipeline, PairDecision, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::session::DedupSession;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::{MatchClass, Thresholds};
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::entity::{resolve_decisions, ClusterStrategy, ResolveEntities, SessionEntities};
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::relation::XRelation;
use probdedup::reduction::{KeyPart, KeySpec};
use probdedup::textsim::JaroWinkler;

/// Two dirty overlapping sources (the sharded-suite recipe).
fn sources(entities: usize, seed: u64) -> Vec<XRelation> {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities,
            sources: 2,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed,
            ..DatasetConfig::default()
        },
    )
    .relations
}

/// Exact (non-bounded) pipeline — certified similarities, hence edge
/// weights, are deterministic.
fn pipeline(threads: usize) -> DedupPipeline {
    let schema = sources(1, 7).remove(0).schema().clone();
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.72, 0.82).unwrap(),
        )))
        .reduction(ReductionStrategy::SortingAlternatives {
            spec: KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]),
            window: 4,
        })
        .threads(threads)
        .cache_similarities(true)
        .build()
}

/// Byte identity across thread counts, for every strategy: the whole
/// resolution — clusters, stats (including repair moves), possible
/// edges — must not depend on parallel classification order.
#[test]
fn resolution_is_identical_across_thread_counts() {
    let srcs = sources(16, 0xE17);
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let reference = pipeline(1).run(&refs).unwrap();
    let parallel = pipeline(4).run(&refs).unwrap();
    for strategy in ClusterStrategy::ALL {
        assert_eq!(
            reference.resolve_entities(strategy),
            parallel.resolve_entities(strategy),
            "threads 1 vs 4, {strategy}"
        );
    }
}

/// A session's memoized resolutions survive save → open byte-for-bit:
/// the reopened session answers from the restored cache (snapshot
/// section 9) without re-clustering, and the answers are identical.
#[test]
fn session_snapshot_round_trips_the_entity_cache() {
    let srcs = sources(12, 0xBEEF);
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let p = pipeline(2);
    let mut session = p.session();
    session.run(&refs).unwrap();

    let before: Vec<_> = ClusterStrategy::ALL
        .into_iter()
        .map(|s| session.resolve_entities(s))
        .collect();

    let path = std::env::temp_dir().join(format!("probdedup-entities-{}.snap", std::process::id()));
    session.save(&path).unwrap();
    let mut reopened = DedupSession::open(&path, &p).unwrap();
    std::fs::remove_file(&path).ok();

    for (strategy, expected) in ClusterStrategy::ALL.into_iter().zip(&before) {
        let cached = reopened
            .cached_entities(strategy.id())
            .unwrap_or_else(|| panic!("section 9 must restore the {strategy} cache"));
        assert_eq!(cached.clusters, expected.clusters, "{strategy}: cache");
        assert_eq!(
            cached.moves, expected.stats.repair_moves,
            "{strategy}: cached moves"
        );
        assert_eq!(
            &reopened.resolve_entities(strategy),
            expected,
            "{strategy}: resolution after restart"
        );
    }
}

/// `peek_entities` (read-only) agrees with `resolve_entities`
/// (memoizing), and an ingest invalidates the memo.
#[test]
fn peek_agrees_and_ingest_invalidates() {
    let srcs = sources(10, 42);
    let p = pipeline(2);
    let mut session = p.session();
    session.ingest(&srcs[0]).unwrap();

    let peeked = session.peek_entities(ClusterStrategy::CorrelationRepaired);
    let resolved = session.resolve_entities(ClusterStrategy::CorrelationRepaired);
    assert_eq!(peeked, resolved);
    assert!(session
        .cached_entities(ClusterStrategy::CorrelationRepaired.id())
        .is_some());

    session.ingest(&srcs[1]).unwrap();
    assert!(
        session
            .cached_entities(ClusterStrategy::CorrelationRepaired.id())
            .is_none(),
        "new rows must invalidate the entity memo"
    );
    // Re-resolving over the grown corpus equals the one-shot resolution.
    let refs: Vec<&XRelation> = srcs.iter().collect();
    let oneshot = p
        .run(&refs)
        .unwrap()
        .resolve_entities(ClusterStrategy::CorrelationRepaired);
    assert_eq!(
        session.resolve_entities(ClusterStrategy::CorrelationRepaired),
        oneshot
    );
}

/// The constructed inconsistent triangle, end to end through the public
/// resolver: A≈B (strong), B≈C (weaker), A≉C. Transitive closure glues
/// all three; the repaired correlation clustering cuts the weakest
/// agreement instead of overruling the strong disagreement.
#[test]
fn repair_splits_the_inconsistent_triangle_components_do_not() {
    let d = |i: usize, j: usize, sim: f64, class: MatchClass| PairDecision {
        pair: (i, j),
        similarity: sim,
        class,
    };
    let decisions = vec![
        d(0, 1, 0.95, MatchClass::Match),
        d(1, 2, 0.74, MatchClass::Match),
        d(0, 2, 0.05, MatchClass::NonMatch),
    ];

    let glued = resolve_decisions(3, &decisions, ClusterStrategy::Components);
    assert_eq!(glued.clusters, vec![vec![0, 1, 2]]);
    assert_eq!(glued.stats.inconsistent_triangles, 1);

    let repaired = resolve_decisions(3, &decisions, ClusterStrategy::CorrelationRepaired);
    assert_eq!(repaired.clusters, vec![vec![0, 1], vec![2]]);
    assert_eq!(repaired.stats.inconsistent_triangles, 1);
    assert!(repaired.stats.repair_moves > 0 || repaired.clusters.len() == 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pair-order invariance: however the decided pairs are permuted
    /// (here: rotated and reversed — enough to break any order
    /// dependence), every strategy resolves to the identical partition.
    #[test]
    fn resolution_is_invariant_under_pair_order(
        seed in 0u64..1_000_000,
        n in 4usize..24,
        rotation in 0usize..64,
    ) {
        // A deterministic pseudo-random decision list over `n` rows.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut decisions = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                match next() % 4 {
                    0 => decisions.push(PairDecision {
                        pair: (i, j),
                        similarity: (next() % 1000) as f64 / 1000.0,
                        class: MatchClass::Match,
                    }),
                    1 => decisions.push(PairDecision {
                        pair: (i, j),
                        similarity: (next() % 1000) as f64 / 1000.0,
                        class: MatchClass::NonMatch,
                    }),
                    2 => decisions.push(PairDecision {
                        pair: (i, j),
                        similarity: (next() % 1000) as f64 / 1000.0,
                        class: MatchClass::Possible,
                    }),
                    _ => {} // undecided pair
                }
            }
        }
        let mut permuted = decisions.clone();
        let cut = if permuted.is_empty() { 0 } else { rotation % permuted.len() };
        permuted.rotate_left(cut);
        permuted.reverse();

        for strategy in ClusterStrategy::ALL {
            let a = resolve_decisions(n, &decisions, strategy);
            let b = resolve_decisions(n, &permuted, strategy);
            prop_assert_eq!(a, b, "strategy {}", strategy);
        }
    }
}
