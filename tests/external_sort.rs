//! The external merge sort's contract: for **any** corpus and **any**
//! spill threshold — including run size 1 (every entry its own spilled
//! run) and thresholds larger than the corpus (never spills) — the
//! spill-file path produces byte-identical SNM candidates to the
//! in-memory [`sorted_neighborhood_interned`], and its temp files are
//! gone afterwards, whether the k-way merge ran to completion or was
//! dropped mid-stream (a simulated failure).
//!
//! [`sorted_neighborhood_interned`]: probdedup::reduction::sorted_neighborhood_interned

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::model::xtuple::XTuple;
use probdedup::reduction::{
    sorted_neighborhood_external, sorted_neighborhood_interned, ExternalSortConfig, ExternalSorter,
    InternedSnmEntry, KeyPart, KeySpec, KeyTable,
};

fn corpus(entities: usize, seed: u64) -> Vec<XTuple> {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities,
            sources: 2,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed,
            ..DatasetConfig::default()
        },
    )
    .combined()
    .xtuples()
    .to_vec()
}

/// One SNM entry per key alternative — the sorting-alternatives entry
/// list (Section V-A.3).
fn entries_for(tuples: &[XTuple], spec: &KeySpec) -> (Vec<InternedSnmEntry>, KeyTable) {
    let table = spec.key_table(tuples);
    let mut entries = Vec::new();
    for i in 0..tuples.len() {
        for &key in table.alternative_keys(i) {
            entries.push(InternedSnmEntry::new(key, i));
        }
    }
    (entries, table)
}

/// A fresh, empty spill directory unique to this process + call.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "probdedup-extsort-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn files_in(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir).expect("read scratch dir").count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any corpus, any run size (1 ⇒ every entry spills as its own run;
    /// > corpus ⇒ nothing spills), any window, with and without the
    /// adjacent-duplicate skip: the external path's candidate pairs are
    /// byte-identical to the in-memory sort, and the spill directory is
    /// empty once the scan returns.
    #[test]
    fn external_sort_matches_in_memory(
        entities in 2usize..16,
        seed in 0u64..1_000_000,
        run_idx in 0usize..5,
        window in 2usize..6,
        skip in any::<bool>(),
    ) {
        let tuples = corpus(entities, seed);
        let spec = KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]);
        let (entries, table) = entries_for(&tuples, &spec);
        // Run sizes spanning the degenerate ends: 1 (maximal spilling)
        // through larger-than-corpus (pure in-memory, zero files).
        let run_entries = [1, 2, 3, 7, entries.len() + 1][run_idx];

        let (in_memory, _) = sorted_neighborhood_interned(
            entries.clone(),
            table.ranks(),
            window,
            tuples.len(),
            skip,
        );

        let dir = scratch_dir("match");
        let cfg = ExternalSortConfig {
            run_entries,
            dir: Some(dir.clone()),
        };
        let (external, stats) =
            sorted_neighborhood_external(&entries, table.ranks(), window, tuples.len(), skip, &cfg)
                .expect("external sort");

        prop_assert_eq!(external.pairs(), in_memory.pairs());
        prop_assert_eq!(stats.entries, entries.len());
        if run_entries == 1 && entries.len() > 1 {
            prop_assert!(stats.runs_spilled > 0, "run size 1 must spill");
        }
        if run_entries > entries.len() {
            prop_assert_eq!(stats.runs_spilled, 0, "oversized buffer must not spill");
            prop_assert_eq!(stats.spilled_bytes, 0);
        }
        // Success path: every spilled run is removed with its stream.
        prop_assert_eq!(files_in(&dir), 0, "spill files left behind");
        std::fs::remove_dir(&dir).expect("remove scratch dir");
    }

    /// A consumer that dies mid-merge (stream dropped after one record)
    /// still leaves no spill files behind — the RAII run handles clean
    /// up on drop, not on successful exhaustion.
    #[test]
    fn early_drop_cleans_spill_files(
        entities in 2usize..12,
        seed in 0u64..1_000_000,
    ) {
        let tuples = corpus(entities, seed);
        let spec = KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]);
        let (entries, table) = entries_for(&tuples, &spec);

        let dir = scratch_dir("drop");
        let cfg = ExternalSortConfig {
            run_entries: 1, // every entry its own spilled run
            dir: Some(dir.clone()),
        };
        let mut sorter = ExternalSorter::new(cfg);
        for e in &entries {
            sorter.push(table.ranks().rank(e.key), e.tuple).expect("push");
        }
        let (mut stream, stats) = sorter.finish().expect("finish");
        prop_assert!(stats.runs_spilled >= entries.len().min(2));
        prop_assert!(files_in(&dir) > 0, "runs must be on disk mid-merge");
        // Simulated mid-merge failure: consume one record, then drop.
        let first = stream.next();
        prop_assert!(first.is_some());
        drop(stream);
        prop_assert_eq!(files_in(&dir), 0, "spill files leaked on early drop");
        std::fs::remove_dir(&dir).expect("remove scratch dir");
    }
}
