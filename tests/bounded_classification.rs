//! Bounded-equals-exact classification: the headline guarantee of the
//! threshold-driven bounded evaluation path.
//!
//! For generated schemas (uncertain values, multi-alternative x-tuples,
//! ⊥ mass, typo-adjacent strings) the classify-only pipeline mode must
//! produce **the same match / possible / non-match partition, in the same
//! candidate order**, as the exact similarity-based model — with
//! thresholds chosen as midpoints between *observed* similarity values so
//! every case exercises all three Fellegi–Sunter bands and no similarity
//! sits inside the certificate margin of a threshold.

use std::sync::Arc;

use proptest::prelude::*;

use probdedup::core::pipeline::ReductionStrategy;
use probdedup::core::DedupPipeline;
use probdedup::decision::budget::CERT_MARGIN;
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::{MatchClass, Thresholds};
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::pvalue::PValue;
use probdedup::model::relation::XRelation;
use probdedup::model::schema::Schema;
use probdedup::model::xtuple::XTuple;
use probdedup::textsim::{JaroWinkler, Levenshtein, NormalizedHamming, StringComparator};

fn schema() -> Schema {
    Schema::new(["name", "job"])
}

/// A small, typo-adjacent vocabulary — similar strings keep many pairs
/// near the decision boundary (the shim's pattern strategies support no
/// alternation, so the vocabulary is indexed explicitly).
const VOCAB: &[&str] = &[
    "Tim",
    "Tom",
    "Jim",
    "Timmy",
    "John",
    "Johan",
    "Johann",
    "pilot",
    "pil0t",
    "pilots",
    "baker",
    "bakker",
    "mechanic",
    "machinist",
    "garcia",
];

/// One uncertain attribute value over [`VOCAB`].
fn arb_pvalue() -> impl Strategy<Value = PValue> {
    proptest::collection::vec((0usize..VOCAB.len(), 1u32..40), 1..3).prop_map(|alts| {
        let total: u32 = alts.iter().map(|(_, w)| *w).sum();
        let denom = f64::from(total) * 1.15; // leave some ⊥ mass
                                             // Merge repeated vocabulary draws (categorical wants distinct
                                             // values).
        let mut merged = std::collections::BTreeMap::<usize, f64>::new();
        for (vi, w) in alts {
            *merged.entry(vi).or_insert(0.0) += f64::from(w) / denom;
        }
        PValue::categorical(merged.into_iter().map(|(vi, p)| (VOCAB[vi], p))).unwrap()
    })
}

fn arb_xtuple() -> impl Strategy<Value = XTuple> {
    proptest::collection::vec((arb_pvalue(), arb_pvalue(), 1u32..40), 1..3).prop_map(|alts| {
        let total: u32 = alts.iter().map(|(_, _, w)| *w).sum();
        let denom = f64::from(total) * 1.1;
        let s = schema();
        let mut b = XTuple::builder(&s);
        for (name, job, w) in alts {
            b = b.alt_pvalues(f64::from(w) / denom, [name, job]);
        }
        b.build().unwrap()
    })
}

fn arb_relation() -> impl Strategy<Value = XRelation> {
    proptest::collection::vec(arb_xtuple(), 3..8).prop_map(|tuples| {
        let mut r = XRelation::new(schema());
        for t in tuples {
            r.push(t);
        }
        r
    })
}

/// Pick thresholds as midpoints between observed (sorted, distinct)
/// similarities so that all three bands are populated and no observed
/// value lies within the certificate margin of a threshold. Returns `None`
/// when fewer than three sufficiently-distinct values were observed.
fn band_splitting_thresholds(sims: &[f64]) -> Option<Thresholds> {
    let mut distinct: Vec<f64> = sims.to_vec();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite sims"));
    distinct.dedup_by(|b, a| (*b - *a).abs() < 10.0 * CERT_MARGIN);
    if distinct.len() < 3 {
        return None;
    }
    // Split roughly into thirds.
    let lambda = (distinct[distinct.len() / 3 - 1] + distinct[distinct.len() / 3]) / 2.0;
    let hi_idx = 2 * distinct.len() / 3;
    let mu = (distinct[hi_idx - 1] + distinct[hi_idx]) / 2.0;
    Thresholds::new(lambda, mu).ok()
}

fn check_kernel(kernel: impl StringComparator + Clone + 'static, relation: &XRelation) {
    let comparators = AttributeComparators::uniform(&schema(), kernel);
    let phi = WeightedSum::new([0.7, 0.3]).unwrap();
    // First pass with throwaway thresholds to observe the similarity
    // distribution (the exact degrees are threshold-independent).
    let probe = DedupPipeline::builder()
        .comparators(comparators.clone())
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi.clone()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.0, 0.0).unwrap(),
        )))
        .reduction(ReductionStrategy::Full)
        .build()
        .run(&[relation])
        .expect("probe run");
    let sims: Vec<f64> = probe.decisions.iter().map(|d| d.similarity).collect();
    let Some(thresholds) = band_splitting_thresholds(&sims) else {
        return; // degenerate draw: too few distinct similarities
    };
    let exact = DedupPipeline::builder()
        .comparators(comparators.clone())
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi.clone()),
            Arc::new(ExpectedSimilarity),
            thresholds,
        )))
        .reduction(ReductionStrategy::Full)
        .build()
        .run(&[relation])
        .expect("exact run");
    // All three bands hit by construction.
    for class in [
        MatchClass::Match,
        MatchClass::Possible,
        MatchClass::NonMatch,
    ] {
        assert!(
            exact.decisions.iter().any(|d| d.class == class),
            "band {class} empty despite band-splitting thresholds"
        );
    }
    for cache in [false, true] {
        let bounded = DedupPipeline::builder()
            .comparators(comparators.clone())
            .classify_only(phi.clone(), thresholds)
            .cache_similarities(cache)
            .reduction(ReductionStrategy::Full)
            .build()
            .run(&[relation])
            .expect("bounded run");
        assert_eq!(exact.decisions.len(), bounded.decisions.len());
        for (x, y) in exact.decisions.iter().zip(&bounded.decisions) {
            // Same candidate ordering, same partition.
            assert_eq!(x.pair, y.pair, "cache {cache}");
            assert_eq!(
                x.class, y.class,
                "cache {cache}, pair {:?}: exact sim {} vs bounded representative {}",
                x.pair, x.similarity, y.similarity
            );
            // The certified representative classifies identically.
            assert_eq!(thresholds.classify(y.similarity), y.class);
        }
        assert_eq!(exact.clusters, bounded.clusters, "cache {cache}");
        // The tier counters partition the candidate set.
        let s = &bounded.stats;
        assert_eq!(
            s.pairs_early_match
                + s.pairs_early_nonmatch
                + s.pairs_early_possible
                + s.pairs_exhausted,
            bounded.candidates as u64
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bounded classification is identical to exact classification under
    /// the paper's normalized Hamming kernel.
    #[test]
    fn bounded_equals_exact_hamming(r in arb_relation()) {
        check_kernel(NormalizedHamming::new(), &r);
    }

    /// … under the banded-Myers Levenshtein kernel (the kernel with the
    /// deepest bounded fast path: prefilters + banded bit-parallel DP).
    #[test]
    fn bounded_equals_exact_levenshtein(r in arb_relation()) {
        check_kernel(Levenshtein::new(), &r);
    }

    /// … under Jaro-Winkler (class-mask prefilter only), the workload
    /// kernel of the benchmarks.
    #[test]
    fn bounded_equals_exact_jaro_winkler(r in arb_relation()) {
        check_kernel(JaroWinkler::new(), &r);
    }
}
