//! The session's **split-invariance** contract, end to end: ingesting a
//! generated corpus through a [`DedupSession`] in *any* batch split yields
//! the same match / possible / non-match partition (and the same duplicate
//! clusters) as one batch [`DedupPipeline::run`] over the concatenated
//! sources — under the exact decision model and the classify-only
//! (bounded) mode, with and without the similarity cache, across thread
//! counts. Plus the warm-rerun certificate: re-running an unchanged corpus
//! performs **zero** key renders and interns zero new values.
//!
//! [`DedupSession`]: probdedup::core::session::DedupSession
//! [`DedupPipeline::run`]: probdedup::core::pipeline::DedupPipeline::run

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use probdedup::core::pipeline::{DedupPipeline, DedupResult, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::session::DedupSession;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::{MatchClass, Thresholds};
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::relation::XRelation;
use probdedup::model::xtuple::XTuple;
use probdedup::reduction::{ConflictResolution, KeyPart, KeySpec, WorldSelection};
use probdedup::textsim::JaroWinkler;

/// The workload corpus: two small dirty sources, concatenated (we re-split
/// them ourselves).
fn corpus() -> Vec<XTuple> {
    let ds = generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 14,
            sources: 2,
            typo_rate: 0.3,
            uncertainty_rate: 0.4,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            seed: 0xC0FFEE,
            ..DatasetConfig::default()
        },
    );
    ds.combined().xtuples().to_vec()
}

fn key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)])
}

fn strategies() -> Vec<ReductionStrategy> {
    vec![
        ReductionStrategy::Full,
        ReductionStrategy::SortingAlternatives {
            spec: key(),
            window: 4,
        },
        ReductionStrategy::ConflictResolved {
            spec: key(),
            window: 4,
            strategy: ConflictResolution::MostProbableAlternative,
        },
        ReductionStrategy::BlockingAlternatives { spec: key() },
        ReductionStrategy::MultipassWorlds {
            spec: key(),
            window: 3,
            selection: WorldSelection::TopK(3),
        },
    ]
}

/// Build the configured front door (exact model or bounded classify-only).
fn pipeline(
    strategy: ReductionStrategy,
    bounded: bool,
    cache: bool,
    threads: usize,
) -> DedupPipeline {
    let schema = corpus_schema();
    let phi = WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap();
    let thresholds = Thresholds::new(0.72, 0.82).unwrap();
    let b = DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .reduction(strategy)
        .threads(threads)
        .cache_similarities(cache);
    if bounded {
        b.classify_only(phi, thresholds).build()
    } else {
        b.model(Arc::new(SimilarityBasedModel::new(
            Arc::new(phi),
            Arc::new(ExpectedSimilarity),
            thresholds,
        )))
        .build()
    }
}

fn corpus_schema() -> probdedup::model::schema::Schema {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 1,
            ..DatasetConfig::default()
        },
    )
    .schema
}

/// Split `tuples` into 1..=4 batches at the given relative cut points.
fn split_sources(tuples: &[XTuple], cuts: &[usize]) -> Vec<XRelation> {
    let schema = corpus_schema();
    let n = tuples.len();
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| {
            let mut r = XRelation::new(schema.clone());
            for t in &tuples[w[0]..w[1]] {
                r.push(t.clone());
            }
            r
        })
        .filter(|r| !r.is_empty())
        .collect()
}

fn class_map(result: &DedupResult) -> HashMap<(usize, usize), MatchClass> {
    result.decisions.iter().map(|d| (d.pair, d.class)).collect()
}

/// Assert the session's merged view equals the one-shot run.
fn assert_equivalent(one_shot: &DedupResult, merged: &DedupResult, label: &str) {
    assert_eq!(
        one_shot.decisions.len(),
        merged.decisions.len(),
        "{label}: candidate counts differ"
    );
    let by_pair = class_map(merged);
    for d in &one_shot.decisions {
        assert_eq!(
            by_pair.get(&d.pair),
            Some(&d.class),
            "{label}: pair {:?} classified differently",
            d.pair
        );
    }
    assert_eq!(one_shot.clusters, merged.clusters, "{label}: clusters");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any random split of the corpus into 1..=4 ingest batches reproduces
    /// the one-shot batch partition — exact and bounded modes, cached and
    /// uncached, 1 and 4 threads, across reduction strategies (including a
    /// world-dependent one).
    #[test]
    fn ingest_split_invariance(
        cuts in proptest::collection::vec(0usize..10_000, 0..3),
        strat_idx in 0usize..5,
        four_threads in any::<bool>(),
        bounded in any::<bool>(),
        cache in any::<bool>(),
    ) {
        let threads = if four_threads { 4 } else { 1 };
        let tuples = corpus();
        let sources = split_sources(&tuples, &cuts);
        let refs: Vec<&XRelation> = sources.iter().collect();
        let strategy = strategies().swap_remove(strat_idx);
        let label = format!(
            "{} bounded={bounded} cache={cache} threads={threads} batches={}",
            strategy.name(),
            sources.len()
        );

        let one_shot = pipeline(strategy.clone(), bounded, cache, threads)
            .run(&refs)
            .unwrap();
        let mut session: DedupSession =
            pipeline(strategy, bounded, cache, threads).session();
        for src in &sources {
            session.ingest(src).unwrap();
        }
        assert_equivalent(&one_shot, &session.result(), &label);
    }
}

/// The warm-rerun certificate: running the same sources again performs
/// zero key renders, interns zero new values, and returns the identical
/// result — asserted through the session's pool counters
/// ([`KeyPool::render_count`] under the hood).
///
/// [`KeyPool::render_count`]: probdedup::model::intern::KeyPool::render_count
#[test]
fn warm_rerun_performs_zero_key_renders() {
    let tuples = corpus();
    let sources = split_sources(&tuples, &[tuples.len() / 2]);
    let refs: Vec<&XRelation> = sources.iter().collect();
    for (bounded, strategy) in [
        (
            false,
            ReductionStrategy::SortingAlternatives {
                spec: key(),
                window: 4,
            },
        ),
        (
            true,
            ReductionStrategy::BlockingAlternatives { spec: key() },
        ),
        (
            false,
            ReductionStrategy::MultipassWorlds {
                spec: key(),
                window: 3,
                selection: WorldSelection::TopK(3),
            },
        ),
    ] {
        let mut session = pipeline(strategy, bounded, true, 2).session();
        let first = session.run(&refs).unwrap();
        let renders = session.key_render_count();
        let interned = session.interned_value_count();
        assert!(renders > 0, "key table never built");
        assert!(interned > 0, "nothing interned");
        let again = session.run(&refs).unwrap();
        assert_eq!(
            session.key_render_count(),
            renders,
            "warm rerun rendered keys"
        );
        assert_eq!(
            session.interned_value_count(),
            interned,
            "warm rerun interned new values"
        );
        assert_eq!(first.decisions, again.decisions);
        assert_eq!(first.clusters, again.clusters);
    }
}

/// Ingest after `run`: the session extends the corpus it ran, and the
/// merged view equals a one-shot run over all three batches.
#[test]
fn run_then_ingest_composes() {
    let tuples = corpus();
    let sources = split_sources(&tuples, &[tuples.len() / 3, 2 * tuples.len() / 3]);
    if sources.len() < 3 {
        return; // degenerate corpus; nothing to compose
    }
    let refs_all: Vec<&XRelation> = sources.iter().collect();
    let strategy = ReductionStrategy::SortingAlternatives {
        spec: key(),
        window: 4,
    };
    let one_shot = pipeline(strategy.clone(), false, true, 2)
        .run(&refs_all)
        .unwrap();
    let mut session = pipeline(strategy, false, true, 2).session();
    session.run(&[&sources[0], &sources[1]]).unwrap();
    let step = session.ingest(&sources[2]).unwrap();
    assert!(step.rows_added() > 0);
    assert_equivalent(&one_shot, &session.result(), "run-then-ingest");
}
