//! Thread-count determinism: the work-stealing executor must reassemble
//! decisions in candidate order, so a `threads(8)` run is **byte-identical**
//! to `threads(1)` on the same input — in both matching modes (plain and
//! interned/cached). Similarities are compared via their raw f64 bit
//! patterns: not approximately equal, identical.

use std::sync::Arc;

use probdedup_core::pipeline::{DedupPipeline, DedupResult, ReductionStrategy};
use probdedup_core::prepare::Preparation;
use probdedup_datagen::{generate, DatasetConfig, Dictionaries};
use probdedup_decision::combine::WeightedSum;
use probdedup_decision::derive_sim::ExpectedSimilarity;
use probdedup_decision::threshold::Thresholds;
use probdedup_decision::xmodel::{SimilarityBasedModel, XTupleDecisionModel};
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::relation::XRelation;
use probdedup_textsim::JaroWinkler;

fn dataset() -> probdedup_datagen::SyntheticDataset {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities: 60,
            sources: 2,
            presence_rate: 0.85,
            extra_copy_rate: 0.1,
            typo_rate: 0.25,
            uncertainty_rate: 0.35,
            xtuple_rate: 0.25,
            maybe_rate: 0.2,
            seed: 0xB10C5,
            ..DatasetConfig::default()
        },
    )
}

fn model() -> Arc<dyn XTupleDecisionModel> {
    Arc::new(SimilarityBasedModel::new(
        Arc::new(WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap()),
        Arc::new(ExpectedSimilarity),
        Thresholds::new(0.72, 0.82).unwrap(),
    ))
}

fn run(
    sources: &[&XRelation],
    schema: &probdedup_model::schema::Schema,
    threads: usize,
    cached: bool,
) -> DedupResult {
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(schema, JaroWinkler::new()))
        .model(model())
        .reduction(ReductionStrategy::Full)
        .threads(threads)
        .cache_similarities(cached)
        .build()
        .run(sources)
        .expect("pipeline run")
}

/// Bitwise equality of two runs' decision streams.
fn assert_byte_identical(a: &DedupResult, b: &DedupResult, label: &str) {
    assert_eq!(a.candidates, b.candidates, "{label}: candidate counts");
    assert_eq!(
        a.decisions.len(),
        b.decisions.len(),
        "{label}: decision counts"
    );
    for (x, y) in a.decisions.iter().zip(&b.decisions) {
        assert_eq!(x.pair, y.pair, "{label}: pair order diverged");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{label}: similarity bits for {:?}: {} vs {}",
            x.pair,
            x.similarity,
            y.similarity
        );
        assert_eq!(x.class, y.class, "{label}: class for {:?}", x.pair);
    }
    assert_eq!(a.clusters, b.clusters, "{label}: clusters");
}

#[test]
fn threads8_is_byte_identical_to_threads1_plain() {
    let ds = dataset();
    let sources: Vec<&XRelation> = ds.relations.iter().collect();
    let one = run(&sources, &ds.schema, 1, false);
    let eight = run(&sources, &ds.schema, 8, false);
    assert!(
        one.candidates > 1000,
        "workload too small to exercise stealing"
    );
    assert_byte_identical(&one, &eight, "plain");
}

#[test]
fn threads8_is_byte_identical_to_threads1_interned() {
    let ds = dataset();
    let sources: Vec<&XRelation> = ds.relations.iter().collect();
    let one = run(&sources, &ds.schema, 1, true);
    let eight = run(&sources, &ds.schema, 8, true);
    assert_byte_identical(&one, &eight, "interned");
    // Both runs exercised the cache.
    assert!(one.stats.cache_hits > 0 && eight.stats.cache_hits > 0);
    // Hit/miss *totals* must agree run to run (the split may differ: with
    // several threads the same missing pair can be computed twice before
    // the memo lands, which is benign for results).
    assert_eq!(one.stats.interned_values, eight.stats.interned_values);
}

#[test]
fn repeated_runs_are_reproducible() {
    let ds = dataset();
    let sources: Vec<&XRelation> = ds.relations.iter().collect();
    let a = run(&sources, &ds.schema, 4, true);
    let b = run(&sources, &ds.schema, 4, true);
    assert_byte_identical(&a, &b, "repeat");
}
