//! Property tests for the pipeline's building blocks: union-find laws,
//! fusion conservation, and probabilistic-result validity.

use proptest::prelude::*;

use probdedup_core::cluster::UnionFind;
use probdedup_core::fusion::fuse_xtuples;
use probdedup_model::schema::Schema;
use probdedup_model::xtuple::XTuple;

fn arb_xtuple() -> impl Strategy<Value = XTuple> {
    proptest::collection::vec(("[a-c]{1,3}", "[x-z]{1,3}", 1u32..40), 1..4).prop_map(|alts| {
        let total: u32 = alts.iter().map(|(_, _, w)| *w).sum();
        let denom = f64::from(total) * 1.15;
        let s = Schema::new(["name", "job"]);
        let mut b = XTuple::builder(&s);
        for (n, j, w) in alts {
            b = b.alt(f64::from(w) / denom, [n, j]);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union-find implements an equivalence relation closed under the
    /// given unions.
    #[test]
    fn union_find_equivalence(
        n in 2usize..40,
        unions in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        let mut uf = UnionFind::new(n);
        let mut reference: Vec<usize> = (0..n).collect(); // naive labels
        for &(a, b) in &unions {
            let (a, b) = (a % n, b % n);
            uf.union(a, b);
            let (la, lb) = (reference[a], reference[b]);
            if la != lb {
                for l in reference.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    uf.connected(i, j),
                    reference[i] == reference[j],
                    "disagreement on ({}, {})", i, j
                );
            }
        }
        // Clusters partition 0..n.
        let clusters = uf.clusters(1);
        let mut seen = vec![false; n];
        for c in &clusters {
            for &x in c {
                prop_assert!(!std::mem::replace(&mut seen[x], true));
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Fusion conserves mass: the fused alternatives' probabilities sum to
    /// the fused membership, which is the max of the inputs'.
    #[test]
    fn fusion_mass_conservation(a in arb_xtuple(), b in arb_xtuple()) {
        let fused = fuse_xtuples(&a, &b);
        let expected_membership = a.probability().max(b.probability());
        prop_assert!((fused.probability() - expected_membership).abs() < 1e-9);
        let alt_sum: f64 = fused.alternatives().iter().map(|x| x.probability()).sum();
        prop_assert!((alt_sum - expected_membership).abs() < 1e-9);
    }

    /// Fusion is symmetric up to alternative order.
    #[test]
    fn fusion_symmetry(a in arb_xtuple(), b in arb_xtuple()) {
        let ab = fuse_xtuples(&a, &b);
        let ba = fuse_xtuples(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for alt in ab.alternatives() {
            let twin = ba
                .alternatives()
                .iter()
                .find(|o| o.values() == alt.values());
            prop_assert!(twin.is_some(), "missing alternative in reverse fusion");
            prop_assert!((alt.probability() - twin.unwrap().probability()).abs() < 1e-9);
        }
    }

    /// Fusing a tuple with itself yields the same conditional distribution
    /// (idempotence up to membership). Compared on aggregated per-row
    /// masses: the input may itself contain identical-valued alternatives,
    /// which fusion legitimately merges.
    #[test]
    fn fusion_self_idempotent(a in arb_xtuple()) {
        let fused = fuse_xtuples(&a, &a);
        prop_assert!(fused.len() <= a.len());
        let aggregate = |t: &XTuple| {
            let mut rows: Vec<(Vec<probdedup_model::pvalue::PValue>, f64)> = Vec::new();
            for (alt, w) in t.conditioned() {
                match rows.iter_mut().find(|(v, _)| v == alt.values()) {
                    Some((_, mass)) => *mass += w,
                    None => rows.push((alt.values().to_vec(), w)),
                }
            }
            rows
        };
        let orig = aggregate(&a);
        let out = aggregate(&fused);
        prop_assert_eq!(orig.len(), out.len());
        for (values, mass) in &orig {
            let twin = out.iter().find(|(v, _)| v == values);
            prop_assert!(twin.is_some(), "row lost by self-fusion");
            prop_assert!((twin.unwrap().1 - mass).abs() < 1e-9);
        }
    }
}
