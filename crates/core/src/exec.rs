//! Work-stealing parallel map over an index range.
//!
//! The matching stage's cost per candidate pair varies wildly — x-tuples
//! have 1…k alternatives and supports of different widths, and reduction
//! methods emit pairs grouped by block, so equal-size static chunks (the
//! previous crossbeam design) leave threads idle whenever block sizes are
//! skewed. [`par_map_index`] instead lets workers **claim small chunks from
//! a shared atomic cursor**: a thread that finishes early simply grabs the
//! next chunk, so load balances itself to within one chunk regardless of
//! how cost is distributed. (The build environment vendors no external
//! crates, so this is a dependency-free stand-in for rayon's work-stealing
//! `par_iter`; the scheduling granularity is the chunk, which for
//! pair-matching workloads — thousands of µs-scale items — captures the
//! same benefit.)
//!
//! Output order is **deterministic and independent of the thread count**:
//! every chunk records its start index and results are reassembled in index
//! order, so `threads(8)` produces byte-identical output to `threads(1)`
//! (a property test in `tests/` pins this).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on the per-claim chunk size. Small enough to balance skewed
/// workloads, large enough that the atomic claim is amortized to nothing.
const MAX_CHUNK: usize = 256;

/// Inputs below this size run inline: spawning and joining OS threads
/// costs more than a few dozen µs-scale items are worth.
const INLINE_THRESHOLD: usize = 64;

/// Map `f` over `0..n` with `threads` workers stealing chunks from a shared
/// cursor; returns results in index order. `threads <= 1` (or an `n` below
/// the inline threshold of 64) runs inline without spawning.
pub fn par_map_index<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n < INLINE_THRESHOLD {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    // Aim for ~16 claims per worker so stragglers can be absorbed, bounded
    // by MAX_CHUNK; at least 1.
    let chunk = (n / (workers * 16)).clamp(1, MAX_CHUNK);
    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n / chunk + workers));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let results: Vec<T> = (start..end).map(&f).collect();
                out.lock()
                    .expect("worker panicked holding results")
                    .push((start, results));
            });
        }
    });
    let mut chunks = out.into_inner().expect("worker panicked holding results");
    chunks.sort_unstable_by_key(|(start, _)| *start);
    let mut merged = Vec::with_capacity(n);
    for (_, mut part) in chunks {
        merged.append(&mut part);
    }
    debug_assert_eq!(merged.len(), n);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let got = par_map_index(threads, 1000, |i| i * 3);
            assert_eq!(
                got,
                (0..1000).map(|i| i * 3).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn skewed_workloads_complete() {
        // Items with wildly different costs: the stealing cursor must not
        // lose or duplicate work.
        let got = par_map_index(4, 500, |i| {
            if i % 97 == 0 {
                // A "giant block" item.
                (0..20_000).fold(i as u64, |acc, x| acc.wrapping_add(x))
            } else {
                i as u64
            }
        });
        assert_eq!(got.len(), 500);
        assert_eq!(got[1], 1);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let a = par_map_index(1, 317, |i| (i as f64).sin());
        let b = par_map_index(7, 317, |i| (i as f64).sin());
        assert_eq!(a, b); // bitwise: both are the same pure computation
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map_index(4, 0, |i| i).is_empty());
        assert_eq!(par_map_index(4, 1, |i| i + 1), vec![1]);
    }
}
