//! Probabilistic dedup results — the paper's concluding outlook made
//! concrete: *"any kind of uncertainty arising in the duplicate detection
//! process (e.g., two tuples are duplicates with only a less confidence)
//! can be directly modeled in the resulting data by creating mutually
//! exclusive sets of tuples."*
//!
//! For every **possible match** the pipeline could not decide, the result
//! relation carries the merged tuple *and* both originals, bound by an
//! [`AlternativeSets`] constraint: with probability `c` (the match
//! confidence) the merged tuple exists, with `1 − c` the two originals do.

use probdedup_decision::threshold::MatchClass;
use probdedup_model::lineage::AlternativeSets;
use probdedup_model::relation::XRelation;

use crate::fusion::fuse_xtuples;
use crate::pipeline::DedupResult;

/// A result relation with mutually-exclusive-set constraints.
#[derive(Debug, Clone)]
pub struct ProbabilisticResult {
    /// All undisputed rows, plus merged rows for matches, plus
    /// merged-or-originals triples for possible matches.
    pub relation: XRelation,
    /// One constraint per possible match.
    pub constraints: Vec<AlternativeSets>,
}

/// Map a similarity degree into a match confidence in `[0, 1]`. Normalized
/// degrees pass through; non-normalized ones (matching weights in `[0,∞)`)
/// are squashed with `w / (1 + w)`.
fn confidence(similarity: f64, normalized: bool) -> f64 {
    if normalized {
        similarity.clamp(0.0, 1.0)
    } else if similarity.is_infinite() {
        1.0
    } else {
        (similarity / (1.0 + similarity)).clamp(0.0, 1.0)
    }
}

/// Build the probabilistic result of a pipeline run.
///
/// * Matched clusters collapse into one fused row.
/// * Possible matches become three rows (merged with `p = c`, both
///   originals scaled by `1 − c`) under one [`AlternativeSets`] constraint.
///   A row involved in several possible matches keeps only its
///   highest-confidence constraint (DAG lineage is out of scope — exactly
///   the ULDB capability the paper says the target model must provide).
/// * Everything else is copied through.
///
/// `normalized_scores` states whether the decision model's similarity is
/// normalized (certainty factors) or a matching weight.
pub fn probabilistic_result(result: &DedupResult, normalized_scores: bool) -> ProbabilisticResult {
    let n = result.relation.len();
    let mut out = XRelation::new(result.relation.schema().clone());
    let mut constraints = Vec::new();

    // Rows consumed by a match cluster.
    let mut in_cluster = vec![false; n];
    for cluster in &result.clusters {
        for &r in cluster {
            in_cluster[r] = true;
        }
    }
    // Best possible-match partner per row (highest confidence wins).
    let mut best_possible: Vec<Option<(usize, f64)>> = vec![None; n];
    for d in result
        .decisions
        .iter()
        .filter(|d| d.class == MatchClass::Possible)
    {
        let (i, j) = d.pair;
        if in_cluster[i] || in_cluster[j] {
            continue; // already decided via a hard match
        }
        let c = confidence(d.similarity, normalized_scores);
        for (a, b) in [(i, j), (j, i)] {
            let better = best_possible[a].is_none_or(|(_, old)| c > old);
            if better {
                best_possible[a] = Some((b, c));
            }
        }
    }

    // Emit fused rows for match clusters.
    for cluster in &result.clusters {
        let mut fused = result.relation.get(cluster[0]).expect("row").clone();
        for &r in &cluster[1..] {
            fused = fuse_xtuples(&fused, result.relation.get(r).expect("row"));
        }
        out.push(fused);
    }

    // Emit possible-match triples (only for mutually-best pairs, so each
    // row joins at most one constraint) and plain rows.
    let mut emitted = in_cluster.clone();
    for i in 0..n {
        if emitted[i] {
            continue;
        }
        if let Some((j, c)) = best_possible[i] {
            let mutual =
                best_possible[j] == Some((i, c)) || best_possible[j].map(|(p, _)| p) == Some(i);
            if mutual && !emitted[j] {
                let ti = result.relation.get(i).expect("row").clone();
                let tj = result.relation.get(j).expect("row").clone();
                let merged_row = out.len();
                let merged = scale_xtuple(&fuse_xtuples(&ti, &tj), c);
                out.push(merged);
                let row_i = out.len();
                out.push(scale_xtuple(&ti, 1.0 - c));
                let row_j = out.len();
                out.push(scale_xtuple(&tj, 1.0 - c));
                let mut sets = AlternativeSets::new();
                sets.add_option(vec![merged_row], c).expect("c ∈ [0,1]");
                sets.add_option(vec![row_i, row_j], 1.0 - c)
                    .expect("1 − c ∈ [0,1]");
                constraints.push(sets);
                emitted[i] = true;
                emitted[j] = true;
                continue;
            }
        }
        out.push(result.relation.get(i).expect("row").clone());
        emitted[i] = true;
    }

    ProbabilisticResult {
        relation: out,
        constraints,
    }
}

/// Scale an x-tuple's membership by `factor` (keeping the conditional
/// alternative distribution). A factor of 0 would produce an invalid
/// tuple; it is clamped to a tiny positive mass instead.
fn scale_xtuple(
    t: &probdedup_model::xtuple::XTuple,
    factor: f64,
) -> probdedup_model::xtuple::XTuple {
    use probdedup_model::xtuple::{XAlternative, XTuple};
    let factor = factor.max(1e-9);
    let alts: Vec<XAlternative> = t
        .alternatives()
        .iter()
        .map(|a| {
            XAlternative::new(a.values().to_vec(), a.probability() * factor)
                .expect("scaled mass valid")
        })
        .collect();
    XTuple::new(alts).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DedupPipeline, ReductionStrategy};
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::SimilarityBasedModel;
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_model::xtuple::XTuple;
    use probdedup_textsim::NormalizedHamming;
    use std::sync::Arc;

    fn run(rows: &[(&str, &str)]) -> DedupResult {
        let s = Schema::new(["name", "job"]);
        let mut r = XRelation::new(s.clone());
        for (n, j) in rows {
            r.push(XTuple::builder(&s).alt(1.0, [*n, *j]).build().unwrap());
        }
        DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(&s, NormalizedHamming::new()))
            .model(Arc::new(SimilarityBasedModel::new(
                Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
                Arc::new(ExpectedSimilarity),
                Thresholds::new(0.6, 0.95).unwrap(),
            )))
            .reduction(ReductionStrategy::Full)
            .build()
            .run(&[&r])
            .unwrap()
    }

    #[test]
    fn possible_match_becomes_alternative_sets() {
        // Tim/Tom mechanic: sim ≈ 0.73 → possible under (0.6, 0.95).
        let result = run(&[("Tim", "mechanic"), ("Tom", "mechanic")]);
        assert_eq!(result.possible_matches().count(), 1);
        let pr = probabilistic_result(&result, true);
        // merged + two scaled originals.
        assert_eq!(pr.relation.len(), 3);
        assert_eq!(pr.constraints.len(), 1);
        pr.constraints[0].validate(&pr.relation).unwrap();
        let c = pr.constraints[0].options()[0].1;
        assert!((0.6..0.95).contains(&c), "confidence = {c}");
        // Merged row's membership equals the confidence.
        assert!((pr.relation.get(0).unwrap().probability() - c).abs() < 1e-9);
    }

    #[test]
    fn hard_matches_fuse_without_constraints() {
        let result = run(&[("John", "pilot"), ("John", "pilot"), ("Zed", "baker")]);
        assert_eq!(result.clusters.len(), 1);
        let pr = probabilistic_result(&result, true);
        // fused row + Zed.
        assert_eq!(pr.relation.len(), 2);
        assert!(pr.constraints.is_empty());
    }

    #[test]
    fn unrelated_rows_copied_through() {
        let result = run(&[("Aaa", "xx"), ("Zzz", "qq")]);
        let pr = probabilistic_result(&result, true);
        assert_eq!(pr.relation.len(), 2);
        assert!(pr.constraints.is_empty());
    }

    #[test]
    fn weight_scores_are_squashed() {
        assert_eq!(confidence(f64::INFINITY, false), 1.0);
        assert!((confidence(1.0, false) - 0.5).abs() < 1e-12);
        assert!((confidence(3.0, false) - 0.75).abs() < 1e-12);
        assert_eq!(confidence(0.7, true), 0.7);
        assert_eq!(confidence(1.7, true), 1.0);
    }
}
