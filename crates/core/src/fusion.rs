//! Minimal data fusion (step (d) of the integration process, Section I):
//! combine two x-tuples judged to be duplicates into one representation.
//!
//! The paper defers fusion of probabilistic data to future work; we ship
//! the natural baseline: an **equal-weight mixture** of the two tuples'
//! conditioned alternative distributions. Identical alternatives merge
//! (their masses add), so two records that agree end up *more* certain —
//! the behaviour one wants from corroborating sources.

use probdedup_model::xtuple::{XAlternative, XTuple};

/// Fuse two x-tuples (assumed duplicates) into one.
///
/// * Each input's alternatives are conditioned on existence
///   (`p(tⁱ)/p(t)`), then mixed with weight ½ each.
/// * Alternatives with identical values merge by adding probabilities.
/// * The fused membership probability is the **maximum** of the inputs —
///   evidence that the entity exists in either source supports existence.
pub fn fuse_xtuples(a: &XTuple, b: &XTuple) -> XTuple {
    let membership = a.probability().max(b.probability());
    let mut merged: Vec<(Vec<probdedup_model::pvalue::PValue>, f64)> = Vec::new();
    for (t, weight) in [(a, 0.5), (b, 0.5)] {
        for (alt, cond_p) in t.conditioned() {
            let mass = weight * cond_p * membership;
            match merged.iter_mut().find(|(vals, _)| vals == alt.values()) {
                Some((_, p)) => *p += mass,
                None => merged.push((alt.values().to_vec(), mass)),
            }
        }
    }
    let alternatives: Vec<XAlternative> = merged
        .into_iter()
        .map(|(values, p)| XAlternative::new(values, p).expect("mixture mass is valid"))
        .collect();
    XTuple::new(alternatives).expect("non-empty mixture")
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::schema::Schema;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    #[test]
    fn agreeing_tuples_become_more_certain() {
        let s = schema();
        let a = XTuple::builder(&s)
            .alt(0.6, ["John", "pilot"])
            .alt(0.4, ["Jon", "pilot"])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt(0.9, ["John", "pilot"])
            .alt(0.1, ["Johan", "pilot"])
            .build()
            .unwrap();
        let fused = fuse_xtuples(&a, &b);
        // (John, pilot) mass: 0.5·0.6 + 0.5·0.9 = 0.75.
        let john = fused
            .alternatives()
            .iter()
            .find(|alt| alt.value(0).alternatives()[0].0.render() == "John")
            .unwrap();
        assert!((john.probability() - 0.75).abs() < 1e-12);
        assert_eq!(fused.len(), 3);
        assert!((fused.probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn membership_takes_the_maximum() {
        let s = schema();
        let a = XTuple::builder(&s)
            .alt(0.3, ["Tim", "baker"])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt(0.8, ["Tim", "baker"])
            .build()
            .unwrap();
        let fused = fuse_xtuples(&a, &b);
        assert!((fused.probability() - 0.8).abs() < 1e-12);
        // Identical alternative merged into one.
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn fusion_is_symmetric() {
        let s = schema();
        let a = XTuple::builder(&s)
            .alt(0.5, ["A", "x"])
            .alt(0.5, ["B", "y"])
            .build()
            .unwrap();
        let b = XTuple::builder(&s).alt(1.0, ["C", "z"]).build().unwrap();
        let ab = fuse_xtuples(&a, &b);
        let ba = fuse_xtuples(&b, &a);
        assert!((ab.probability() - ba.probability()).abs() < 1e-12);
        assert_eq!(ab.len(), ba.len());
        // Same alternative masses regardless of order.
        for alt in ab.alternatives() {
            let twin = ba
                .alternatives()
                .iter()
                .find(|o| o.values() == alt.values())
                .expect("alternative present in both");
            assert!((alt.probability() - twin.probability()).abs() < 1e-12);
        }
    }
}
