//! The end-to-end duplicate-detection pipeline for probabilistic data —
//! the five-step process of Section III of Panse et al. (ICDE 2010),
//! assembled from the workspace crates:
//!
//! 1. **Data preparation** ([`prepare`]) — standardize attribute value
//!    distributions (case, whitespace, diacritics, replacements).
//! 2. **Search-space reduction** ([`pipeline::ReductionStrategy`]) — any of
//!    the paper's SNM/blocking adaptations, or the full quadratic scan.
//! 3. **Attribute value matching** — comparison matrices via
//!    `probdedup-matching` (Eq. 5 per attribute), executed by the
//!    work-stealing [`exec`] pair executor; with
//!    `cache_similarities(true)` the relation is interned once and Eq. 5
//!    runs over symbols through sharded similarity caches.
//! 4. **Decision model** — any [`XTupleDecisionModel`] (similarity-based or
//!    decision-based derivation, Fig. 6).
//! 5. **Verification** — hooks into `probdedup-eval` (the
//!    [`pipeline::DedupResult`] exposes everything the metrics need).
//!
//! Beyond the paper's determined process, [`prob_result`] implements the
//! conclusion's outlook: emitting the *uncertainty of the dedup decision
//! itself* as probabilistic data (mutually exclusive sets of tuples).
//!
//! The paper's process is batch; realistic deployments re-deduplicate a
//! mostly-unchanged corpus as new tuples arrive. The [`session`] module
//! provides the persistent front door: a
//! [`session::DedupSession`] owns the warm state (interner
//! pools, key tables, similarity/verdict caches) across runs and supports
//! [`ingest`](session::DedupSession::ingest)-style incremental
//! deduplication — only new-vs-resident candidate pairs are classified,
//! and the merged result is split-invariant (property-tested equal to a
//! one-shot batch run).
//!
//! # Example
//!
//! A minimal end-to-end run over one two-tuple relation:
//!
//! ```
//! use std::sync::Arc;
//! use probdedup_core::pipeline::{DedupPipeline, ReductionStrategy};
//! use probdedup_decision::combine::WeightedSum;
//! use probdedup_decision::derive_sim::ExpectedSimilarity;
//! use probdedup_decision::threshold::Thresholds;
//! use probdedup_decision::xmodel::SimilarityBasedModel;
//! use probdedup_matching::vector::AttributeComparators;
//! use probdedup_model::relation::XRelation;
//! use probdedup_model::schema::Schema;
//! use probdedup_model::xtuple::XTuple;
//! use probdedup_textsim::NormalizedHamming;
//!
//! let schema = Schema::new(["name", "job"]);
//! let mut r = XRelation::new(schema.clone());
//! r.push(XTuple::builder(&schema).alt(1.0, ["John", "pilot"]).build().unwrap());
//! r.push(XTuple::builder(&schema).alt(0.8, ["John", "pilot"]).build().unwrap());
//!
//! let pipeline = DedupPipeline::builder()
//!     .comparators(AttributeComparators::uniform(&schema, NormalizedHamming::new()))
//!     .model(Arc::new(SimilarityBasedModel::new(
//!         Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
//!         Arc::new(ExpectedSimilarity),
//!         Thresholds::new(0.6, 0.8).unwrap(),
//!     )))
//!     .reduction(ReductionStrategy::Full)
//!     .build();
//! let result = pipeline.run(&[&r]).unwrap();
//! assert_eq!(result.candidates, 1);
//! // Identical value distributions match despite the differing
//! // membership probabilities (Section IV: membership must not
//! // influence dedup).
//! assert_eq!(result.clusters, vec![vec![0, 1]]);
//! ```
//!
//! [`XTupleDecisionModel`]: probdedup_decision::xmodel::XTupleDecisionModel

pub mod cluster;
pub mod exec;
pub mod fusion;
pub mod pipeline;
pub mod prepare;
pub mod prob_result;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use cluster::UnionFind;
pub use exec::par_map_index;
pub use fusion::fuse_xtuples;
pub use pipeline::{
    BoundedClassifyConfig, DedupPipeline, DedupResult, MatchingStats, PairDecision,
    ReductionStrategy,
};
pub use prepare::Preparation;
pub use prob_result::{probabilistic_result, ProbabilisticResult};
pub use session::{CachedEntities, DedupSession, IncrementalResult};
pub use shard::{BudgetPlan, ShardError, ShardStats, ShardedPipeline};
pub use wal::{SessionJournal, WalReplay};
