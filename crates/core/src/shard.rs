//! The sharded out-of-core front door: [`ShardedPipeline`].
//!
//! The one-shot [`DedupPipeline`](crate::pipeline::DedupPipeline) and the
//! persistent [`DedupSession`](crate::session::DedupSession) both
//! materialize the whole candidate set and classify it in one sweep —
//! fine up to ~10⁴ tuples, hopeless at the 10⁶-class corpora the paper's
//! census/registry scenarios imply. The sharded pipeline takes the same
//! configuration to that scale with three moves:
//!
//! 1. **Streaming candidate generation** — reduction runs out-of-core:
//!    SNM strategies sort their `(rank, tuple)` entries through the
//!    external merge sort of `probdedup_reduction::external` (bounded
//!    run buffers, sorted spill files, k-way merge, streaming
//!    re-windowing) and blocking strategies scan their blocks through the
//!    spillable block map — the emission order is **exactly** the
//!    in-memory order, so dedup through a [`SparsePairSet`] recovers the
//!    one-shot candidate list byte-for-byte. The sparse set's memory
//!    scales with emitted pairs, not with `n·(n−1)/2` bits (the
//!    triangular `PairMatrix` alone would cost ~625 MB at 10⁵ rows).
//! 2. **Shard routing** — every candidate pair is assigned to one of `k`
//!    shards by a **stable** function of where it was generated:
//!    blocking pairs hash their block key
//!    ([`shard_of_key`], FNV-1a,
//!    interning-order independent), SNM pairs stripe by their anchor's
//!    key rank, ranked/positional strategies stripe by position. Shards
//!    are then matched independently — each one a bounded slice of the
//!    quadratic stage.
//! 3. **Deterministic merge** — per-shard decisions scatter back into
//!    global candidate order, tier counters sum, and one union-find
//!    closes the clusters. The merged [`DedupResult`] is byte-identical
//!    to the unsharded run (bit-equal similarities in exact mode;
//!    identical match/possible/non-match partition in bounded mode,
//!    where cache warmth may pick a different certified representative —
//!    property-tested in `tests/sharded.rs`).
//!
//! Memory ceilings thread through [`BudgetPlan`]: a single
//! [`memory_budget`](crate::pipeline::DedupPipelineBuilder::memory_budget)
//! decomposes into the similarity-cache capacity (PR 6 clock eviction),
//! the decision-memo capacity, the external-sort run size and the
//! block-spill threshold.

use std::io;

use probdedup_decision::budget::BoundedTier;
use probdedup_decision::threshold::MatchClass;
use probdedup_model::error::ModelError;
use probdedup_model::relation::XRelation;
use probdedup_model::shard_of_key;
use probdedup_reduction::ranking::rank_tuples;
use probdedup_reduction::{
    conflict_resolved_snm_external_scan, multipass_snm_external_scan, scan_alternative_blocks,
    scan_conflict_resolved_blocks, scan_multipass_blocks, sorting_alternatives_external_scan,
    BlockScanConfig, BlockScanStats, ExternalSortConfig, ExternalSortStats, SparsePairSet,
};

use crate::cluster::UnionFind;
use crate::pipeline::{
    classify_pairs_bounded, classify_pairs_exact, DedupResult, MatchingStats, PairDecision,
    PipelineConfig, ReductionStrategy,
};
use crate::session::WarmMatching;

/// What can go wrong in a sharded run: the model-layer errors the
/// unsharded pipeline raises, plus I/O from the out-of-core spill paths.
#[derive(Debug)]
pub enum ShardError {
    /// A model-layer error (incompatible schemas, …).
    Model(ModelError),
    /// An I/O error from a spill file (external sort runs, block spills).
    Io(io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Io(e) => write!(f, "spill I/O error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Io(e) => Some(e),
        }
    }
}

impl From<ModelError> for ShardError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// How a byte budget decomposes into the pipeline's four bounded
/// structures. The per-entry costs are deliberately rough upper
/// estimates — the plan is a sizing heuristic, not an allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetPlan {
    /// Memoized pairs per similarity/verdict cache (40% of the budget at
    /// ~64 bytes per entry).
    pub cache_capacity: usize,
    /// Decision-memo entries (20% at ~96 bytes per entry).
    pub memo_capacity: usize,
    /// External-sort entries buffered per run (25% at ~24 bytes per
    /// buffered entry, never below 1024 so tiny budgets still sort).
    pub run_entries: usize,
    /// Resident members per block before spilling (10% at 8 bytes per
    /// member, clamped to `[64, 1 Mi]`).
    pub spill_members: usize,
}

impl BudgetPlan {
    /// Decompose `budget` bytes.
    pub fn for_budget(budget: u64) -> Self {
        Self {
            cache_capacity: ((budget * 2 / 5) / 64).max(1) as usize,
            memo_capacity: ((budget / 5) / 96).max(1) as usize,
            run_entries: (((budget / 4) / 24) as usize).max(1024),
            spill_members: ((budget / 10 / 8) as usize).clamp(64, 1 << 20),
        }
    }
}

/// What the sharded run did beyond the [`DedupResult`]: per-shard
/// candidate counts and out-of-core spill counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards the run partitioned into.
    pub shards: usize,
    /// Candidate pairs routed to each shard.
    pub shard_candidates: Vec<usize>,
    /// External-sort counters (all zero for non-SNM strategies).
    pub sort: ExternalSortStats,
    /// Block-scan counters (all zero for non-blocking strategies).
    pub blocks: BlockScanStats,
}

impl ShardStats {
    /// Largest / smallest shard candidate count — the skew the stripe
    /// routing is meant to keep small.
    pub fn skew(&self) -> (usize, usize) {
        let max = self.shard_candidates.iter().copied().max().unwrap_or(0);
        let min = self.shard_candidates.iter().copied().min().unwrap_or(0);
        (max, min)
    }
}

/// The sharded out-of-core pipeline. Build via
/// [`DedupPipeline::sharded`](crate::pipeline::DedupPipeline::sharded);
/// see the module docs for the design.
pub struct ShardedPipeline {
    config: PipelineConfig,
    shards: usize,
}

/// Candidates in global (one-shot) order plus each pair's shard.
struct RoutedCandidates {
    pairs: Vec<(usize, usize)>,
    shard_of: Vec<usize>,
    sort: ExternalSortStats,
    blocks: BlockScanStats,
}

impl ShardedPipeline {
    pub(crate) fn new(config: PipelineConfig, shards: usize) -> Self {
        Self {
            config,
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Run over `sources`; the merged result is byte-identical to the
    /// unsharded [`DedupPipeline::run`](crate::pipeline::DedupPipeline::run)
    /// (see the module docs for the bounded-mode caveat).
    pub fn run(&self, sources: &[&XRelation]) -> Result<DedupResult, ShardError> {
        self.run_with_stats(sources).map(|(r, _)| r)
    }

    /// [`run`](Self::run) plus the shard/spill counters.
    pub fn run_with_stats(
        &self,
        sources: &[&XRelation],
    ) -> Result<(DedupResult, ShardStats), ShardError> {
        let Some(first) = sources.first() else {
            return Ok((
                DedupResult::empty(),
                ShardStats {
                    shards: self.shards,
                    ..ShardStats::default()
                },
            ));
        };
        // Combine + prepare exactly as the session does.
        let mut combined = XRelation::new(first.schema().clone());
        let mut offsets = Vec::with_capacity(sources.len());
        for src in sources {
            if !combined.schema().compatible_with(src.schema()) {
                return Err(ModelError::IncompatibleSchemas.into());
            }
            offsets.push(combined.len());
            for t in src.xtuples() {
                combined.push(t.clone());
            }
        }
        self.config.preparation.apply(&mut combined);
        let tuples = combined.xtuples();

        // Streaming reduction with shard routing.
        let routed = route_candidates(&self.config, tuples, self.shards)?;
        let mut shard_candidates = vec![0usize; self.shards];
        for &s in &routed.shard_of {
            shard_candidates[s] += 1;
        }

        // Warm matching state, identical to a fresh session ingest.
        let mut matching = WarmMatching::new();
        matching.ingest(&self.config, tuples);

        // Per-shard pair slices carrying their global candidate position.
        let mut shard_pairs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.shards];
        let mut shard_pos: Vec<Vec<usize>> = vec![Vec::new(); self.shards];
        for (pos, (&pair, &shard)) in routed.pairs.iter().zip(&routed.shard_of).enumerate() {
            shard_pairs[shard].push(pair);
            shard_pos[shard].push(pos);
        }

        // Match shard by shard (each shard runs on the work-stealing pair
        // executor with the configured thread count), scattering decisions
        // back into global candidate order.
        let interned = matching
            .cmps
            .as_ref()
            .map(|c| (matching.interned.as_slice(), c));
        let mut scattered: Vec<Option<PairDecision>> = vec![None; routed.pairs.len()];
        let mut tiers = [0u64; 4];
        for shard in 0..self.shards {
            let pairs = &shard_pairs[shard];
            if pairs.is_empty() {
                continue;
            }
            let decisions = match &self.config.bounded {
                Some(cfg) => {
                    let outcomes = classify_pairs_bounded(
                        cfg,
                        &self.config.comparators,
                        tuples,
                        &matching.weights,
                        interned,
                        pairs,
                        self.config.threads,
                    );
                    let mut decisions = Vec::with_capacity(outcomes.len());
                    for (d, tier) in outcomes {
                        tiers[match tier {
                            BoundedTier::EarlyMatch => 0,
                            BoundedTier::EarlyNonMatch => 1,
                            BoundedTier::EarlyPossible => 2,
                            BoundedTier::Exhausted => 3,
                        }] += 1;
                        decisions.push(d);
                    }
                    decisions
                }
                None => {
                    let model = self
                        .config
                        .model
                        .as_ref()
                        .expect("exact matching requires a decision model");
                    classify_pairs_exact(
                        model.as_ref(),
                        &self.config.comparators,
                        tuples,
                        interned,
                        pairs,
                        self.config.threads,
                    )
                }
            };
            for (d, &pos) in decisions.into_iter().zip(&shard_pos[shard]) {
                scattered[pos] = Some(d);
            }
        }
        let decisions: Vec<PairDecision> = scattered
            .into_iter()
            .map(|d| d.expect("every routed candidate was classified"))
            .collect();

        // Merge: transitive closure over the union of per-shard matches.
        let mut uf = UnionFind::new(tuples.len());
        for d in decisions.iter().filter(|d| d.class == MatchClass::Match) {
            uf.union(d.pair.0, d.pair.1);
        }
        let clusters = uf.clusters(2);

        let mut stats = MatchingStats {
            pairs_early_match: tiers[0],
            pairs_early_nonmatch: tiers[1],
            pairs_early_possible: tiers[2],
            pairs_exhausted: tiers[3],
            ..MatchingStats::default()
        };
        if let Some(cmps) = &matching.cmps {
            let (hits, misses) = cmps.cache_stats();
            stats.cache_hits = hits;
            stats.cache_misses = misses;
            stats.cached_pairs = cmps.cached_pairs();
            stats.interned_values = cmps.interned_values();
            stats.kernel_bound_certs = cmps.bound_certs();
            stats.cache_evictions = cmps.cache_evictions();
        }

        let candidates = routed.pairs.len();
        Ok((
            DedupResult {
                relation: combined,
                source_offsets: offsets,
                candidates,
                decisions,
                clusters,
                stats,
            },
            ShardStats {
                shards: self.shards,
                shard_candidates,
                sort: routed.sort,
                blocks: routed.blocks,
            },
        ))
    }
}

/// Generate the strategy's candidates **streamingly**, in exactly the
/// one-shot order, assigning each pair a shard as it first appears.
fn route_candidates(
    config: &PipelineConfig,
    tuples: &[probdedup_model::xtuple::XTuple],
    k: usize,
) -> io::Result<RoutedCandidates> {
    let n = tuples.len();
    let plan = config.memory_budget.map(BudgetPlan::for_budget);
    let sort_cfg = ExternalSortConfig {
        run_entries: plan
            .map(|p| p.run_entries)
            .unwrap_or_else(|| ExternalSortConfig::default().run_entries),
        dir: None,
    };
    let block_cfg = BlockScanConfig {
        spill_members: plan
            .map(|p| p.spill_members)
            .unwrap_or_else(|| BlockScanConfig::default().spill_members),
        dir: None,
    };

    let mut pairs = Vec::new();
    let mut shard_of = Vec::new();
    let mut seen = SparsePairSet::new();
    let mut sort = ExternalSortStats::default();
    let mut blocks = BlockScanStats::default();
    {
        // First sighting wins, for both membership and shard assignment —
        // exactly `CandidatePairs`' first-insertion order.
        let mut push = |shard: usize, i: usize, j: usize| {
            if i != j && seen.insert(i, j) {
                pairs.push((i.min(j), i.max(j)));
                shard_of.push(shard);
            }
        };

        match &config.reduction {
            ReductionStrategy::Full => {
                // Unique by construction; stripe anchors contiguously.
                for i in 0..n {
                    for j in (i + 1)..n {
                        pairs.push((i, j));
                        shard_of.push(i * k / n);
                    }
                }
            }
            ReductionStrategy::SortingAlternatives { spec, window } => {
                sort = sorting_alternatives_external_scan(
                    tuples,
                    spec,
                    *window,
                    &sort_cfg,
                    &mut |a, b| push(a.0 as usize % k, a.1, b.1),
                )?;
            }
            ReductionStrategy::ConflictResolved {
                spec,
                window,
                strategy,
            } => {
                sort = conflict_resolved_snm_external_scan(
                    tuples,
                    spec,
                    *window,
                    *strategy,
                    &sort_cfg,
                    &mut |a, b| push(a.0 as usize % k, a.1, b.1),
                )?;
            }
            ReductionStrategy::MultipassWorlds {
                spec,
                window,
                selection,
            } => {
                sort = multipass_snm_external_scan(
                    tuples,
                    spec,
                    *window,
                    *selection,
                    &sort_cfg,
                    &mut |a, b| push(a.0 as usize % k, a.1, b.1),
                )?;
            }
            ReductionStrategy::RankedKeys {
                spec,
                window,
                ranking,
            } => {
                // Ranked SNM is positional over a permutation of the
                // tuples: window pairs are unique, stripe by rank position.
                let order = rank_tuples(tuples, spec, *ranking);
                let window = (*window).max(2);
                for (i, &a) in order.iter().enumerate() {
                    for &b in order.iter().skip(i + 1).take(window - 1) {
                        push(i % k, a, b);
                    }
                }
            }
            ReductionStrategy::BlockingAlternatives { spec } => {
                blocks = scan_alternative_blocks(tuples, spec, &block_cfg, &mut |key, members| {
                    emit_block(key, members, k, &mut push)
                })?;
            }
            ReductionStrategy::BlockingConflictResolved { spec, strategy } => {
                blocks = scan_conflict_resolved_blocks(
                    tuples,
                    spec,
                    *strategy,
                    &block_cfg,
                    &mut |key, members| emit_block(key, members, k, &mut push),
                )?;
            }
            ReductionStrategy::BlockingMultipass { spec, selection } => {
                blocks = scan_multipass_blocks(
                    tuples,
                    spec,
                    *selection,
                    &block_cfg,
                    &mut |key, members| emit_block(key, members, k, &mut push),
                )?;
            }
            ReductionStrategy::ClusterBlocking { .. } => {
                // Cluster centroids need the whole corpus; no streaming
                // formulation exists, so fall back to the in-memory
                // generator and stripe positionally.
                let cand = config.reduction.candidates(tuples);
                for (pos, &(i, j)) in cand.pairs().iter().enumerate() {
                    pairs.push((i, j));
                    shard_of.push(pos % k);
                }
            }
        }
    }

    Ok(RoutedCandidates {
        pairs,
        shard_of,
        sort,
        blocks,
    })
}

/// Route one block's within-block pairs (in `emit_block_pairs` order) to
/// the shard its key hashes to.
fn emit_block(key: &str, members: &[usize], k: usize, push: &mut impl FnMut(usize, usize, usize)) {
    let shard = shard_of_key(key, k);
    for (a, &i) in members.iter().enumerate() {
        for &j in members.iter().skip(a + 1) {
            push(shard, i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DedupPipeline;
    use crate::prepare::Preparation;
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::SimilarityBasedModel;
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_model::xtuple::XTuple;
    use probdedup_reduction::{ConflictResolution, KeySpec, WorldSelection};
    use probdedup_textsim::NormalizedHamming;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn corpus() -> XRelation {
        let s = schema();
        let mut r = XRelation::new(s.clone());
        let rows = [
            ("John", "pilot"),
            ("Johan", "pilot"),
            ("Tim", "mechanic"),
            ("Tom", "mechanic"),
            ("Jim", "baker"),
            ("John", "pilot"),
            ("Sean", "pilot"),
            ("Tim", "mechanik"),
        ];
        for (i, (n, j)) in rows.iter().enumerate() {
            let mut b = XTuple::builder(&s).alt(0.8, [*n, *j]);
            if i % 3 == 0 {
                b = b.alt(0.2, [format!("{n}x"), (*j).to_string()]);
            }
            r.push(b.build().unwrap());
        }
        r
    }

    fn pipeline(reduction: ReductionStrategy) -> DedupPipeline {
        DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(Arc::new(SimilarityBasedModel::new(
                Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
                Arc::new(ExpectedSimilarity),
                Thresholds::new(0.6, 0.8).unwrap(),
            )))
            .preparation(Preparation::standard_all(2))
            .reduction(reduction)
            .build()
    }

    #[test]
    fn sharded_matches_one_shot_across_strategies() {
        let r = corpus();
        let spec = KeySpec::paper_example(0, 1);
        let strategies = [
            ReductionStrategy::Full,
            ReductionStrategy::SortingAlternatives {
                spec: spec.clone(),
                window: 3,
            },
            ReductionStrategy::ConflictResolved {
                spec: spec.clone(),
                window: 3,
                strategy: ConflictResolution::MostProbableAlternative,
            },
            ReductionStrategy::MultipassWorlds {
                spec: spec.clone(),
                window: 3,
                selection: WorldSelection::TopK(2),
            },
            ReductionStrategy::BlockingAlternatives { spec: spec.clone() },
        ];
        for strategy in strategies {
            let name = strategy.name();
            let p = pipeline(strategy);
            let reference = p.run(&[&r]).unwrap();
            for k in [1, 2, 5] {
                let (sharded, stats) = p.sharded(k).run_with_stats(&[&r]).unwrap();
                assert_eq!(sharded.candidates, reference.candidates, "{name} k{k}");
                assert_eq!(sharded.decisions, reference.decisions, "{name} k{k}");
                assert_eq!(sharded.clusters, reference.clusters, "{name} k{k}");
                assert_eq!(stats.shards, k);
                assert_eq!(
                    stats.shard_candidates.iter().sum::<usize>(),
                    reference.candidates,
                    "{name} k{k}"
                );
            }
        }
    }

    #[test]
    fn budget_forces_spills_without_changing_results() {
        let r = corpus();
        let spec = KeySpec::paper_example(0, 1);
        let p = pipeline(ReductionStrategy::SortingAlternatives { spec, window: 3 });
        let reference = p.run(&[&r]).unwrap();
        let tight = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(Arc::new(SimilarityBasedModel::new(
                Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
                Arc::new(ExpectedSimilarity),
                Thresholds::new(0.6, 0.8).unwrap(),
            )))
            .preparation(Preparation::standard_all(2))
            .reduction(ReductionStrategy::SortingAlternatives {
                spec: KeySpec::paper_example(0, 1),
                window: 3,
            })
            .memory_budget(Some(1)) // absurdly tight: everything spills
            .build();
        let (got, stats) = tight.sharded(3).run_with_stats(&[&r]).unwrap();
        assert_eq!(got.decisions, reference.decisions);
        assert_eq!(got.clusters, reference.clusters);
        // run_entries floors at 1024 > corpus, so nothing spills here;
        // force it with an explicit scan config instead — covered by the
        // reduction crate's own tests. What must hold: the plan is sane.
        let plan = BudgetPlan::for_budget(1);
        assert_eq!(plan.run_entries, 1024);
        assert_eq!(plan.spill_members, 64);
        assert_eq!(plan.cache_capacity, 1);
        assert!(stats.sort.entries > 0);
    }

    #[test]
    fn budget_plan_scales_linearly() {
        let small = BudgetPlan::for_budget(1 << 20);
        let big = BudgetPlan::for_budget(1 << 30);
        assert!(big.cache_capacity > small.cache_capacity * 500);
        assert!(big.memo_capacity > small.memo_capacity * 500);
        assert!(big.run_entries > small.run_entries);
        assert_eq!(big.spill_members, 1 << 20); // clamp ceiling
    }

    #[test]
    fn empty_sources() {
        let p = pipeline(ReductionStrategy::Full);
        let (result, stats) = p.sharded(4).run_with_stats(&[]).unwrap();
        assert_eq!(result.candidates, 0);
        assert_eq!(stats.shards, 4);
    }

    #[test]
    fn incompatible_schemas_surface_as_model_error() {
        let a = corpus();
        let b = XRelation::new(Schema::new(["solo"]));
        let p = pipeline(ReductionStrategy::Full);
        assert!(matches!(
            p.sharded(2).run(&[&a, &b]),
            Err(ShardError::Model(ModelError::IncompatibleSchemas))
        ));
    }
}
