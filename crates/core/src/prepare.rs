//! Step (a), data preparation: standardization of attribute values
//! (Section III-A — "unification of conventions and units … to obtain a
//! homogeneous representation of all source data").
//!
//! For probabilistic values, standardization maps **every alternative** of
//! a distribution; alternatives that collide after standardization merge
//! their probability mass (e.g. `{Tim: 0.5, tim: 0.4}` → `{tim: 0.9}`),
//! which is uncertainty *reduction* for free.

use std::collections::HashMap;
use std::sync::Arc;

use probdedup_model::relation::XRelation;
use probdedup_model::value::Value;
use probdedup_textsim::Normalizer;

/// One preparation step.
#[derive(Clone)]
enum Step {
    /// Apply a [`Normalizer`] to text values of the attribute.
    Normalize(usize, Normalizer),
    /// Replace whole values via a canonicalization dictionary
    /// (nickname → canonical form, unit synonyms, …).
    Canonicalize(usize, Arc<HashMap<String, String>>),
}

impl std::fmt::Debug for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Normalize(a, _) => write!(f, "Normalize(attr {a})"),
            Step::Canonicalize(a, m) => write!(f, "Canonicalize(attr {a}, {} entries)", m.len()),
        }
    }
}

/// A whole-value rewrite applied to one attribute's distributions (may
/// borrow from the step that created it).
type ValueRewrite<'a> = Box<dyn Fn(&Value) -> Value + 'a>;

/// Per-attribute standardization plan.
#[derive(Debug, Clone, Default)]
pub struct Preparation {
    /// Steps apply in insertion order; attributes may repeat.
    steps: Vec<Step>,
}

impl Preparation {
    /// No preparation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply `normalizer` to text values of attribute `attr`.
    pub fn normalize_attr(mut self, attr: usize, normalizer: Normalizer) -> Self {
        self.steps.push(Step::Normalize(attr, normalizer));
        self
    }

    /// Replace whole text values of attribute `attr` through a
    /// canonicalization dictionary — the paper's "unification of
    /// conventions": nicknames to given names ("Johnny" → "John"),
    /// occupation synonyms ("confectionist" → "confectioner"), units.
    /// Lookups are exact on the full value; combine with
    /// [`Preparation::normalize_attr`] (applied earlier) for
    /// case-insensitive matching. Alternatives that collide after
    /// canonicalization merge their probability mass.
    pub fn canonicalize_attr<I, K, V>(mut self, attr: usize, entries: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let map: HashMap<String, String> = entries
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        self.steps.push(Step::Canonicalize(attr, Arc::new(map)));
        self
    }

    /// Apply [`Normalizer::standard`] to every attribute in `0..arity`.
    pub fn standard_all(arity: usize) -> Self {
        let mut p = Self::new();
        for a in 0..arity {
            p = p.normalize_attr(a, Normalizer::standard());
        }
        p
    }

    /// Whether any step is configured.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Standardize a relation in place.
    pub fn apply(&self, relation: &mut XRelation) {
        for step in &self.steps {
            let (attr, map): (usize, ValueRewrite<'_>) = match step {
                Step::Normalize(attr, norm) => (
                    *attr,
                    Box::new(move |v: &Value| match v {
                        Value::Text(s) => Value::Text(norm.apply(s)),
                        other => other.clone(),
                    }),
                ),
                Step::Canonicalize(attr, dict) => {
                    let dict = Arc::clone(dict);
                    (
                        *attr,
                        Box::new(move |v: &Value| match v {
                            Value::Text(s) => match dict.get(s) {
                                Some(canon) => Value::Text(canon.clone()),
                                None => v.clone(),
                            },
                            other => other.clone(),
                        }),
                    )
                }
            };
            for t in relation.xtuples_mut() {
                for alt in t.alternatives_mut() {
                    let pv = alt.value_mut(attr);
                    *pv = pv.map_values(&map);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::xtuple::XTuple;

    fn relation() -> XRelation {
        let s = Schema::new(["name", "job"]);
        let mut r = XRelation::new(s.clone());
        r.push(
            XTuple::builder(&s)
                .alt_pvalues(
                    1.0,
                    [
                        PValue::categorical([(" Tim ", 0.5), ("tim", 0.4)]).unwrap(),
                        PValue::certain("MACHINIST"),
                    ],
                )
                .build()
                .unwrap(),
        );
        r
    }

    #[test]
    fn standardization_merges_colliding_alternatives() {
        let mut r = relation();
        Preparation::standard_all(2).apply(&mut r);
        let name = r.xtuples()[0].alternatives()[0].value(0);
        assert_eq!(name.support_len(), 1);
        assert!((name.prob_of(Some(&Value::from("tim"))) - 0.9).abs() < 1e-12);
        let job = r.xtuples()[0].alternatives()[0].value(1);
        assert_eq!(job.alternatives()[0].0.render(), "machinist");
    }

    #[test]
    fn per_attribute_steps_are_scoped() {
        let mut r = relation();
        Preparation::new()
            .normalize_attr(1, Normalizer::standard())
            .apply(&mut r);
        let name = r.xtuples()[0].alternatives()[0].value(0);
        assert_eq!(name.support_len(), 2, "name untouched");
        let job = r.xtuples()[0].alternatives()[0].value(1);
        assert_eq!(job.alternatives()[0].0.render(), "machinist");
    }

    #[test]
    fn non_text_values_pass_through() {
        let s = Schema::new(["age"]);
        let mut r = XRelation::new(s.clone());
        r.push(
            XTuple::builder(&s)
                .alt(1.0, [Value::Int(42)])
                .build()
                .unwrap(),
        );
        Preparation::standard_all(1).apply(&mut r);
        assert_eq!(
            r.xtuples()[0].alternatives()[0].value(0).alternatives()[0].0,
            Value::Int(42)
        );
    }

    #[test]
    fn empty_preparation_is_identity() {
        let mut r = relation();
        let before = r.clone();
        Preparation::new().apply(&mut r);
        assert_eq!(r, before);
        assert!(Preparation::new().is_empty());
    }

    #[test]
    fn canonicalization_replaces_whole_values() {
        let s = Schema::new(["name", "job"]);
        let mut r = XRelation::new(s.clone());
        r.push(
            XTuple::builder(&s)
                .alt_pvalues(
                    1.0,
                    [
                        PValue::categorical([("Johnny", 0.6), ("John", 0.4)]).unwrap(),
                        PValue::certain("confectionist"),
                    ],
                )
                .build()
                .unwrap(),
        );
        Preparation::new()
            .canonicalize_attr(0, [("Johnny", "John"), ("Jon", "John")])
            .canonicalize_attr(1, [("confectionist", "confectioner")])
            .apply(&mut r);
        let name = r.xtuples()[0].alternatives()[0].value(0);
        // Johnny → John merges with the existing John alternative.
        assert_eq!(name.support_len(), 1);
        assert!((name.prob_of(Some(&Value::from("John"))) - 1.0).abs() < 1e-12);
        let job = r.xtuples()[0].alternatives()[0].value(1);
        assert_eq!(job.alternatives()[0].0.render(), "confectioner");
    }

    #[test]
    fn canonicalization_is_exact_match_only() {
        let s = Schema::new(["name"]);
        let mut r = XRelation::new(s.clone());
        r.push(XTuple::builder(&s).alt(1.0, ["Johnny B"]).build().unwrap());
        Preparation::new()
            .canonicalize_attr(0, [("Johnny", "John")])
            .apply(&mut r);
        // No substring replacement: the full value differs, so unchanged.
        assert_eq!(
            r.xtuples()[0].alternatives()[0].value(0).alternatives()[0]
                .0
                .render(),
            "Johnny B"
        );
    }

    #[test]
    fn debug_formatting_of_steps() {
        let p = Preparation::new()
            .normalize_attr(0, Normalizer::standard())
            .canonicalize_attr(1, [("a", "b")]);
        let dbg = format!("{p:?}");
        assert!(dbg.contains("Normalize(attr 0)"), "{dbg}");
        assert!(dbg.contains("Canonicalize(attr 1, 1 entries)"), "{dbg}");
    }
}
