//! Write-ahead ingest journal: crash durability for the window *between*
//! snapshots.
//!
//! [`crate::snapshot`] makes a [`DedupSession`] durable at the moments an
//! operator (or the serving daemon's autosaver) chooses to save; every
//! batch accepted since the last save is lost on a crash. This module
//! closes that window with the classic write-ahead discipline: each
//! accepted batch is appended to an on-disk journal and fsynced **before**
//! it mutates the session, so after a `kill -9` the pre-crash state is
//! exactly `snapshot + journal tail`, replayable record by record.
//!
//! # File format (journal version 1)
//!
//! ```text
//! header   "PXDWAL\0\0" · version u32 · base_seq u64          (20 bytes)
//! record   seq u64 · kind u8 · len u64 · payload · cksum u64
//! ```
//!
//! All integers little-endian; `cksum` is [`fnv1a`] over the record's
//! header-and-payload bytes (everything before the checksum itself). The
//! payload is the posted batch — the *raw* [`XRelation`] as received,
//! encoded with the model-layer codec; replay re-runs preparation through
//! the normal [`DedupSession::ingest`] / [`run`](DedupSession::run) path,
//! which is deterministic, so the recovered state is byte-identical to the
//! pre-crash one. `kind` distinguishes an appended batch (`ingest`) from a
//! corpus replacement (`run`): both mutate the session, so both journal.
//!
//! Sequence numbers are strictly contiguous (`seq = previous + 1`), which
//! is what makes every crash window decidable on reboot:
//!
//! * `base_seq` is the sequence number the journal was last compacted at —
//!   records with `seq <= base_seq` are stale leftovers of an interrupted
//!   compaction and are skipped;
//! * the snapshot stores the highest sequence it covers (section 8, see
//!   [`crate::snapshot`]) — records at or below it are already baked in
//!   and are skipped;
//! * everything above both is replayed, in order, through the same code
//!   path that applied it originally.
//!
//! # Compaction protocol
//!
//! After a snapshot covering sequence `S` is durably on disk
//! ([`atomic_write`](crate::snapshot::atomic_write) has returned), the
//! journal is reset in two fsynced steps: write `base_seq = S` in place,
//! then truncate to the bare header. A crash between the steps leaves
//! records `<= S` in the file under `base_seq = S` — exactly the stale
//! state the skip rule ignores. A crash *before* the base write leaves the
//! old journal next to the new snapshot — the snapshot's own sequence
//! floor skips the replay. No interleaving double-applies or loses a
//! record; `tests/wal.rs` enumerates every crash point and asserts the
//! recovered partition byte-identical.
//!
//! # Torn and corrupt tails
//!
//! A crash mid-append can leave a torn final record. Recovery parses
//! records until the first frame that is incomplete, fails its checksum,
//! or breaks sequence contiguity, **truncates** the file back to the last
//! good record, and replays the rest — it never panics on journal bytes
//! and never surfaces a half-written batch (fuzzed in `tests/wal.rs`).
//! A journal whose `base_seq` exceeds what the session state covers is
//! refused loudly instead: that means the snapshot the journal was
//! compacted against has been lost, and silently replaying would resurrect
//! a corpus with holes.
//!
//! [`DedupSession`]: crate::session::DedupSession
//! [`XRelation`]: probdedup_model::relation::XRelation
//! [`fnv1a`]: probdedup_model::snapshot::fnv1a

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use probdedup_model::relation::XRelation;
use probdedup_model::snapshot::{
    fnv1a, read_xrelation, write_xrelation, SectionReader, SectionWriter, SnapshotError,
};

use crate::pipeline::DedupResult;
use crate::session::{DedupSession, IncrementalResult};

/// Journal file magic (8 bytes).
pub const WAL_MAGIC: [u8; 8] = *b"PXDWAL\0\0";
/// Journal format version.
pub const WAL_VERSION: u32 = 1;
/// Fixed header length: magic + version + `base_seq`.
pub const WAL_HEADER_LEN: u64 = 20;

/// Record kind: one batch appended via [`DedupSession::ingest`].
const REC_INGEST: u8 = 1;
/// Record kind: corpus replaced via [`DedupSession::run`].
const REC_RUN: u8 = 2;
/// Per-record framing overhead: seq + kind + len before the payload,
/// checksum after it.
const REC_PREFIX: usize = 8 + 1 + 8;
const REC_OVERHEAD: usize = REC_PREFIX + 8;

/// What [`SessionJournal::open_and_replay`] did to reconcile the journal
/// with the session it was opened over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Records applied to the session (committed after the snapshot).
    pub replayed: u64,
    /// Stale records skipped (already covered by the snapshot or by an
    /// interrupted compaction's `base_seq`).
    pub skipped: u64,
    /// Torn/corrupt tail bytes truncated off the file.
    pub truncated_bytes: u64,
}

/// The write-ahead journal of one session: an append-only file coupling
/// every accepted mutation to disk *before* it reaches memory.
///
/// The API enforces the discipline rather than documenting it:
/// [`ingest`](Self::ingest) and [`run`](Self::run) take the session and
/// the batch together, validate, append + fsync, and only then apply —
/// there is no public "append without applying" or "apply without
/// appending" path.
#[derive(Debug)]
pub struct SessionJournal {
    path: PathBuf,
    file: File,
    /// Sequence the journal was last compacted at (record floor).
    base_seq: u64,
    /// Highest sequence this journal knows of — the last physical record,
    /// or the coverage floor when the file is bare. The next append is
    /// `tail_seq + 1`.
    tail_seq: u64,
}

impl SessionJournal {
    /// Open (creating if absent) the journal at `path` and replay its
    /// committed tail onto `session`, reconciling every crash window: a
    /// torn trailing record is truncated, records the session's snapshot
    /// already covers are skipped, and the rest are applied in order.
    ///
    /// `session` should be freshly restored from its snapshot (or fresh
    /// from the pipeline when no snapshot exists) — afterwards it is
    /// exactly the pre-crash state, and the returned journal is positioned
    /// to accept the next mutation.
    pub fn open_and_replay(
        path: impl AsRef<Path>,
        session: &mut DedupSession,
    ) -> Result<(Self, WalReplay), SnapshotError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let base_seq = match parse_header(&bytes)? {
            Some(base) => base,
            None => {
                // Empty or torn header (a crash during creation): start
                // the journal at the session's current coverage.
                let base = session.journal_seq();
                write_fresh_header(&mut file, &path, base)?;
                bytes.clear();
                bytes.extend_from_slice(&header_bytes(base));
                base
            }
        };
        if base_seq > session.journal_seq() {
            // The journal was compacted against a snapshot covering
            // `base_seq`, but the session state covers less: the snapshot
            // is missing or stale, and the compacted records are gone.
            return Err(SnapshotError::Malformed {
                context: "journal compacted beyond the session snapshot (snapshot missing?)",
            });
        }

        let (records, good_end) = parse_records(&bytes);
        let truncated_bytes = (bytes.len() - good_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }

        // Replay everything above the coverage floor, in order.
        let floor = base_seq.max(session.journal_seq());
        let mut replay = WalReplay {
            truncated_bytes,
            ..WalReplay::default()
        };
        let mut expected = floor + 1;
        let mut tail_seq = floor;
        for rec in &records {
            tail_seq = tail_seq.max(rec.seq);
            if rec.seq <= floor {
                replay.skipped += 1;
                continue;
            }
            if rec.seq != expected {
                return Err(SnapshotError::Malformed {
                    context: "journal gap: committed records missing below the tail",
                });
            }
            expected += 1;
            apply_record(session, rec.kind, &bytes[rec.payload.clone()])?;
            session.set_journal_seq(rec.seq);
            replay.replayed += 1;
        }

        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                path,
                file,
                base_seq,
                tail_seq,
            },
            replay,
        ))
    }

    /// Journal-then-apply one ingest batch: validate against the session,
    /// append the batch durably (fsync), then apply it. On an append
    /// error the session is untouched — the caller can refuse the batch
    /// knowing memory and disk still agree.
    pub fn ingest(
        &mut self,
        session: &mut DedupSession,
        batch: &XRelation,
    ) -> Result<IncrementalResult, SnapshotError> {
        session.validate_ingest(batch)?;
        let seq = self.append(REC_INGEST, batch)?;
        let out = session.ingest(batch)?;
        session.set_journal_seq(seq);
        Ok(out)
    }

    /// Journal-then-apply a corpus replacement ([`DedupSession::run`] over
    /// one source). Replacements journal like ingests — a recovered
    /// session must converge to the same resident corpus.
    pub fn run(
        &mut self,
        session: &mut DedupSession,
        corpus: &XRelation,
    ) -> Result<DedupResult, SnapshotError> {
        let seq = self.append(REC_RUN, corpus)?;
        let out = session.run(&[corpus])?;
        session.set_journal_seq(seq);
        Ok(out)
    }

    /// Reset the journal after a snapshot covering `applied_seq` is
    /// durably on disk: record the new floor in the header (fsync), then
    /// truncate the now-redundant records (fsync). Crash-safe at every
    /// step — see the module docs for the interleaving analysis.
    pub fn compact(&mut self, applied_seq: u64) -> Result<(), SnapshotError> {
        if applied_seq < self.tail_seq {
            // Compacting below the tail would truncate committed records
            // the snapshot does not cover — a caller bug, refused.
            return Err(SnapshotError::Malformed {
                context: "journal compaction below the committed tail",
            });
        }
        self.file.seek(SeekFrom::Start(12))?;
        self.file.write_all(&applied_seq.to_le_bytes())?;
        self.file.sync_data()?;
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.sync_data()?;
        self.base_seq = applied_seq;
        self.tail_seq = applied_seq;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Highest sequence number this journal has committed (the value a
    /// snapshot saved *now* should be compacted at).
    pub fn last_seq(&self) -> u64 {
        self.tail_seq
    }

    /// The sequence floor recorded at the last compaction.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frame, append and fsync one record; returns its sequence number.
    fn append(&mut self, kind: u8, batch: &XRelation) -> Result<u64, SnapshotError> {
        let seq = self.tail_seq + 1;
        let mut w = SectionWriter::new();
        write_xrelation(&mut w, batch);
        let payload = w.into_bytes();
        let mut frame = Vec::with_capacity(payload.len() + REC_OVERHEAD);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&payload);
        let cksum = fnv1a(&frame);
        frame.extend_from_slice(&cksum.to_le_bytes());
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.tail_seq = seq;
        Ok(seq)
    }
}

/// One parsed record frame (payload as a range into the file bytes).
struct RawRecord {
    seq: u64,
    kind: u8,
    payload: std::ops::Range<usize>,
}

/// Validate the fixed header. `Ok(Some(base_seq))` for a well-formed
/// header, `Ok(None)` when the file is empty or holds a torn prefix of our
/// own header (recoverable by rewriting it), an error for foreign or
/// future-format files (never clobbered).
fn parse_header(bytes: &[u8]) -> Result<Option<u64>, SnapshotError> {
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        let magic_prefix = WAL_MAGIC.len().min(bytes.len());
        if bytes[..magic_prefix] != WAL_MAGIC[..magic_prefix] {
            return Err(SnapshotError::BadMagic);
        }
        return Ok(None);
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte version"));
    if version != WAL_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    Ok(Some(u64::from_le_bytes(
        bytes[12..20].try_into().expect("8-byte base seq"),
    )))
}

/// Parse record frames after the header, stopping (without error) at the
/// first torn, checksum-failing, or sequence-breaking frame. Returns the
/// good records and the byte offset the file should be truncated to.
fn parse_records(bytes: &[u8]) -> (Vec<RawRecord>, usize) {
    let mut records: Vec<RawRecord> = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    while pos < bytes.len() {
        let rem = &bytes[pos..];
        if rem.len() < REC_OVERHEAD {
            break;
        }
        let seq = u64::from_le_bytes(rem[..8].try_into().expect("8-byte seq"));
        let kind = rem[8];
        let len = u64::from_le_bytes(rem[9..17].try_into().expect("8-byte len"));
        let Ok(len) = usize::try_from(len) else {
            break;
        };
        let Some(frame_len) = len.checked_add(REC_OVERHEAD) else {
            break;
        };
        if rem.len() < frame_len {
            break;
        }
        let stored = u64::from_le_bytes(
            rem[REC_PREFIX + len..frame_len]
                .try_into()
                .expect("8-byte checksum"),
        );
        if fnv1a(&rem[..REC_PREFIX + len]) != stored {
            break;
        }
        if let Some(prev) = records.last() {
            if seq != prev.seq + 1 {
                break;
            }
        }
        records.push(RawRecord {
            seq,
            kind,
            payload: pos + REC_PREFIX..pos + REC_PREFIX + len,
        });
        pos += frame_len;
    }
    let good_end = last_good_end(&records, WAL_HEADER_LEN as usize);
    (records, good_end)
}

/// Byte offset just past the last good record (the truncation target).
fn last_good_end(records: &[RawRecord], header_end: usize) -> usize {
    records
        .last()
        .map_or(header_end, |r| r.payload.end + 8 /* checksum */)
}

/// Decode and apply one committed record through the session's normal
/// mutation path (deterministic, so recovery reproduces the exact state).
fn apply_record(session: &mut DedupSession, kind: u8, payload: &[u8]) -> Result<(), SnapshotError> {
    let mut r = SectionReader::new(payload, "journal record payload");
    let batch = read_xrelation(&mut r)?;
    r.finish()?;
    match kind {
        REC_INGEST => {
            session.ingest(&batch)?;
        }
        REC_RUN => {
            session.run(&[&batch])?;
        }
        _ => {
            // A checksum-valid frame with an unknown kind was written by
            // something newer than this reader — refuse, don't guess.
            return Err(SnapshotError::Malformed {
                context: "unknown journal record kind",
            });
        }
    }
    Ok(())
}

/// Write a pristine header (creation, or recovery from a torn one).
fn write_fresh_header(file: &mut File, path: &Path, base_seq: u64) -> Result<(), SnapshotError> {
    file.set_len(0)?;
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header_bytes(base_seq))?;
    file.sync_all()?;
    // The file's existence must be durable too: fsync the directory, best
    // effort on platforms where directories cannot be opened for sync.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok(())
}

/// The 20 header bytes for `base_seq`.
fn header_bytes(base_seq: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&base_seq.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DedupPipeline, ReductionStrategy};
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::SimilarityBasedModel;
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_model::xtuple::XTuple;
    use probdedup_textsim::NormalizedHamming;
    use std::fs;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn pipeline() -> DedupPipeline {
        DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(Arc::new(SimilarityBasedModel::new(
                Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
                Arc::new(ExpectedSimilarity),
                Thresholds::new(0.6, 0.8).unwrap(),
            )))
            .reduction(ReductionStrategy::Full)
            .cache_similarities(true)
            .build()
    }

    fn rel(rows: &[(&str, &str)]) -> XRelation {
        let s = schema();
        let mut r = XRelation::new(s.clone());
        for (n, j) in rows {
            r.push(XTuple::builder(&s).alt(0.9, [*n, *j]).build().unwrap());
        }
        r
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("probdedup-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_replays_committed_batches_onto_a_fresh_session() {
        let dir = temp_dir("replay");
        let wal = dir.join("s.wal");
        let p = pipeline();

        let mut live = p.session();
        let (mut journal, replay) = SessionJournal::open_and_replay(&wal, &mut live).unwrap();
        assert_eq!(replay, WalReplay::default());
        journal
            .ingest(&mut live, &rel(&[("John", "pilot"), ("Jon", "pilot")]))
            .unwrap();
        journal
            .ingest(&mut live, &rel(&[("Tim", "smith")]))
            .unwrap();
        assert_eq!(journal.last_seq(), 2);
        assert_eq!(live.journal_seq(), 2);

        // "kill -9": recover a fresh session purely from the journal.
        let mut recovered = p.session();
        let (journal2, replay) = SessionJournal::open_and_replay(&wal, &mut recovered).unwrap();
        assert_eq!(replay.replayed, 2);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(journal2.last_seq(), 2);
        assert_eq!(recovered.rows(), live.rows());
        assert_eq!(recovered.result().decisions, live.result().decisions);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_committed_record() {
        let dir = temp_dir("torn");
        let wal = dir.join("s.wal");
        let p = pipeline();

        let mut live = p.session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal, &mut live).unwrap();
        journal
            .ingest(&mut live, &rel(&[("John", "pilot")]))
            .unwrap();
        let committed_len = fs::metadata(&wal).unwrap().len();
        journal
            .ingest(&mut live, &rel(&[("Tim", "smith")]))
            .unwrap();
        let full_len = fs::metadata(&wal).unwrap().len();
        drop(journal);

        // Tear the second record at every byte boundary.
        for cut in committed_len + 1..full_len {
            let full = fs::read(&wal).unwrap();
            fs::write(&wal, &full[..cut as usize]).unwrap();
            let mut recovered = p.session();
            let (j, replay) = SessionJournal::open_and_replay(&wal, &mut recovered).unwrap();
            assert_eq!(replay.replayed, 1, "cut at {cut}");
            assert_eq!(replay.truncated_bytes, cut - committed_len, "cut at {cut}");
            assert_eq!(recovered.rows(), 1, "cut at {cut}");
            assert_eq!(j.last_seq(), 1);
            assert_eq!(
                fs::metadata(&wal).unwrap().len(),
                committed_len,
                "file not truncated at cut {cut}"
            );
            // Restore the full file for the next cut.
            drop(j);
            fs::write(&wal, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_resets_the_file_and_skips_stale_records() {
        let dir = temp_dir("compact");
        let wal = dir.join("s.wal");
        let p = pipeline();

        let mut live = p.session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal, &mut live).unwrap();
        journal
            .ingest(&mut live, &rel(&[("John", "pilot")]))
            .unwrap();
        journal
            .ingest(&mut live, &rel(&[("Tim", "smith")]))
            .unwrap();

        // Snapshot saved durably → compact.
        let snap = live.to_snapshot_bytes();
        journal.compact(live.journal_seq()).unwrap();
        assert_eq!(fs::metadata(&wal).unwrap().len(), WAL_HEADER_LEN);
        assert_eq!(journal.base_seq(), 2);

        // Appends continue from the compacted floor (no sequence reuse).
        journal
            .ingest(&mut live, &rel(&[("Ann", "nurse")]))
            .unwrap();
        assert_eq!(journal.last_seq(), 3);
        drop(journal);

        // Recover from snapshot + journal tail: only record 3 replays.
        let mut recovered = DedupSession::from_snapshot_bytes(&snap, &p).unwrap();
        assert_eq!(recovered.journal_seq(), 2);
        let (_, replay) = SessionJournal::open_and_replay(&wal, &mut recovered).unwrap();
        assert_eq!(replay.replayed, 1);
        assert_eq!(recovered.rows(), live.rows());
        assert_eq!(recovered.result().decisions, live.result().decisions);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_skips_stale_records_on_replay() {
        let dir = temp_dir("interrupt");
        let wal = dir.join("s.wal");
        let p = pipeline();

        let mut live = p.session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal, &mut live).unwrap();
        journal
            .ingest(&mut live, &rel(&[("John", "pilot")]))
            .unwrap();
        journal
            .ingest(&mut live, &rel(&[("Tim", "smith")]))
            .unwrap();
        let snap = live.to_snapshot_bytes();
        drop(journal);

        // Simulate a crash between the compaction's base write and its
        // truncation: base_seq = 2, records 1..=2 still in the file.
        let mut bytes = fs::read(&wal).unwrap();
        bytes[12..20].copy_from_slice(&2u64.to_le_bytes());
        fs::write(&wal, &bytes).unwrap();

        let mut recovered = DedupSession::from_snapshot_bytes(&snap, &p).unwrap();
        let (j, replay) = SessionJournal::open_and_replay(&wal, &mut recovered).unwrap();
        assert_eq!(replay.replayed, 0);
        assert_eq!(replay.skipped, 2);
        assert_eq!(j.last_seq(), 2);
        assert_eq!(recovered.result().decisions, live.result().decisions);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_without_its_snapshot_is_refused() {
        let dir = temp_dir("orphan");
        let wal = dir.join("s.wal");
        let p = pipeline();

        let mut live = p.session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal, &mut live).unwrap();
        journal
            .ingest(&mut live, &rel(&[("John", "pilot")]))
            .unwrap();
        journal.compact(live.journal_seq()).unwrap();
        drop(journal);

        // The snapshot covering seq 1 is "lost": a fresh session presents
        // journal_seq 0 against base_seq 1.
        let mut fresh = p.session();
        let err = SessionJournal::open_and_replay(&wal, &mut fresh).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_are_not_clobbered() {
        let dir = temp_dir("foreign");
        let wal = dir.join("s.wal");
        fs::write(&wal, b"definitely not a journal").unwrap();
        let mut session = pipeline().session();
        let err = SessionJournal::open_and_replay(&wal, &mut session).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "{err}");
        assert_eq!(fs::read(&wal).unwrap(), b"definitely not a journal");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_records_replay_corpus_replacement() {
        let dir = temp_dir("run");
        let wal = dir.join("s.wal");
        let p = pipeline();

        let mut live = p.session();
        let (mut journal, _) = SessionJournal::open_and_replay(&wal, &mut live).unwrap();
        journal
            .ingest(&mut live, &rel(&[("John", "pilot")]))
            .unwrap();
        // Replace the corpus outright, then ingest on top.
        journal
            .run(&mut live, &rel(&[("Ann", "nurse"), ("Anne", "nurse")]))
            .unwrap();
        journal
            .ingest(&mut live, &rel(&[("Tim", "smith")]))
            .unwrap();

        let mut recovered = p.session();
        let (_, replay) = SessionJournal::open_and_replay(&wal, &mut recovered).unwrap();
        assert_eq!(replay.replayed, 3);
        assert_eq!(recovered.rows(), 3);
        assert_eq!(recovered.source_count(), 2);
        assert_eq!(recovered.result().decisions, live.result().decisions);
        let _ = fs::remove_dir_all(&dir);
    }
}
