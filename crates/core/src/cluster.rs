//! Union-find for transitive closure of matches: the final merge step of
//! entity resolution (the paper cites the merge/purge formulation \[19\]).

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// All clusters of size ≥ `min_size`, each sorted ascending; clusters
    /// ordered by their smallest member (deterministic).
    pub fn clusters(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        let (clusters, _) = self.clusters_with_map();
        clusters
            .into_iter()
            .filter(|c| c.len() >= min_size)
            .collect()
    }

    /// Every cluster (singletons included) plus the cluster index of each
    /// element, in one pass over the elements.
    ///
    /// Clusters are ordered by their smallest member and each is sorted
    /// ascending — the same deterministic contract as
    /// [`clusters`](Self::clusters), but without a per-cluster sort or a
    /// second find pass: visiting elements in ascending order means each
    /// root's first appearance *is* its smallest member, so first-seen
    /// order and smallest-member order coincide.
    pub fn clusters_with_map(&mut self) -> (Vec<Vec<usize>>, Vec<usize>) {
        let n = self.len();
        // root -> cluster slot, assigned in first-seen (= smallest-member)
        // order.
        let mut slot = vec![usize::MAX; n];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut map = vec![0usize; n];
        for (x, m) in map.iter_mut().enumerate() {
            let r = self.find(x);
            let s = if slot[r] == usize::MAX {
                slot[r] = clusters.len();
                clusters.push(Vec::new());
                slot[r]
            } else {
                slot[r]
            };
            clusters[s].push(x);
            *m = s;
        }
        (clusters, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_closure() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let clusters = uf.clusters(2);
        assert_eq!(clusters, vec![vec![0, 1, 2]]);
        let all = uf.clusters(1);
        assert_eq!(all, vec![vec![0, 1, 2], vec![3], vec![4], vec![5]]);
    }

    #[test]
    fn equivalence_relation_laws() {
        let mut uf = UnionFind::new(10);
        for (a, b) in [(0, 5), (5, 9), (2, 3)] {
            uf.union(a, b);
        }
        // Reflexive.
        for x in 0..10 {
            assert!(uf.connected(x, x));
        }
        // Symmetric.
        assert_eq!(uf.connected(0, 9), uf.connected(9, 0));
        // Transitive.
        assert!(uf.connected(0, 9));
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.clusters(1).is_empty());
    }

    #[test]
    fn clusters_with_map_is_consistent_with_clusters() {
        let mut uf = UnionFind::new(8);
        for (a, b) in [(7, 2), (2, 4), (1, 6), (0, 3)] {
            uf.union(a, b);
        }
        let (clusters, map) = uf.clusters_with_map();
        // Singletons included; smallest-member order; members ascending.
        assert_eq!(
            clusters,
            vec![vec![0, 3], vec![1, 6], vec![2, 4, 7], vec![5]]
        );
        // The map agrees with membership.
        assert_eq!(map.len(), 8);
        for (i, cluster) in clusters.iter().enumerate() {
            for &x in cluster {
                assert_eq!(map[x], i, "element {x}");
            }
        }
        // clusters(min_size) is the filtered view of the same partition.
        assert_eq!(uf.clusters(2), vec![vec![0, 3], vec![1, 6], vec![2, 4, 7]]);
        assert_eq!(uf.clusters(1).len(), 4);
        assert_eq!(uf.clusters(4), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn clusters_with_map_on_empty_structure() {
        let mut uf = UnionFind::new(0);
        let (clusters, map) = uf.clusters_with_map();
        assert!(clusters.is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn deep_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, n - 1));
        assert_eq!(uf.clusters(2).len(), 1);
        assert_eq!(uf.clusters(2)[0].len(), n);
    }
}
