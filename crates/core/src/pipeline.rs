//! The [`DedupPipeline`]: preparation → reduction → matching → decision →
//! clustering, over one or more probabilistic source relations.
//!
//! This is the **one-shot** front door — stateless per invocation, as the
//! paper describes the process. Since the session redesign it is a thin
//! wrapper over [`DedupSession`](crate::session::DedupSession): `run`
//! spins up a fresh session and drops it. Build a session instead
//! ([`DedupPipelineBuilder::build_session`]) to keep interner pools, key
//! tables and similarity caches warm across runs and to **ingest** new
//! batches incrementally.
//!
//! The matching stage is the quadratic hot path and runs in one of three
//! modes:
//!
//! * **plain** — comparison matrices straight off the [`XTuple`]s
//!   (`cache_similarities(false)`, the default);
//! * **interned** — with `cache_similarities(true)`, the prepared relation
//!   is interned into a
//!   [`ValuePool`](probdedup_model::intern::ValuePool) once, and all Eq. 5
//!   evaluations run over dense symbols through sharded per-attribute
//!   [`SymbolCache`](probdedup_matching::cache::SymbolCache)s with
//!   upper-bound pruning (see `probdedup_matching::interned`);
//! * **classify-only (bounded)** — with
//!   [`classify_only`](DedupPipelineBuilder::classify_only), evaluation of
//!   a pair stops the moment its classification is certified: the decision
//!   thresholds decompose into running attribute budgets
//!   ([`AttributeBudgets`]), each attribute evaluates Eq. 5 against a cut
//!   interval with certified interval tracking
//!   ([`interned_pvalue_similarity_bounded`] /
//!   [`pvalue_similarity_bounded`]), and the kernels themselves run
//!   bounded (banded Myers, length/class prefilters) — no comparison
//!   matrix is ever materialized. [`PairDecision::similarity`] then holds
//!   a certified representative (a bound that classifies identically),
//!   not the exact degree; the match/possible/non-match partition is
//!   identical to the exact path's away from a 1e-9 threshold margin
//!   (property-tested). Combine with `cache_similarities(true)` to run
//!   the bounded path over interned symbols with verdict-memoizing
//!   caches.
//!
//! Either mode executes candidate pairs with the work-stealing
//! [`par_map_index`] pair executor, so skewed block
//! sizes no longer leave `threads(n)` workers idle. Results are
//! reassembled in candidate order — output is byte-identical across thread
//! counts.
//!
//! The reduction stage runs on **interned keys** throughout: every
//! [`ReductionStrategy`] variant builds a
//! [`KeyTable`](probdedup_reduction::KeyTable) once (all key-prefix
//! rendering happens there), then buckets blocks on
//! [`KeySymbol`](probdedup_model::intern::KeySymbol)s and sorts SNM
//! entries by precomputed lexicographic rank — multi-pass SNM and blocking
//! are sort-only from the second pass on.
//!
//! [`XTuple`]: probdedup_model::xtuple::XTuple

use std::sync::Arc;

use probdedup_decision::budget::{classify_comparison_bounded, AttributeBudgets, BoundedTier};
use probdedup_decision::combine::WeightedSum;
use probdedup_decision::threshold::{MatchClass, Thresholds};
use probdedup_decision::xmodel::XTupleDecisionModel;
use probdedup_matching::bounded::pvalue_similarity_bounded;
use probdedup_matching::interned::{
    compare_xtuples_interned, interned_pvalue_similarity_bounded, InternedComparators,
    InternedXTuple,
};
use probdedup_matching::matrix::compare_xtuples;
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::error::ModelError;
use probdedup_model::ids::{SourceId, TupleHandle};
use probdedup_model::relation::XRelation;
use probdedup_reduction::{
    block_alternatives, block_conflict_resolved, block_multipass, cluster_blocking,
    conflict_resolved_snm, multipass_snm_pairs, ranked_snm, sorting_alternatives, CandidatePairs,
    ClusterBlockingConfig, ConflictResolution, KeySpec, RankingFunction, WorldSelection,
};

use crate::exec::par_map_index;
use crate::prepare::Preparation;

/// Which search-space reduction runs before matching.
#[derive(Clone)]
pub enum ReductionStrategy {
    /// All `n·(n−1)/2` pairs (the baseline the paper calls "mostly too
    /// inefficient" — correct but quadratic).
    Full,
    /// Multi-pass SNM over possible worlds (Section V-A.1).
    MultipassWorlds {
        /// Sorting key.
        spec: KeySpec,
        /// SNM window size.
        window: usize,
        /// World selection policy.
        selection: WorldSelection,
    },
    /// SNM over conflict-resolved certain keys (Section V-A.2).
    ConflictResolved {
        /// Sorting key.
        spec: KeySpec,
        /// SNM window size.
        window: usize,
        /// Conflict-resolution strategy.
        strategy: ConflictResolution,
    },
    /// Sorting alternatives (Section V-A.3).
    SortingAlternatives {
        /// Sorting key.
        spec: KeySpec,
        /// SNM window size.
        window: usize,
    },
    /// Uncertain keys + probabilistic ranking (Section V-A.4).
    RankedKeys {
        /// Sorting key.
        spec: KeySpec,
        /// SNM window size.
        window: usize,
        /// Ranking semantics.
        ranking: RankingFunction,
    },
    /// Blocking with per-alternative keys (Section V-B, Fig. 14).
    BlockingAlternatives {
        /// Blocking key.
        spec: KeySpec,
    },
    /// Blocking with conflict-resolved keys (Section V-B).
    BlockingConflictResolved {
        /// Blocking key.
        spec: KeySpec,
        /// Conflict-resolution strategy.
        strategy: ConflictResolution,
    },
    /// Multi-pass blocking over selected worlds (Section V-B).
    BlockingMultipass {
        /// Blocking key.
        spec: KeySpec,
        /// World selection policy.
        selection: WorldSelection,
    },
    /// Clustering of uncertain keys (Section V-B, UK-means style).
    ClusterBlocking {
        /// Blocking key.
        spec: KeySpec,
        /// Clustering configuration.
        config: ClusterBlockingConfig,
    },
}

impl ReductionStrategy {
    /// One-shot candidate generation over a whole corpus (the session
    /// keeps warm incremental state instead where the strategy allows it;
    /// see `crate::session`).
    pub(crate) fn candidates(&self, tuples: &[probdedup_model::xtuple::XTuple]) -> CandidatePairs {
        match self {
            Self::Full => CandidatePairs::full(tuples.len()),
            Self::MultipassWorlds {
                spec,
                window,
                selection,
            } => multipass_snm_pairs(tuples, spec, *window, *selection),
            Self::ConflictResolved {
                spec,
                window,
                strategy,
            } => conflict_resolved_snm(tuples, spec, *window, *strategy).0,
            Self::SortingAlternatives { spec, window } => {
                sorting_alternatives(tuples, spec, *window).pairs
            }
            Self::RankedKeys {
                spec,
                window,
                ranking,
            } => ranked_snm(tuples, spec, *window, *ranking).0,
            Self::BlockingAlternatives { spec } => block_alternatives(tuples, spec).pairs,
            Self::BlockingConflictResolved { spec, strategy } => {
                block_conflict_resolved(tuples, spec, *strategy).pairs
            }
            Self::BlockingMultipass { spec, selection } => {
                block_multipass(tuples, spec, *selection).pairs
            }
            Self::ClusterBlocking { spec, config } => cluster_blocking(tuples, spec, config).0,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::MultipassWorlds { .. } => "snm-multipass",
            Self::ConflictResolved { .. } => "snm-conflict-resolved",
            Self::SortingAlternatives { .. } => "snm-alternatives",
            Self::RankedKeys { .. } => "snm-ranked",
            Self::BlockingAlternatives { .. } => "blocking-alternatives",
            Self::BlockingConflictResolved { .. } => "blocking-conflict-resolved",
            Self::BlockingMultipass { .. } => "blocking-multipass",
            Self::ClusterBlocking { .. } => "blocking-cluster",
        }
    }
}

/// The decision recorded for one compared candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairDecision {
    /// Row indices into the combined relation, `i < j`.
    pub pair: (usize, usize),
    /// The derived similarity degree.
    pub similarity: f64,
    /// The matching value η.
    pub class: MatchClass,
}

impl std::fmt::Display for PairDecision {
    /// `(i, j)  sim 0.842  → match` — combined-relation row indices (map
    /// them back to sources with [`DedupResult::handle`] when needed).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {})  sim {:.3}  → {}",
            self.pair.0, self.pair.1, self.similarity, self.class
        )
    }
}

/// Counters describing the matching stage of one run (all zero when the
/// similarity cache is disabled — the plain path keeps no counters).
///
/// The `pairs_*` tier counters are populated only by the classify-only
/// (bounded) mode: they partition the candidate pairs by which bound
/// settled them. In bounded runs `cache_misses` counts probes the exact
/// cache could not answer; `kernel_bound_certs` says how many kernel
/// evaluations among those were disposed by a below-bound certificate
/// (prefilters / banded Myers) instead of a full kernel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchingStats {
    /// Kernel evaluations answered by the sharded similarity cache.
    pub cache_hits: u64,
    /// Kernel evaluations that had to run (and were then memoized).
    pub cache_misses: u64,
    /// Distinct value pairs memoized across all attribute caches.
    pub cached_pairs: usize,
    /// Distinct values interned into the run's `ValuePool`.
    pub interned_values: usize,
    /// Pairs certified `≥ T_μ` before evaluation finished (bounded mode).
    pub pairs_early_match: u64,
    /// Pairs certified `< T_λ` before evaluation finished (bounded mode).
    pub pairs_early_nonmatch: u64,
    /// Pairs pinned inside the possible band early (bounded mode).
    pub pairs_early_possible: u64,
    /// Pairs whose bounded evaluation ran to completion (bounded mode).
    pub pairs_exhausted: u64,
    /// Kernel evaluations disposed by a below-bound certificate.
    pub kernel_bound_certs: u64,
    /// Memoized entries evicted to honour a cache capacity ceiling
    /// (always 0 with unbounded caches — the default).
    pub cache_evictions: u64,
    /// Pair decisions evicted from the session's decision memo to honour
    /// [`decision_memo_capacity`](DedupPipelineBuilder::decision_memo_capacity)
    /// (always 0 with an unbounded memo — the default).
    pub memo_evictions: u64,
}

impl MatchingStats {
    /// Fraction of kernel evaluations served from the cache (0 when no
    /// lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of pairs disposed before exhaustive evaluation, per tier:
    /// `(early_match, early_nonmatch, early_possible)` over all counted
    /// pairs. All zero outside bounded runs.
    pub fn disposal_fractions(&self) -> (f64, f64, f64) {
        let total = self.pairs_early_match
            + self.pairs_early_nonmatch
            + self.pairs_early_possible
            + self.pairs_exhausted;
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.pairs_early_match as f64 / t,
            self.pairs_early_nonmatch as f64 / t,
            self.pairs_early_possible as f64 / t,
        )
    }
}

/// Result of a pipeline run over the **combined** relation (all sources
/// concatenated; [`DedupResult::handle`] maps rows back to sources).
#[derive(Debug, Clone)]
pub struct DedupResult {
    /// The prepared combined relation the decisions refer to.
    pub relation: XRelation,
    /// Row offset where each source starts in the combined relation.
    pub source_offsets: Vec<usize>,
    /// Number of candidate pairs compared.
    pub candidates: usize,
    /// Every compared pair with its decision, in candidate order.
    pub decisions: Vec<PairDecision>,
    /// Duplicate clusters (transitive closure of matches), size ≥ 2.
    pub clusters: Vec<Vec<usize>>,
    /// Matching-stage counters (cache effectiveness, interning).
    pub stats: MatchingStats,
}

impl DedupResult {
    /// Pairs classified as matches.
    pub fn matches(&self) -> impl Iterator<Item = &PairDecision> {
        self.decisions
            .iter()
            .filter(|d| d.class == MatchClass::Match)
    }

    /// Pairs classified as possible matches (clerical review).
    pub fn possible_matches(&self) -> impl Iterator<Item = &PairDecision> {
        self.decisions
            .iter()
            .filter(|d| d.class == MatchClass::Possible)
    }

    /// Canonical match-pair set (for the eval crate).
    pub fn match_pair_set(&self) -> std::collections::HashSet<(usize, usize)> {
        self.matches().map(|d| d.pair).collect()
    }

    /// One-line report of the run, e.g. `4 rows, 6 candidate pairs
    /// compared: 1 match, 1 possible, 4 non-matches, 1 duplicate cluster`
    /// — the shared formatting the CLI and examples print instead of
    /// ad-hoc strings.
    pub fn summary(&self) -> String {
        let matches = self.matches().count();
        let possible = self.possible_matches().count();
        let non = self.decisions.len() - matches - possible;
        format!(
            "{} rows, {} candidate pairs compared: {} match{}, {} possible, {} non-match{}, {} duplicate cluster{}",
            self.relation.len(),
            self.candidates,
            matches,
            if matches == 1 { "" } else { "es" },
            possible,
            non,
            if non == 1 { "" } else { "es" },
            self.clusters.len(),
            if self.clusters.len() == 1 { "" } else { "s" },
        )
    }

    /// The empty result (what running over zero sources yields).
    pub(crate) fn empty() -> Self {
        DedupResult {
            relation: XRelation::new(probdedup_model::schema::Schema::new(Vec::<String>::new())),
            source_offsets: vec![],
            candidates: 0,
            decisions: vec![],
            clusters: vec![],
            stats: MatchingStats::default(),
        }
    }

    /// Map a combined row index back to its source handle.
    pub fn handle(&self, row: usize) -> TupleHandle {
        let source = self
            .source_offsets
            .partition_point(|&off| off <= row)
            .saturating_sub(1);
        TupleHandle {
            source: SourceId(source as u16),
            row: (row - self.source_offsets[source]) as u32,
        }
    }
}

/// Configuration of the classify-only (bounded) matching mode: the linear
/// similarity-based model — weighted-sum φ, Eq. 6 expectation, thresholds —
/// in the decomposed form the bounded path needs.
#[derive(Clone)]
pub struct BoundedClassifyConfig {
    /// Attribute combination weights (the φ of the exact model).
    pub phi: WeightedSum,
    /// The classification thresholds `(T_λ, T_μ)`.
    pub thresholds: Thresholds,
}

/// The full configuration of a pipeline or session — everything the
/// builder collects, shared between the one-shot front door
/// ([`DedupPipeline`]) and the persistent one
/// ([`DedupSession`](crate::session::DedupSession)).
#[derive(Clone)]
pub(crate) struct PipelineConfig {
    pub(crate) preparation: Preparation,
    pub(crate) reduction: ReductionStrategy,
    pub(crate) comparators: AttributeComparators,
    pub(crate) model: Option<Arc<dyn XTupleDecisionModel>>,
    pub(crate) bounded: Option<BoundedClassifyConfig>,
    pub(crate) threads: usize,
    pub(crate) cache_similarities: bool,
    pub(crate) cache_capacity: Option<usize>,
    pub(crate) memo_capacity: Option<usize>,
    pub(crate) memory_budget: Option<u64>,
}

/// The configured **one-shot** pipeline. Build with
/// [`DedupPipeline::builder`].
///
/// Since the session redesign this is a thin wrapper: every
/// [`run`](DedupPipeline::run) spins up a fresh
/// [`DedupSession`](crate::session::DedupSession), runs it once, and drops
/// it — stateless per invocation, exactly the paper's batch process. Use
/// [`DedupPipelineBuilder::build_session`] (or
/// [`DedupPipeline::session`]) when state should persist: warm interner
/// pools, key tables and similarity/verdict caches across runs, and
/// incremental ingest of new batches against the resident corpus.
#[derive(Clone)]
pub struct DedupPipeline {
    config: PipelineConfig,
}

/// Builder for [`DedupPipeline`].
pub struct DedupPipelineBuilder {
    preparation: Preparation,
    reduction: ReductionStrategy,
    comparators: Option<AttributeComparators>,
    model: Option<Arc<dyn XTupleDecisionModel>>,
    bounded: Option<BoundedClassifyConfig>,
    threads: usize,
    cache_similarities: bool,
    cache_capacity: Option<usize>,
    memo_capacity: Option<usize>,
    memory_budget: Option<u64>,
}

impl DedupPipeline {
    /// Start building a pipeline.
    pub fn builder() -> DedupPipelineBuilder {
        DedupPipelineBuilder {
            preparation: Preparation::new(),
            reduction: ReductionStrategy::Full,
            comparators: None,
            model: None,
            bounded: None,
            threads: 1,
            cache_similarities: false,
            cache_capacity: None,
            memo_capacity: None,
            memory_budget: None,
        }
    }

    /// Run over one or more source relations (schemas must be
    /// structurally compatible). Stateless: a fresh
    /// [`DedupSession`](crate::session::DedupSession) is created, run once
    /// and dropped — nothing warm survives into the next call.
    pub fn run(&self, sources: &[&XRelation]) -> Result<DedupResult, ModelError> {
        self.session().run(sources)
    }

    /// A sharded out-of-core front door over this pipeline's
    /// configuration: the corpus is partitioned into `shards` by
    /// blocking-key hash (or key-rank stripes for SNM strategies), each
    /// shard is matched independently, and the per-shard partitions merge
    /// into one [`DedupResult`] byte-identical to [`run`](Self::run)'s.
    /// See [`ShardedPipeline`](crate::shard::ShardedPipeline).
    pub fn sharded(&self, shards: usize) -> crate::shard::ShardedPipeline {
        crate::shard::ShardedPipeline::new(self.config.clone(), shards)
    }

    /// A fresh persistent session over this pipeline's configuration: the
    /// stateful front door that keeps interner pools, key tables and
    /// similarity/verdict caches warm across
    /// [`run`](crate::session::DedupSession::run)s and supports
    /// [`ingest`](crate::session::DedupSession::ingest)-style incremental
    /// deduplication.
    pub fn session(&self) -> crate::session::DedupSession {
        crate::session::DedupSession::new(self.config.clone())
    }

    /// Arity of the relations this pipeline was configured for (the
    /// number of per-attribute comparators) — lets front doors reject a
    /// mismatched relation up front instead of failing mid-matching.
    pub fn arity(&self) -> usize {
        self.config.comparators.arity()
    }
}

/// The exact matching stage over an explicit pair list: full comparison
/// matrices + the decision model, plain or interned. Shared by the
/// one-shot pipeline (fresh state) and the session (warm state).
pub(crate) fn classify_pairs_exact(
    model: &dyn XTupleDecisionModel,
    comparators: &AttributeComparators,
    tuples: &[probdedup_model::xtuple::XTuple],
    interned: Option<(&[InternedXTuple], &InternedComparators)>,
    pairs: &[(usize, usize)],
    threads: usize,
) -> Vec<PairDecision> {
    let threads = threads.clamp(1, pairs.len().max(1));
    par_map_index(threads, pairs.len(), |idx| {
        let (i, j) = pairs[idx];
        let matrix = match &interned {
            Some((itup, cmps)) => compare_xtuples_interned(&itup[i], &itup[j], cmps),
            None => compare_xtuples(&tuples[i], &tuples[j], comparators),
        };
        let d = model.decide(&tuples[i], &tuples[j], &matrix);
        PairDecision {
            pair: (i, j),
            similarity: d.similarity,
            class: d.class,
        }
    })
}

/// The classify-only (bounded) matching stage over an explicit pair list:
/// thresholds decompose into attribute budgets, every Eq. 5 evaluation
/// runs against a cut interval, and no comparison matrix is allocated.
/// Conditioned alternative weights arrive precomputed **per tuple**
/// (`weights[i]` for row `i` — the session keeps them resident; the exact
/// path re-derives them per pair inside the model).
pub(crate) fn classify_pairs_bounded(
    config: &BoundedClassifyConfig,
    comparators: &AttributeComparators,
    tuples: &[probdedup_model::xtuple::XTuple],
    weights: &[Vec<f64>],
    interned: Option<(&[InternedXTuple], &InternedComparators)>,
    pairs: &[(usize, usize)],
    threads: usize,
) -> Vec<(PairDecision, BoundedTier)> {
    assert_eq!(
        config.phi.weights().len(),
        comparators.arity(),
        "classify-only weights must cover every attribute"
    );
    let budgets = AttributeBudgets::new(&config.phi, config.thresholds);
    let threads = threads.clamp(1, pairs.len().max(1));
    par_map_index(threads, pairs.len(), |idx| {
        let (i, j) = pairs[idx];
        let d = match &interned {
            Some((itup, cmps)) => {
                let (t1, t2) = (&itup[i], &itup[j]);
                classify_comparison_bounded(
                    &weights[i],
                    &weights[j],
                    &budgets,
                    |ai, aj, attr, lo, hi| {
                        interned_pvalue_similarity_bounded(
                            t1.alternatives()[ai].value(attr),
                            t2.alternatives()[aj].value(attr),
                            attr,
                            cmps,
                            lo,
                            hi,
                        )
                    },
                )
            }
            None => {
                let (t1, t2) = (&tuples[i], &tuples[j]);
                classify_comparison_bounded(
                    &weights[i],
                    &weights[j],
                    &budgets,
                    |ai, aj, attr, lo, hi| {
                        pvalue_similarity_bounded(
                            t1.alternatives()[ai].value(attr),
                            t2.alternatives()[aj].value(attr),
                            comparators.get(attr),
                            lo,
                            hi,
                        )
                    },
                )
            }
        };
        (
            PairDecision {
                pair: (i, j),
                similarity: d.similarity,
                class: d.class,
            },
            d.tier,
        )
    })
}

impl DedupPipelineBuilder {
    /// Set the preparation plan (default: none).
    pub fn preparation(mut self, p: Preparation) -> Self {
        self.preparation = p;
        self
    }

    /// Set the reduction strategy (default: full comparison).
    pub fn reduction(mut self, r: ReductionStrategy) -> Self {
        self.reduction = r;
        self
    }

    /// Set the per-attribute value comparators (required).
    pub fn comparators(mut self, c: AttributeComparators) -> Self {
        self.comparators = Some(c);
        self
    }

    /// Set the x-tuple decision model (required unless
    /// [`classify_only`](Self::classify_only) is configured).
    pub fn model(mut self, m: Arc<dyn XTupleDecisionModel>) -> Self {
        self.model = Some(m);
        self
    }

    /// Run the matching stage in **classify-only (bounded)** mode: the
    /// given weighted-sum φ and thresholds — the linear similarity-based
    /// model — are decomposed into running budgets and every pair is
    /// evaluated only far enough to certify its class. Equivalent, in
    /// classification, to
    /// `model(SimilarityBasedModel::new(phi, ExpectedSimilarity, thresholds))`
    /// — but [`PairDecision::similarity`] holds a certified representative
    /// rather than the exact degree. Combine with
    /// [`cache_similarities(true)`](Self::cache_similarities) for the
    /// interned bounded path (verdict-memoizing symbol caches).
    pub fn classify_only(mut self, phi: WeightedSum, thresholds: Thresholds) -> Self {
        self.bounded = Some(BoundedClassifyConfig { phi, thresholds });
        self
    }

    /// Number of comparison threads (default 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Memoize value-pair similarities across all comparisons of a run
    /// (default off). Pays off when the same strings recur across many
    /// candidate pairs — i.e. almost always on real data.
    pub fn cache_similarities(mut self, on: bool) -> Self {
        self.cache_similarities = on;
        self
    }

    /// Bound the total number of memoized pairs each per-attribute
    /// similarity (and verdict) cache may hold; beyond the ceiling, cold
    /// entries are evicted second-chance style and counted in
    /// [`MatchingStats::cache_evictions`]. `None` (the default) keeps the
    /// caches unbounded. Only meaningful together with
    /// [`cache_similarities(true)`](Self::cache_similarities).
    pub fn cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Bound the session's pair-decision memo (the map of every classified
    /// pair a [`DedupSession`](crate::session::DedupSession) keeps so
    /// reruns and overlapping ingests never re-classify). Beyond the
    /// ceiling, cold entries are evicted second-chance style — pairs in
    /// the **current candidate set are pinned** (the resident view needs
    /// them), so the memo may transiently exceed the ceiling when the
    /// candidate set itself is larger. Evicted pairs that re-enter a later
    /// candidate set are simply re-classified (deterministic, so results
    /// are unchanged). Evictions are counted in
    /// [`MatchingStats::memo_evictions`]. `None` (the default) keeps the
    /// memo unbounded.
    pub fn decision_memo_capacity(mut self, capacity: Option<usize>) -> Self {
        self.memo_capacity = capacity;
        self
    }

    /// Bound the pipeline's total memory appetite to roughly `budget`
    /// bytes: a [`BudgetPlan`](crate::shard::BudgetPlan) decomposes the
    /// budget into a similarity-cache capacity, a decision-memo capacity,
    /// an external-sort run size and a block-spill threshold. Capacities
    /// set explicitly via [`cache_capacity`](Self::cache_capacity) /
    /// [`decision_memo_capacity`](Self::decision_memo_capacity) win over
    /// the derived ones; the sort/spill ceilings are consumed by the
    /// sharded front door ([`DedupPipeline::sharded`]). `None` (the
    /// default) leaves everything unbounded.
    pub fn memory_budget(mut self, budget: Option<u64>) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Finish; panics if comparators are missing, or if the decision-model
    /// configuration is not exactly one of `model` / `classify_only`
    /// (programming error, not data error — setting both would silently
    /// ignore the model and change what `PairDecision::similarity` means).
    pub fn build(self) -> DedupPipeline {
        assert!(
            self.model.is_some() || self.bounded.is_some(),
            "a decision model (or a classify_only config) is required"
        );
        assert!(
            !(self.model.is_some() && self.bounded.is_some()),
            "model and classify_only are mutually exclusive: classify-only \
             decides with its own thresholds and would ignore the model"
        );
        let plan = self.memory_budget.map(crate::shard::BudgetPlan::for_budget);
        let cache_capacity = self
            .cache_capacity
            .or(plan.as_ref().map(|p| p.cache_capacity));
        let memo_capacity = self
            .memo_capacity
            .or(plan.as_ref().map(|p| p.memo_capacity));
        DedupPipeline {
            config: PipelineConfig {
                preparation: self.preparation,
                reduction: self.reduction,
                comparators: self.comparators.expect("comparators are required"),
                model: self.model,
                bounded: self.bounded,
                threads: self.threads,
                cache_similarities: self.cache_similarities,
                cache_capacity,
                memo_capacity,
                memory_budget: self.memory_budget,
            },
        }
    }

    /// Finish straight into a persistent
    /// [`DedupSession`](crate::session::DedupSession) — the stateful front
    /// door. Same validation as [`build`](Self::build).
    pub fn build_session(self) -> crate::session::DedupSession {
        self.build().session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::SimilarityBasedModel;
    use probdedup_model::schema::Schema;
    use probdedup_model::xtuple::XTuple;
    use probdedup_textsim::NormalizedHamming;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn model() -> Arc<dyn XTupleDecisionModel> {
        Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.6, 0.8).unwrap(),
        ))
    }

    fn pipeline(reduction: ReductionStrategy) -> DedupPipeline {
        DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(model())
            .reduction(reduction)
            .build()
    }

    fn r3() -> XRelation {
        let s = schema();
        let mut r = XRelation::new(s.clone());
        r.push(
            XTuple::builder(&s)
                .alt(1.0, ["John", "pilot"])
                .build()
                .unwrap(),
        );
        r.push(
            XTuple::builder(&s)
                .alt(0.9, ["Tim", "mechanic"])
                .build()
                .unwrap(),
        );
        r
    }

    fn r4() -> XRelation {
        let s = schema();
        let mut r = XRelation::new(s.clone());
        r.push(
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .build()
                .unwrap(),
        );
        r.push(
            XTuple::builder(&s)
                .alt(1.0, ["Tom", "mechanic"])
                .build()
                .unwrap(),
        );
        r
    }

    #[test]
    fn end_to_end_two_sources() {
        let (a, b) = (r3(), r4());
        let result = pipeline(ReductionStrategy::Full).run(&[&a, &b]).unwrap();
        assert_eq!(result.relation.len(), 4);
        assert_eq!(result.candidates, 6);
        // (John,pilot) × (John,pilot) across sources is a match despite the
        // differing membership probabilities.
        let matches: Vec<(usize, usize)> = result.matches().map(|d| d.pair).collect();
        assert!(matches.contains(&(0, 2)));
        // Tim/Tom mechanic: sim = 0.8·(2/3) + 0.2·1 = 0.733 → possible.
        let possibles: Vec<(usize, usize)> = result.possible_matches().map(|d| d.pair).collect();
        assert!(possibles.contains(&(1, 3)));
        // Clusters: the John pair.
        assert_eq!(result.clusters, vec![vec![0, 2]]);
    }

    #[test]
    fn handles_map_back_to_sources() {
        let (a, b) = (r3(), r4());
        let result = pipeline(ReductionStrategy::Full).run(&[&a, &b]).unwrap();
        assert_eq!(result.handle(0), TupleHandle::new(0, 0));
        assert_eq!(result.handle(1), TupleHandle::new(0, 1));
        assert_eq!(result.handle(2), TupleHandle::new(1, 0));
        assert_eq!(result.handle(3), TupleHandle::new(1, 1));
    }

    #[test]
    fn reduction_strategies_run_end_to_end() {
        let (a, b) = (r3(), r4());
        let spec = KeySpec::paper_example(0, 1);
        let strategies = vec![
            ReductionStrategy::MultipassWorlds {
                spec: spec.clone(),
                window: 2,
                selection: WorldSelection::TopK(3),
            },
            ReductionStrategy::ConflictResolved {
                spec: spec.clone(),
                window: 2,
                strategy: ConflictResolution::MostProbableAlternative,
            },
            ReductionStrategy::SortingAlternatives {
                spec: spec.clone(),
                window: 2,
            },
            ReductionStrategy::RankedKeys {
                spec: spec.clone(),
                window: 2,
                ranking: RankingFunction::MostProbableKey,
            },
            ReductionStrategy::BlockingAlternatives { spec: spec.clone() },
            ReductionStrategy::BlockingConflictResolved {
                spec: spec.clone(),
                strategy: ConflictResolution::MostProbableAlternative,
            },
            ReductionStrategy::BlockingMultipass {
                spec: spec.clone(),
                selection: WorldSelection::TopK(2),
            },
            ReductionStrategy::ClusterBlocking {
                spec,
                config: ClusterBlockingConfig {
                    k: 2,
                    ..Default::default()
                },
            },
        ];
        let full = pipeline(ReductionStrategy::Full).run(&[&a, &b]).unwrap();
        for strat in strategies {
            let name = strat.name();
            let result = pipeline(strat).run(&[&a, &b]).unwrap();
            assert!(result.candidates <= full.candidates, "{name}");
            // Matches under a reduced candidate set are a subset of the
            // full-comparison matches.
            let full_set = full.match_pair_set();
            for m in result.match_pair_set() {
                assert!(full_set.contains(&m), "{name} invented match {m:?}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a, b) = (r3(), r4());
        // Force multiple rows so parallelism kicks in.
        let mut big_a = XRelation::new(schema());
        for _ in 0..30 {
            for t in a.xtuples() {
                big_a.push(t.clone());
            }
        }
        let seq = pipeline(ReductionStrategy::Full)
            .run(&[&big_a, &b])
            .unwrap();
        let par = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(model())
            .threads(4)
            .build()
            .run(&[&big_a, &b])
            .unwrap();
        assert_eq!(seq.decisions.len(), par.decisions.len());
        for (s, p) in seq.decisions.iter().zip(&par.decisions) {
            assert_eq!(s.pair, p.pair);
            assert!((s.similarity - p.similarity).abs() < 1e-15);
            assert_eq!(s.class, p.class);
        }
    }

    #[test]
    fn cached_run_matches_uncached() {
        let (a, b) = (r3(), r4());
        let mut big = XRelation::new(schema());
        for _ in 0..40 {
            for t in a.xtuples() {
                big.push(t.clone());
            }
        }
        let base = pipeline(ReductionStrategy::Full).run(&[&big, &b]).unwrap();
        let cached = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(model())
            .cache_similarities(true)
            .threads(4)
            .build()
            .run(&[&big, &b])
            .unwrap();
        assert_eq!(base.decisions.len(), cached.decisions.len());
        for (x, y) in base.decisions.iter().zip(&cached.decisions) {
            assert_eq!(x.pair, y.pair);
            // The interned path sums Eq. 5 terms in descending-probability
            // order (for pruning), so agreement is to rounding, not bitwise.
            assert!((x.similarity - y.similarity).abs() < 1e-12);
            assert_eq!(x.class, y.class);
        }
        // The cached run actually exercised the interned caches.
        let (hits, misses) = (cached.stats.cache_hits, cached.stats.cache_misses);
        assert!(hits > 0 && misses > 0, "hits {hits}, misses {misses}");
        assert!(
            cached.stats.hit_rate() > 0.5,
            "hit rate {}",
            cached.stats.hit_rate()
        );
        assert!(cached.stats.interned_values > 1);
        assert_eq!(base.stats, MatchingStats::default());
    }

    #[test]
    fn bounded_classification_matches_exact_model() {
        let (a, b) = (r3(), r4());
        let mut big = XRelation::new(schema());
        for _ in 0..40 {
            for t in a.xtuples() {
                big.push(t.clone());
            }
        }
        let phi = WeightedSum::new([0.8, 0.2]).unwrap();
        let thresholds = Thresholds::new(0.6, 0.8).unwrap();
        let exact = pipeline(ReductionStrategy::Full).run(&[&big, &b]).unwrap();
        for cache in [false, true] {
            let bounded = DedupPipeline::builder()
                .comparators(AttributeComparators::uniform(
                    &schema(),
                    NormalizedHamming::new(),
                ))
                .classify_only(phi.clone(), thresholds)
                .cache_similarities(cache)
                .threads(4)
                .build()
                .run(&[&big, &b])
                .unwrap();
            assert_eq!(exact.decisions.len(), bounded.decisions.len());
            for (x, y) in exact.decisions.iter().zip(&bounded.decisions) {
                assert_eq!(x.pair, y.pair, "cache {cache}");
                // Identical partition; the bounded similarity is only a
                // certified representative, but it must classify the same.
                assert_eq!(x.class, y.class, "cache {cache}, pair {:?}", x.pair);
                assert_eq!(thresholds.classify(y.similarity), y.class);
            }
            assert_eq!(exact.clusters, bounded.clusters, "cache {cache}");
            // Tier counters partition the candidate set, and on this
            // duplicate-heavy workload most pairs settle early.
            let s = &bounded.stats;
            assert_eq!(
                s.pairs_early_match
                    + s.pairs_early_nonmatch
                    + s.pairs_early_possible
                    + s.pairs_exhausted,
                bounded.candidates as u64,
                "cache {cache}"
            );
            assert!(
                s.pairs_early_match + s.pairs_early_nonmatch > 0,
                "cache {cache}: nothing settled early"
            );
            let (fm, fn_, fp) = s.disposal_fractions();
            assert!((0.0..=1.0).contains(&(fm + fn_ + fp)));
        }
    }

    #[test]
    fn bounded_mode_needs_no_model() {
        let (a, b) = (r3(), r4());
        let result = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .classify_only(
                WeightedSum::new([0.8, 0.2]).unwrap(),
                Thresholds::new(0.6, 0.8).unwrap(),
            )
            .build()
            .run(&[&a, &b])
            .unwrap();
        assert_eq!(result.candidates, 6);
    }

    #[test]
    #[should_panic(expected = "decision model")]
    fn missing_model_and_bounded_config_panics() {
        let _ = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .build();
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn model_and_bounded_config_together_panics() {
        let _ = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(model())
            .classify_only(
                WeightedSum::new([0.8, 0.2]).unwrap(),
                Thresholds::new(0.6, 0.8).unwrap(),
            )
            .build();
    }

    #[test]
    fn incompatible_schemas_rejected() {
        let a = r3();
        let b = XRelation::new(Schema::new(["solo"]));
        assert!(matches!(
            pipeline(ReductionStrategy::Full).run(&[&a, &b]),
            Err(ModelError::IncompatibleSchemas)
        ));
    }

    #[test]
    fn empty_inputs() {
        let result = pipeline(ReductionStrategy::Full).run(&[]).unwrap();
        assert_eq!(result.candidates, 0);
        let empty = XRelation::new(schema());
        let result = pipeline(ReductionStrategy::Full).run(&[&empty]).unwrap();
        assert_eq!(result.candidates, 0);
        assert!(result.clusters.is_empty());
    }

    #[test]
    fn preparation_feeds_matching() {
        let s = schema();
        let mut a = XRelation::new(s.clone());
        a.push(
            XTuple::builder(&s)
                .alt(1.0, ["  JOHN ", "PILOT"])
                .build()
                .unwrap(),
        );
        let mut b = XRelation::new(s.clone());
        b.push(
            XTuple::builder(&s)
                .alt(1.0, ["john", "pilot"])
                .build()
                .unwrap(),
        );
        let with_prep = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(&s, NormalizedHamming::new()))
            .model(model())
            .preparation(Preparation::standard_all(2))
            .build()
            .run(&[&a, &b])
            .unwrap();
        assert_eq!(with_prep.matches().count(), 1);
        let without = pipeline(ReductionStrategy::Full).run(&[&a, &b]).unwrap();
        assert_eq!(without.matches().count(), 0);
    }
}
