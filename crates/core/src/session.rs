//! The persistent front door: a [`DedupSession`] that owns the pipeline's
//! warm state and supports **incremental ingest**.
//!
//! The paper's pipeline is stateless per invocation, but every realistic
//! deployment re-deduplicates a mostly-unchanged corpus as new uncertain
//! tuples arrive (registries accumulating records over time). The
//! one-shot [`DedupPipeline`] throws away
//! exactly the state PRs 1–4 made reusable; a session keeps it resident:
//!
//! * the **interner pools** — the matching [`ValuePool`] and the reduction
//!   key pools inside each warm
//!   [`KeyTable`]: values and rendered key
//!   prefixes are interned once per distinct sighting, ever;
//! * the **similarity state** — sharded
//!   [`SymbolCache`](probdedup_matching::SymbolCache)s, bound-verdict
//!   caches and per-symbol
//!   [`PreparedValue`](probdedup_matching::PreparedValue) sidecars inside
//!   a long-lived
//!   [`InternedComparators`],
//!   grown append-only via `sync_pool`;
//! * the **reduction state** — per-strategy incremental structures
//!   ([`IncrementalSnm`], [`IncrementalBlocks`], …) that rank-insert new
//!   tuples into the resident sorted/bucketed order instead of re-sorting;
//! * the **decision memo** — every classified pair's
//!   [`PairDecision`], so re-runs and overlapping candidate sets never
//!   re-classify a pair.
//!
//! Two entry points:
//!
//! * [`DedupSession::run`] — full pipeline semantics with warm-state
//!   reuse. Running the **same** sources again skips preparation-state
//!   rebuilds, reduction and interning entirely (zero key renders —
//!   asserted by the property tests via
//!   [`DedupSession::key_render_count`]); running **different** sources
//!   re-keys the corpus against the warm pools, so only never-seen values
//!   render or intern.
//! * [`DedupSession::ingest`] — append one new source to the resident
//!   corpus: intern only the new tuples, grow the reduction state
//!   incrementally, classify **only** the candidate pairs that involve
//!   new rows, and merge into the resident result. The contract,
//!   property-tested in `tests/session_incremental.rs`: ingesting a
//!   corpus in *any* batch split yields the same match / possible /
//!   non-match partition as one batch [`run`](DedupSession::run) —
//!   candidate generation is regenerated over the warm state each ingest
//!   (pure integer work), so even world-dependent strategies (multi-pass
//!   over possible worlds, cluster blocking) stay split-invariant.
//!
//! What persists vs. what invalidates: pools, caches and sidecars are
//! keyed on **values**, so they survive any corpus change and any number
//! of runs/ingests. Row-indexed state (candidate pairs, decisions,
//! reduction rows) is invalidated whenever `run` sees a different corpus.
//! The configuration (schema arity via comparators, kernels, thresholds,
//! reduction strategy) is fixed at build time — change it by building a
//! new session.
//!
//! # Example
//!
//! Ingest two batches incrementally; the merged view equals a one-shot
//! batch run:
//!
//! ```
//! use std::sync::Arc;
//! use probdedup_core::pipeline::DedupPipeline;
//! use probdedup_decision::combine::WeightedSum;
//! use probdedup_decision::derive_sim::ExpectedSimilarity;
//! use probdedup_decision::threshold::Thresholds;
//! use probdedup_decision::xmodel::SimilarityBasedModel;
//! use probdedup_matching::vector::AttributeComparators;
//! use probdedup_model::relation::XRelation;
//! use probdedup_model::schema::Schema;
//! use probdedup_model::xtuple::XTuple;
//! use probdedup_textsim::NormalizedHamming;
//!
//! let schema = Schema::new(["name", "job"]);
//! let tuple = |n: &str, j: &str| XTuple::builder(&schema).alt(1.0, [n, j]).build().unwrap();
//! let mut batch1 = XRelation::new(schema.clone());
//! batch1.push(tuple("John", "pilot"));
//! let mut batch2 = XRelation::new(schema.clone());
//! batch2.push(tuple("John", "pilot"));
//! batch2.push(tuple("Tim", "mechanic"));
//!
//! let mut session = DedupPipeline::builder()
//!     .comparators(AttributeComparators::uniform(&schema, NormalizedHamming::new()))
//!     .model(Arc::new(SimilarityBasedModel::new(
//!         Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
//!         Arc::new(ExpectedSimilarity),
//!         Thresholds::new(0.6, 0.8).unwrap(),
//!     )))
//!     .cache_similarities(true)
//!     .build_session();
//!
//! session.ingest(&batch1).unwrap();
//! let step = session.ingest(&batch2).unwrap();
//! assert_eq!(step.new_rows, 1..3);
//! assert_eq!(step.new_decisions.len(), 3); // new-vs-resident + new-vs-new only
//! let merged = session.result();
//! assert_eq!(merged.clusters, vec![vec![0, 1]]); // the duplicate John
//! ```

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

use probdedup_decision::budget::BoundedTier;
use probdedup_decision::threshold::MatchClass;
use probdedup_matching::interned::{intern_tuples_into, AttributeUsage, InternedComparators};
use probdedup_matching::InternedXTuple;
use probdedup_model::condition::normalized_alternative_probs;
use probdedup_model::error::ModelError;
use probdedup_model::ids::SourceId;
use probdedup_model::intern::{KeyPool, ValuePool};
use probdedup_model::relation::XRelation;
use probdedup_model::snapshot::{
    read_key_pool, read_value_pool, read_xrelation, write_key_pool, write_value_pool,
    write_xrelation, SectionWriter, SnapshotError, SnapshotReader, SnapshotWriter,
};
use probdedup_model::util::{FxHashMap, FxHashSet};
use probdedup_model::xtuple::XTuple;
use probdedup_reduction::{
    block_multipass_with_table, multipass_snm_with_table, BlockKeying, CandidatePairs,
    IncrementalBlocks, IncrementalRankedSnm, IncrementalSnm, KeyTable, SnmKeying,
};

use crate::cluster::UnionFind;
use crate::pipeline::{
    classify_pairs_bounded, classify_pairs_exact, DedupPipeline, DedupResult, MatchingStats,
    PairDecision, PipelineConfig, ReductionStrategy,
};
use crate::snapshot::{
    atomic_write, read_file, TAG_CACHES, TAG_CONFIG, TAG_DECIDED, TAG_ENTITIES, TAG_JOURNAL,
    TAG_MATCH_POOL, TAG_OFFSETS, TAG_REDUCTION, TAG_RELATION,
};

/// A memoized entity partition of the resident corpus, keyed by the
/// clustering strategy that produced it.
///
/// Core treats the entry as opaque state: the `probdedup-entity` crate
/// computes it (its `ClusterStrategy::id` is the `strategy` byte here) and
/// reads it back through [`DedupSession::cached_entities`]. The session
/// only guarantees coherence — the cache is dropped on every corpus or
/// decision mutation ([`DedupSession::run`] / [`DedupSession::ingest`])
/// and persisted in snapshot section 9 (see [`crate::snapshot`]), so a
/// restored session serves byte-identical entities without re-clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedEntities {
    /// Strategy discriminant (the entity crate's `ClusterStrategy::id`).
    pub strategy: u8,
    /// Local-search moves the clustering performed (0 for closed-form
    /// strategies); cached so a memo hit reports the same statistics as
    /// the run that populated it.
    pub moves: u64,
    /// The full partition: every resident row in exactly one cluster,
    /// clusters ordered by smallest member, members ascending.
    pub clusters: Vec<Vec<usize>>,
}

/// What one [`DedupSession::ingest`] call did: the rows it appended, the
/// pairs it newly classified, and the size of the resident candidate set
/// afterwards. The merged view of the whole corpus is
/// [`DedupSession::result`].
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// Source id assigned to the ingested batch (its position among the
    /// session's sources; [`DedupResult::handle`] maps rows back to it).
    pub source: SourceId,
    /// Combined-relation row range of the newly appended tuples.
    pub new_rows: std::ops::Range<usize>,
    /// The pairs classified by this ingest (new-vs-resident and
    /// new-vs-new candidates), in candidate order.
    pub new_decisions: Vec<PairDecision>,
    /// Total candidate pairs over the resident corpus after this ingest.
    pub candidates: usize,
}

impl IncrementalResult {
    /// Number of rows this ingest appended.
    pub fn rows_added(&self) -> usize {
        self.new_rows.len()
    }

    /// Newly classified matches.
    pub fn matches(&self) -> impl Iterator<Item = &PairDecision> {
        self.new_decisions
            .iter()
            .filter(|d| d.class == MatchClass::Match)
    }

    /// One-line report (`+3 rows, +57 pairs classified (1 match), 210
    /// candidates resident`).
    pub fn summary(&self) -> String {
        format!(
            "+{} rows, +{} pairs classified ({} match{}), {} candidates resident",
            self.rows_added(),
            self.new_decisions.len(),
            self.matches().count(),
            if self.matches().count() == 1 {
                ""
            } else {
                "es"
            },
            self.candidates,
        )
    }
}

/// Per-strategy warm reduction state (see the module docs).
enum WarmReduction {
    /// Full comparison: no state, candidates are all pairs.
    Full,
    /// World-independent SNM (sorting alternatives / conflict-resolved):
    /// warm table + rank-sorted resident entry list.
    Snm(IncrementalSnm),
    /// Probabilistic-ranking SNM: resident ranked order.
    Ranked(IncrementalRankedSnm),
    /// Blocking (per-alternative / conflict-resolved): resident blocks.
    Blocks(IncrementalBlocks),
    /// World-dependent multi-pass SNM/blocking: world selection depends on
    /// the whole corpus, so candidates are regenerated from the warm
    /// extended table each time (sort-only — zero renders for seen values).
    Worlds(KeyTable),
    /// Cluster blocking: centroids depend on the whole corpus; fully
    /// regenerated per change.
    Stateless,
}

impl WarmReduction {
    fn for_strategy(strategy: &ReductionStrategy) -> Self {
        match strategy {
            ReductionStrategy::Full => Self::Full,
            ReductionStrategy::SortingAlternatives { spec, window } => Self::Snm(
                IncrementalSnm::new(spec.clone(), SnmKeying::PerAlternative, *window),
            ),
            ReductionStrategy::ConflictResolved {
                spec,
                window,
                strategy,
            } => Self::Snm(IncrementalSnm::new(
                spec.clone(),
                SnmKeying::Resolved(*strategy),
                *window,
            )),
            ReductionStrategy::RankedKeys {
                spec,
                window,
                ranking,
            } => Self::Ranked(IncrementalRankedSnm::new(spec.clone(), *ranking, *window)),
            ReductionStrategy::BlockingAlternatives { spec } => Self::Blocks(
                IncrementalBlocks::new(spec.clone(), BlockKeying::PerAlternative),
            ),
            ReductionStrategy::BlockingConflictResolved { spec, strategy } => Self::Blocks(
                IncrementalBlocks::new(spec.clone(), BlockKeying::Resolved(*strategy)),
            ),
            ReductionStrategy::MultipassWorlds { spec, .. }
            | ReductionStrategy::BlockingMultipass { spec, .. } => {
                Self::Worlds(KeyTable::empty(spec.clone()))
            }
            ReductionStrategy::ClusterBlocking { .. } => Self::Stateless,
        }
    }

    /// Grow the warm state with tuples `start..` of the combined corpus.
    fn ingest_rows(&mut self, new_tuples: &[XTuple], start: usize) {
        match self {
            Self::Full | Self::Stateless => {}
            Self::Snm(s) => s.ingest(new_tuples, start),
            Self::Ranked(r) => r.ingest(new_tuples, start),
            Self::Blocks(b) => b.ingest(new_tuples, start),
            Self::Worlds(table) => table.extend(new_tuples),
        }
    }

    /// Drop row-indexed state, keep the warm pools.
    fn reset_rows(&mut self) {
        match self {
            Self::Full | Self::Stateless => {}
            Self::Snm(s) => s.reset_rows(),
            Self::Ranked(r) => r.reset_rows(),
            Self::Blocks(b) => b.reset_rows(),
            Self::Worlds(table) => table.clear_rows(),
        }
    }

    /// The current full candidate set over the resident corpus — pairs
    /// and order identical to the one-shot strategy over the same tuples.
    fn current(&self, tuples: &[XTuple], strategy: &ReductionStrategy) -> CandidatePairs {
        match self {
            Self::Full => CandidatePairs::full(tuples.len()),
            Self::Snm(s) => s.current_pairs(),
            Self::Ranked(r) => r.current_pairs(),
            Self::Blocks(b) => b.current_pairs(),
            Self::Worlds(table) => match strategy {
                ReductionStrategy::MultipassWorlds {
                    window, selection, ..
                } => multipass_snm_with_table(tuples, table, *window, *selection),
                ReductionStrategy::BlockingMultipass { selection, .. } => {
                    block_multipass_with_table(tuples, table, *selection)
                }
                other => unreachable!("Worlds state for strategy {}", other.name()),
            },
            Self::Stateless => strategy.candidates(tuples),
        }
    }

    /// The warm key table, if this strategy keeps one (the snapshot
    /// persists its pools; `Full`, ranked SNM and cluster blocking carry
    /// no poolable state).
    fn table(&self) -> Option<&KeyTable> {
        match self {
            Self::Full | Self::Ranked(_) | Self::Stateless => None,
            Self::Snm(s) => Some(s.table()),
            Self::Blocks(b) => Some(b.table()),
            Self::Worlds(table) => Some(table),
        }
    }

    /// Rebuild the warm state of `strategy` around snapshot-restored key
    /// pools. `pools` must be present exactly for the table-keeping
    /// strategies ([`table`](Self::table)); a mismatch means the snapshot
    /// was written under a different configuration than the one it is
    /// being opened with.
    fn restore(
        strategy: &ReductionStrategy,
        pools: Option<(ValuePool, KeyPool)>,
    ) -> Result<Self, SnapshotError> {
        let expects_table = !matches!(
            strategy,
            ReductionStrategy::Full
                | ReductionStrategy::RankedKeys { .. }
                | ReductionStrategy::ClusterBlocking { .. }
        );
        if expects_table != pools.is_some() {
            return Err(SnapshotError::Malformed {
                context: "reduction table presence",
            });
        }
        let Some((values, keys)) = pools else {
            return Ok(Self::for_strategy(strategy));
        };
        Ok(match strategy {
            ReductionStrategy::SortingAlternatives { spec, window } => {
                Self::Snm(IncrementalSnm::with_table(
                    KeyTable::from_pools(spec.clone(), values, keys),
                    SnmKeying::PerAlternative,
                    *window,
                ))
            }
            ReductionStrategy::ConflictResolved {
                spec,
                window,
                strategy: resolution,
            } => Self::Snm(IncrementalSnm::with_table(
                KeyTable::from_pools(spec.clone(), values, keys),
                SnmKeying::Resolved(*resolution),
                *window,
            )),
            ReductionStrategy::BlockingAlternatives { spec } => {
                Self::Blocks(IncrementalBlocks::with_table(
                    KeyTable::from_pools(spec.clone(), values, keys),
                    BlockKeying::PerAlternative,
                ))
            }
            ReductionStrategy::BlockingConflictResolved {
                spec,
                strategy: resolution,
            } => Self::Blocks(IncrementalBlocks::with_table(
                KeyTable::from_pools(spec.clone(), values, keys),
                BlockKeying::Resolved(*resolution),
            )),
            ReductionStrategy::MultipassWorlds { spec, .. }
            | ReductionStrategy::BlockingMultipass { spec, .. } => {
                Self::Worlds(KeyTable::from_pools(spec.clone(), values, keys))
            }
            ReductionStrategy::Full
            | ReductionStrategy::RankedKeys { .. }
            | ReductionStrategy::ClusterBlocking { .. } => {
                unreachable!("table-less strategies return above")
            }
        })
    }

    /// Key renders the warm state has performed (0 for stateless modes).
    fn render_count(&self) -> u64 {
        match self {
            Self::Full | Self::Ranked(_) | Self::Stateless => 0,
            Self::Snm(s) => s.render_count(),
            Self::Blocks(b) => b.render_count(),
            Self::Worlds(table) => table.render_count(),
        }
    }
}

/// One memoized pair decision with its second-chance reference bit. The
/// bit is atomic so the session's **read paths** (`&self` — see
/// [`DedupSession::classify_pair`]) can mark an entry as recently used
/// without any lock.
struct MemoSlot {
    decision: PairDecision,
    referenced: AtomicBool,
}

/// The session's pair-decision memo: every classified pair keyed on
/// `(lo, hi)` row indices, optionally **bounded**.
///
/// Under long-running ingest the memo is the one piece of warm state that
/// grows with *pairs*, not values — SNM windows slide past old rows and
/// their decisions would otherwise accumulate forever. With a capacity
/// ([`DedupPipelineBuilder::decision_memo_capacity`](crate::pipeline::DedupPipelineBuilder::decision_memo_capacity))
/// the memo evicts second-chance (clock) style, the same machinery the
/// PR 6 bounded `SymbolCache` uses: a FIFO queue of pairs, each with a
/// reference bit set on every hit; the sweep clears bits on the first
/// encounter and evicts on the second. Pairs in the **current candidate
/// set are pinned** — [`DedupSession::result`] needs their decisions — so
/// the memo can transiently exceed the ceiling when the candidate set
/// itself is larger. An evicted pair that re-enters a later candidate set
/// is re-classified (deterministic, so the partition is unchanged).
struct DecisionMemo {
    map: FxHashMap<(usize, usize), MemoSlot>,
    /// Clock order: exactly one entry per memoized pair.
    queue: VecDeque<(usize, usize)>,
    evictions: u64,
}

impl DecisionMemo {
    fn new() -> Self {
        Self {
            map: FxHashMap::default(),
            queue: VecDeque::new(),
            evictions: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Look a pair up, marking it recently used (`&self`: the reference
    /// bit is atomic, so read paths share this safely).
    fn get(&self, pair: &(usize, usize)) -> Option<PairDecision> {
        self.map.get(pair).map(|slot| {
            slot.referenced.store(true, Relaxed);
            slot.decision
        })
    }

    /// Insert (or refresh) a decision. Returns `true` if the pair was
    /// already memoized.
    fn insert(&mut self, decision: PairDecision) -> bool {
        match self.map.entry(decision.pair) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                slot.decision = decision;
                slot.referenced.store(true, Relaxed);
                true
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(MemoSlot {
                    decision,
                    referenced: AtomicBool::new(false),
                });
                self.queue.push_back(decision.pair);
                false
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.queue.clear();
    }

    /// Second-chance sweep down to `capacity`, never evicting `pinned`
    /// pairs. Bounded at two full rotations: after that every unpinned
    /// entry has had its bit cleared once and been revisited once, so the
    /// memo is either at capacity or everything left is pinned.
    fn enforce(&mut self, capacity: usize, pinned: &FxHashSet<(usize, usize)>) {
        let mut scans = self.queue.len().saturating_mul(2);
        while self.map.len() > capacity && scans > 0 {
            scans -= 1;
            let Some(pair) = self.queue.pop_front() else {
                break;
            };
            let Some(slot) = self.map.get(&pair) else {
                continue;
            };
            if pinned.contains(&pair) || slot.referenced.swap(false, Relaxed) {
                self.queue.push_back(pair);
            } else {
                self.map.remove(&pair);
                self.evictions += 1;
            }
        }
    }

    /// Decisions in sorted pair order (the snapshot codec's canonical
    /// order).
    fn sorted_decisions(&self) -> Vec<PairDecision> {
        let mut entries: Vec<PairDecision> = self.map.values().map(|s| s.decision).collect();
        entries.sort_unstable_by_key(|d| d.pair);
        entries
    }

    /// Rebuild from restored decisions (sorted pair order becomes the
    /// clock order).
    fn from_decisions(decisions: Vec<PairDecision>) -> Self {
        let mut memo = Self::new();
        memo.map.reserve(decisions.len());
        memo.queue.reserve(decisions.len());
        for d in decisions {
            memo.insert(d);
        }
        memo
    }
}

/// Warm matching state: the value pool, interned tuple mirrors, the
/// long-lived comparators (caches + sidecars) and the bounded mode's
/// per-tuple conditioned weights. Crate-visible: the sharded pipeline
/// ([`crate::shard`]) builds the identical state for its one-shot run so
/// classification is byte-compatible with the session's.
pub(crate) struct WarmMatching {
    pub(crate) pool: ValuePool,
    pub(crate) usage: AttributeUsage,
    pub(crate) interned: Vec<InternedXTuple>,
    pub(crate) cmps: Option<InternedComparators>,
    pub(crate) weights: Vec<Vec<f64>>,
}

impl WarmMatching {
    pub(crate) fn new() -> Self {
        Self {
            pool: ValuePool::new(),
            usage: AttributeUsage::default(),
            interned: Vec::new(),
            cmps: None,
            weights: Vec::new(),
        }
    }

    /// Grow with newly appended (already prepared) tuples: intern only
    /// them, extend the sidecars over any new symbols, and cache their
    /// conditioned alternative weights (bounded mode).
    pub(crate) fn ingest(&mut self, config: &PipelineConfig, new_tuples: &[XTuple]) {
        if config.cache_similarities {
            self.interned.extend(intern_tuples_into(
                &mut self.pool,
                &mut self.usage,
                new_tuples,
            ));
            match &mut self.cmps {
                None => {
                    self.cmps = Some(InternedComparators::with_usage_and_capacity(
                        &self.pool,
                        &config.comparators,
                        &self.usage,
                        config.cache_capacity,
                    ))
                }
                Some(cmps) => cmps.sync_pool(&self.pool, Some(&self.usage)),
            }
        }
        if config.bounded.is_some() {
            self.weights
                .extend(new_tuples.iter().map(normalized_alternative_probs));
        }
    }

    /// Drop row-indexed state (interned mirrors, weights); the pool, the
    /// usage masks and the comparators' caches stay warm.
    fn reset_rows(&mut self) {
        self.interned.clear();
        self.weights.clear();
    }
}

/// A persistent dedup session: the pipeline's warm state plus the
/// resident corpus and its classified pairs. Build with
/// [`DedupPipelineBuilder::build_session`](crate::pipeline::DedupPipelineBuilder::build_session)
/// or [`DedupPipeline::session`](crate::pipeline::DedupPipeline::session);
/// see the module docs for the lifecycle.
pub struct DedupSession {
    config: PipelineConfig,
    /// The prepared resident relation; `None` until the first run/ingest.
    relation: Option<XRelation>,
    source_offsets: Vec<usize>,
    reduction: WarmReduction,
    matching: WarmMatching,
    /// Current candidate set over the resident corpus.
    candidates: CandidatePairs,
    /// Every pair ever classified, keyed on `(lo, hi)` row indices —
    /// optionally bounded (see [`DecisionMemo`]).
    decided: DecisionMemo,
    /// Accumulated bounded-tier counters (match, nonmatch, possible,
    /// exhausted) across the session's classifications.
    tiers: [u64; 4],
    /// Highest write-ahead-journal sequence number applied to this state
    /// (0 when the session is not journaled). Maintained by
    /// [`crate::wal::SessionJournal`], persisted in snapshot section 8 so
    /// boot-time replay can skip records a snapshot already covers.
    journal_seq: u64,
    /// Memoized entity partitions over the *current* corpus + decisions,
    /// sorted by strategy id; dropped on every mutation and persisted in
    /// snapshot section 9 (see [`CachedEntities`]).
    entities: Vec<CachedEntities>,
}

impl DedupSession {
    pub(crate) fn new(config: PipelineConfig) -> Self {
        let reduction = WarmReduction::for_strategy(&config.reduction);
        Self {
            config,
            relation: None,
            source_offsets: Vec::new(),
            reduction,
            matching: WarmMatching::new(),
            candidates: CandidatePairs::new(0),
            decided: DecisionMemo::new(),
            tiers: [0; 4],
            journal_seq: 0,
            entities: Vec::new(),
        }
    }

    /// The memoized entity partition for `strategy` (the entity crate's
    /// `ClusterStrategy::id`), if one was cached since the last mutation.
    pub fn cached_entities(&self, strategy: u8) -> Option<&CachedEntities> {
        self.entities.iter().find(|e| e.strategy == strategy)
    }

    /// Memoize an entity partition for its strategy (replacing any
    /// previous entry), so later reads — including reads after a snapshot
    /// round-trip — skip the clustering. The caller owns coherence of the
    /// partition itself; the session drops the cache on every
    /// corpus/decision mutation and persists it in snapshot section 9.
    pub fn cache_entities(&mut self, entry: CachedEntities) {
        match self
            .entities
            .binary_search_by_key(&entry.strategy, |e| e.strategy)
        {
            Ok(i) => self.entities[i] = entry,
            Err(i) => self.entities.insert(i, entry),
        }
    }

    /// Highest journal sequence number this state covers (0 when the
    /// session has never been journaled — see [`crate::wal`]).
    pub fn journal_seq(&self) -> u64 {
        self.journal_seq
    }

    /// Record that journal record `seq` is now reflected in this state
    /// (called by [`crate::wal::SessionJournal`] on replay and append).
    pub(crate) fn set_journal_seq(&mut self, seq: u64) {
        self.journal_seq = seq;
    }

    /// Number of resident combined rows.
    pub fn rows(&self) -> usize {
        self.relation.as_ref().map_or(0, XRelation::len)
    }

    /// Whether the session holds no resident rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Number of sources run/ingested into the resident corpus.
    pub fn source_count(&self) -> usize {
        self.source_offsets.len()
    }

    /// Size of the current resident candidate set.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Distinct pairs classified over the session's lifetime (a superset
    /// of the current candidate set when earlier candidates left a
    /// window after later ingests).
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    /// Total key-prefix renders the warm reduction state has performed —
    /// the reuse certificate: a warm rerun over already-seen values adds
    /// **zero** (property-tested via
    /// [`KeyPool::render_count`](probdedup_model::intern::KeyPool::render_count)).
    pub fn key_render_count(&self) -> u64 {
        self.reduction.render_count()
    }

    /// Distinct values interned into the warm matching pool (0 when the
    /// similarity cache is disabled — the plain path interns nothing).
    pub fn interned_value_count(&self) -> usize {
        if self.matching.cmps.is_some() {
            self.matching.pool.len()
        } else {
            0
        }
    }

    /// Run the full pipeline over `sources` with warm-state reuse.
    ///
    /// Same prepared corpus as the resident one → preparation-state
    /// rebuilds, reduction and interning are **skipped** (zero key
    /// renders, zero new symbols); matching re-executes every candidate
    /// through the warm caches. A different corpus resets the row-indexed
    /// state and re-keys against the warm pools — only never-seen values
    /// render or intern, and memoized similarities for recurring value
    /// pairs carry over.
    pub fn run(&mut self, sources: &[&XRelation]) -> Result<DedupResult, ModelError> {
        let Some(first) = sources.first() else {
            // "The corpus is now nothing": drop the resident rows (the
            // warm pools stay), exactly as running over an empty relation
            // would, so `result()` agrees with what this run returned.
            self.reduction.reset_rows();
            self.matching.reset_rows();
            self.decided.clear();
            self.tiers = [0; 4];
            self.candidates = CandidatePairs::new(0);
            self.relation = None;
            self.source_offsets.clear();
            self.entities.clear();
            return Ok(DedupResult::empty());
        };
        // Combine + prepare (cheap relative to matching; also what lets
        // us detect a warm rerun).
        let mut combined = XRelation::new(first.schema().clone());
        let mut offsets = Vec::with_capacity(sources.len());
        for src in sources {
            if !combined.schema().compatible_with(src.schema()) {
                return Err(ModelError::IncompatibleSchemas);
            }
            offsets.push(combined.len());
            for t in src.xtuples() {
                combined.push(t.clone());
            }
        }
        self.config.preparation.apply(&mut combined);

        let warm = self.relation.as_ref() == Some(&combined);
        if !warm {
            // A new corpus invalidates any memoized entity partition (a
            // warm rerun reproduces identical decisions, so the cache
            // stays valid there).
            self.entities.clear();
            self.reduction.reset_rows();
            self.matching.reset_rows();
            self.decided.clear();
            self.tiers = [0; 4];
            self.reduction.ingest_rows(combined.xtuples(), 0);
            self.matching.ingest(&self.config, combined.xtuples());
            self.candidates = self
                .reduction
                .current(combined.xtuples(), &self.config.reduction);
            self.relation = Some(combined);
        }
        self.source_offsets = offsets;

        // Classify every candidate (on a warm rerun the caches answer
        // almost everything) and refresh the decision memo.
        let pairs: Vec<(usize, usize)> = self.candidates.pairs().to_vec();
        let decisions = self.classify(&pairs);
        for d in &decisions {
            self.decided.insert(*d);
        }
        self.enforce_memo_capacity();
        Ok(self.snapshot(decisions))
    }

    /// Append one source to the resident corpus and classify **only** the
    /// new candidate pairs (new-vs-resident and new-vs-new).
    ///
    /// The candidate set itself is regenerated over the warm incremental
    /// state (rank-inserted SNM entries, resident blocks, extended key
    /// tables — integer work, no re-rendering and no re-sorting of
    /// resident data), which keeps every strategy **split-invariant**:
    /// after the last ingest, [`result`](Self::result) equals what one
    /// batch [`run`](Self::run) over the concatenated sources returns.
    pub fn ingest(&mut self, source: &XRelation) -> Result<IncrementalResult, ModelError> {
        self.validate_ingest(source)?;
        // New rows and new decisions: any memoized entity partition is
        // stale from here on.
        self.entities.clear();
        // Prepare the batch in isolation (preparation is per-tuple).
        let mut batch = XRelation::new(source.schema().clone());
        for t in source.xtuples() {
            batch.push(t.clone());
        }
        self.config.preparation.apply(&mut batch);

        let start = self.rows();
        let source_id = SourceId(self.source_offsets.len() as u16);
        self.source_offsets.push(start);
        let rel = self
            .relation
            .get_or_insert_with(|| XRelation::new(source.schema().clone()));
        for t in batch.xtuples() {
            rel.push(t.clone());
        }

        // Grow the warm state over the new rows only. (The expect is an
        // invariant, not input validation: `get_or_insert_with` above
        // guarantees the relation is set.)
        let rel = self.relation.as_ref().expect("resident relation set");
        let new_tuples = &rel.xtuples()[start..];
        self.reduction.ingest_rows(new_tuples, start);
        self.matching.ingest(&self.config, new_tuples);

        // Regenerate the candidate set and classify what is new.
        let candidates = self
            .reduction
            .current(rel.xtuples(), &self.config.reduction);
        let todo: Vec<(usize, usize)> = candidates
            .pairs()
            .iter()
            .copied()
            .filter(|p| self.decided.get(p).is_none())
            .collect();
        let new_decisions = self.classify(&todo);
        for d in &new_decisions {
            self.decided.insert(*d);
        }
        self.candidates = candidates;
        self.enforce_memo_capacity();
        Ok(IncrementalResult {
            source: source_id,
            new_rows: start..self.rows(),
            new_decisions,
            candidates: self.candidates.len(),
        })
    }

    /// Check that `source` would be accepted by [`ingest`](Self::ingest)
    /// without mutating anything — [`ingest`]'s only failure mode is this
    /// schema gate, so a batch that passes here cannot fail to apply.
    ///
    /// This split is what keeps the write-ahead journal sound: the serving
    /// daemon validates first, appends the batch to the journal, and only
    /// then mutates the session, so every journaled record is guaranteed
    /// to replay cleanly on recovery.
    ///
    /// [`ingest`]: Self::ingest
    pub fn validate_ingest(&self, source: &XRelation) -> Result<(), ModelError> {
        if let Some(rel) = &self.relation {
            if !rel.schema().compatible_with(source.schema()) {
                return Err(ModelError::IncompatibleSchemas);
            }
        }
        Ok(())
    }

    /// The merged resident view: every current candidate pair with its
    /// decision (in candidate order), the duplicate clusters, and the
    /// session-cumulative matching stats. Equal to what a one-shot batch
    /// run over the same corpus returns (modulo cumulative counters).
    pub fn result(&self) -> DedupResult {
        let decisions: Vec<PairDecision> = self
            .candidates
            .pairs()
            .iter()
            .map(|p| {
                // Invariant: eviction pins the current candidate set, and
                // every candidate was classified when it entered it.
                self.decided
                    .get(p)
                    .expect("current candidates are pinned in the decision memo")
            })
            .collect();
        self.snapshot(decisions)
    }

    /// Session-cumulative matching counters (cache traffic, interned
    /// values, bounded-tier disposals across every classification the
    /// session has performed).
    pub fn stats(&self) -> MatchingStats {
        let mut stats = MatchingStats {
            pairs_early_match: self.tiers[0],
            pairs_early_nonmatch: self.tiers[1],
            pairs_early_possible: self.tiers[2],
            pairs_exhausted: self.tiers[3],
            ..MatchingStats::default()
        };
        if let Some(cmps) = &self.matching.cmps {
            let (hits, misses) = cmps.cache_stats();
            stats.cache_hits = hits;
            stats.cache_misses = misses;
            stats.cached_pairs = cmps.cached_pairs();
            stats.interned_values = cmps.interned_values();
            stats.kernel_bound_certs = cmps.bound_certs();
            stats.cache_evictions = cmps.cache_evictions();
        }
        stats.memo_evictions = self.decided.evictions;
        stats
    }

    /// Classify one resident pair through **`&self`** — the session's
    /// read path, built for concurrent callers sharing one warm session
    /// (the serving front door multiplexes readers over it while ingest
    /// takes the write path).
    ///
    /// Answers from the decision memo when the pair was already
    /// classified; otherwise the pair is classified on the spot through
    /// the warm state — the sharded similarity/verdict caches use
    /// interior mutability (lock-striped shards, atomic counters), so
    /// computed kernel values are still memoized for everyone, but the
    /// decision memo and the bounded-tier counters are **not** touched
    /// (those belong to the write path). Row order is irrelevant;
    /// `None` for out-of-range rows or `i == j`.
    pub fn classify_pair(&self, i: usize, j: usize) -> Option<PairDecision> {
        let rows = self.rows();
        if i == j || i >= rows || j >= rows {
            return None;
        }
        let pair = (i.min(j), i.max(j));
        if let Some(d) = self.decided.get(&pair) {
            return Some(d);
        }
        let (mut decisions, _tiers) = self.classify_shared(&[pair]);
        decisions.pop()
    }

    /// Sweep the decision memo down to the configured capacity (no-op
    /// when unbounded or under it); the current candidate set is pinned.
    fn enforce_memo_capacity(&mut self) {
        let Some(cap) = self.config.memo_capacity else {
            return;
        };
        if self.decided.len() <= cap {
            return;
        }
        let pinned: FxHashSet<(usize, usize)> = self.candidates.pairs().iter().copied().collect();
        self.decided.enforce(cap, &pinned);
    }

    /// Classify `pairs` through the configured matching mode over the
    /// warm state, accumulating bounded-tier counters (the write path;
    /// [`classify_shared`](Self::classify_shared) is the `&self` core).
    fn classify(&mut self, pairs: &[(usize, usize)]) -> Vec<PairDecision> {
        let (decisions, tiers) = self.classify_shared(pairs);
        for (acc, t) in self.tiers.iter_mut().zip(tiers) {
            *acc += t;
        }
        decisions
    }

    /// The matching stage over the warm state through `&self`: safe for
    /// concurrent readers (the caches are sharded with interior
    /// mutability). Returns the decisions plus this call's bounded-tier
    /// counts — callers on the write path accumulate them, read paths
    /// drop them.
    fn classify_shared(&self, pairs: &[(usize, usize)]) -> (Vec<PairDecision>, [u64; 4]) {
        let rel = match &self.relation {
            Some(rel) => rel,
            None => return (Vec::new(), [0; 4]),
        };
        let tuples = rel.xtuples();
        let interned = self
            .matching
            .cmps
            .as_ref()
            .map(|c| (self.matching.interned.as_slice(), c));
        match &self.config.bounded {
            Some(cfg) => {
                let outcomes = classify_pairs_bounded(
                    cfg,
                    &self.config.comparators,
                    tuples,
                    &self.matching.weights,
                    interned,
                    pairs,
                    self.config.threads,
                );
                let mut decisions = Vec::with_capacity(outcomes.len());
                let mut tiers = [0u64; 4];
                for (d, tier) in outcomes {
                    tiers[match tier {
                        BoundedTier::EarlyMatch => 0,
                        BoundedTier::EarlyNonMatch => 1,
                        BoundedTier::EarlyPossible => 2,
                        BoundedTier::Exhausted => 3,
                    }] += 1;
                    decisions.push(d);
                }
                (decisions, tiers)
            }
            None => {
                // Invariant, not input validation: the pipeline builder
                // rejects a configuration with neither a model nor a
                // bounded classify config at build time.
                let model = self
                    .config
                    .model
                    .as_ref()
                    .expect("exact matching requires a decision model");
                let decisions = classify_pairs_exact(
                    model.as_ref(),
                    &self.config.comparators,
                    tuples,
                    interned,
                    pairs,
                    self.config.threads,
                );
                (decisions, [0; 4])
            }
        }
    }

    /// Assemble a [`DedupResult`] snapshot from `decisions` (aligned with
    /// the current candidate order).
    fn snapshot(&self, decisions: Vec<PairDecision>) -> DedupResult {
        let relation = match &self.relation {
            Some(rel) => rel.clone(),
            None => return DedupResult::empty(),
        };
        let mut uf = UnionFind::new(relation.len());
        for d in decisions.iter().filter(|d| d.class == MatchClass::Match) {
            uf.union(d.pair.0, d.pair.1);
        }
        let clusters = uf.clusters(2);
        DedupResult {
            relation,
            source_offsets: self.source_offsets.clone(),
            candidates: self.candidates.len(),
            decisions,
            clusters,
            stats: self.stats(),
        }
    }

    // -- Crash-safe persistence (see `crate::snapshot` for the layout) ----

    /// Serialize the session's warm state to the versioned snapshot format
    /// (see the [`crate::snapshot`] module docs for the section layout).
    ///
    /// The bytes capture everything value-keyed — the prepared resident
    /// relation, the matching [`ValuePool`], every memoized similarity /
    /// verdict cache entry, the reduction key pools with their prefix
    /// memos, the decision memo and the bounded-tier counters. Row-keyed
    /// mirrors are rebuilt on [`open`](Self::open) from the restored pools
    /// (pure warm work: zero key renders, zero new symbols).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut snap = SnapshotWriter::new();

        let mut w = SectionWriter::new();
        w.put_u32(self.config.comparators.arity() as u32);
        w.put_str(self.config.reduction.name());
        w.put_u8(u8::from(self.config.cache_similarities));
        w.put_u8(u8::from(self.config.bounded.is_some()));
        snap.section(TAG_CONFIG, w);

        let mut w = SectionWriter::new();
        match &self.relation {
            Some(rel) => {
                w.put_u8(1);
                write_xrelation(&mut w, rel);
            }
            None => w.put_u8(0),
        }
        snap.section(TAG_RELATION, w);

        let mut w = SectionWriter::new();
        w.put_len(self.source_offsets.len());
        for &off in &self.source_offsets {
            w.put_u64(off as u64);
        }
        snap.section(TAG_OFFSETS, w);

        let mut w = SectionWriter::new();
        if self.config.cache_similarities {
            w.put_u8(1);
            write_value_pool(&mut w, &self.matching.pool);
        } else {
            w.put_u8(0);
        }
        snap.section(TAG_MATCH_POOL, w);

        let mut w = SectionWriter::new();
        match &self.matching.cmps {
            Some(cmps) => {
                let dumps = cmps.export_cache_entries();
                w.put_u32(dumps.len() as u32);
                for (exact, bound) in &dumps {
                    for entries in [exact, bound] {
                        w.put_len(entries.len());
                        for &(key, sim) in entries {
                            w.put_u64(key);
                            w.put_f64(sim);
                        }
                    }
                }
            }
            None => w.put_u32(0),
        }
        snap.section(TAG_CACHES, w);

        let mut w = SectionWriter::new();
        match self.reduction.table() {
            Some(table) => {
                w.put_u8(1);
                write_value_pool(&mut w, table.value_pool());
                write_key_pool(&mut w, table.key_pool());
            }
            None => w.put_u8(0),
        }
        snap.section(TAG_REDUCTION, w);

        let mut w = SectionWriter::new();
        let entries = self.decided.sorted_decisions();
        w.put_len(entries.len());
        for d in &entries {
            w.put_u64(d.pair.0 as u64);
            w.put_u64(d.pair.1 as u64);
            w.put_f64(d.similarity);
            w.put_u8(class_to_byte(d.class));
        }
        for t in self.tiers {
            w.put_u64(t);
        }
        snap.section(TAG_DECIDED, w);

        let mut w = SectionWriter::new();
        w.put_u64(self.journal_seq);
        snap.section(TAG_JOURNAL, w);

        let mut w = SectionWriter::new();
        w.put_u32(self.entities.len() as u32);
        for e in &self.entities {
            w.put_u8(e.strategy);
            w.put_u64(e.moves);
            w.put_len(e.clusters.len());
            for cluster in &e.clusters {
                w.put_len(cluster.len());
                for &row in cluster {
                    w.put_u64(row as u64);
                }
            }
        }
        snap.section(TAG_ENTITIES, w);

        snap.finish()
    }

    /// Durably persist the session to `path` via the atomic write-temp →
    /// fsync → rename protocol ([`crate::snapshot::atomic_write`]): a crash
    /// at any point leaves either the previous snapshot or the new one at
    /// `path`, never a torn file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        atomic_write(path.as_ref(), &self.to_snapshot_bytes())
    }

    /// Re-open a snapshot written by [`save`](Self::save) as a warm session
    /// of `pipeline`.
    ///
    /// The pipeline's configuration must agree with the one the snapshot
    /// was written under (schema arity, reduction strategy, similarity
    /// cache and bounded-mode flags) — a disagreement is reported as
    /// [`SnapshotError::ConfigMismatch`]. Every corruption mode
    /// (truncation, bit flips, version or checksum disagreement,
    /// out-of-range symbols, inconsistent cross-section state) is a typed
    /// [`SnapshotError`]; the session is never partially constructed. The
    /// reopened session answers an identical-corpus [`run`](Self::run)
    /// entirely from warm state: **zero** key renders and no re-keying —
    /// property-tested in `tests/snapshot.rs`.
    pub fn open(path: impl AsRef<Path>, pipeline: &DedupPipeline) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&read_file(path.as_ref())?, pipeline)
    }

    /// [`open`](Self::open) over in-memory bytes (the fault-injection
    /// harness corrupts buffers without touching disk).
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        pipeline: &DedupPipeline,
    ) -> Result<Self, SnapshotError> {
        let mut session = pipeline.session();
        session.restore_from_bytes(bytes)?;
        Ok(session)
    }

    /// Decode, validate and adopt a snapshot. All parsing and cross-section
    /// validation happens into locals first; `self` is only mutated once
    /// the whole snapshot has been proven coherent.
    fn restore_from_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut reader = SnapshotReader::open(bytes)?;

        // Section 1: configuration fingerprint.
        let mut r = reader.section(TAG_CONFIG, "config section")?;
        let arity = r.take_u32()? as usize;
        let strategy_name = r.take_str()?.to_string();
        let cached = read_bool(&mut r, "config cache flag")?;
        let bounded = read_bool(&mut r, "config bounded flag")?;
        r.finish()?;
        let own_arity = self.config.comparators.arity();
        if arity != own_arity {
            return Err(SnapshotError::ConfigMismatch {
                detail: format!("snapshot arity {arity}, pipeline arity {own_arity}"),
            });
        }
        if strategy_name != self.config.reduction.name() {
            return Err(SnapshotError::ConfigMismatch {
                detail: format!(
                    "snapshot reduction '{strategy_name}', pipeline reduction '{}'",
                    self.config.reduction.name()
                ),
            });
        }
        if cached != self.config.cache_similarities {
            return Err(SnapshotError::ConfigMismatch {
                detail: format!(
                    "snapshot similarity cache {}, pipeline {}",
                    on_off(cached),
                    on_off(self.config.cache_similarities)
                ),
            });
        }
        if bounded != self.config.bounded.is_some() {
            return Err(SnapshotError::ConfigMismatch {
                detail: format!(
                    "snapshot bounded mode {}, pipeline {}",
                    on_off(bounded),
                    on_off(self.config.bounded.is_some())
                ),
            });
        }

        // Section 2: the prepared resident relation.
        let mut r = reader.section(TAG_RELATION, "relation section")?;
        let relation = if read_bool(&mut r, "relation presence flag")? {
            Some(read_xrelation(&mut r)?)
        } else {
            None
        };
        r.finish()?;
        if let Some(rel) = &relation {
            if rel.schema().arity() != own_arity {
                return Err(SnapshotError::ConfigMismatch {
                    detail: format!(
                        "snapshot relation arity {}, pipeline arity {own_arity}",
                        rel.schema().arity()
                    ),
                });
            }
        }
        let rows = relation.as_ref().map_or(0, XRelation::len);

        // Section 3: source offsets.
        let mut r = reader.section(TAG_OFFSETS, "offsets section")?;
        let n = r.take_len(8)?;
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            let off = r.take_u64()?;
            let off = usize::try_from(off).ok().filter(|&o| o <= rows).ok_or(
                SnapshotError::Malformed {
                    context: "source offset out of range",
                },
            )?;
            if offsets.last().is_some_and(|&prev| off < prev) {
                return Err(SnapshotError::Malformed {
                    context: "source offsets not monotone",
                });
            }
            offsets.push(off);
        }
        r.finish()?;
        let offsets_coherent = match relation {
            Some(_) => offsets.first() == Some(&0),
            None => offsets.is_empty(),
        };
        if !offsets_coherent {
            return Err(SnapshotError::Malformed {
                context: "source offsets disagree with relation",
            });
        }

        // Section 4: the matching value pool.
        let mut r = reader.section(TAG_MATCH_POOL, "match pool section")?;
        let pool_present = read_bool(&mut r, "match pool flag")?;
        if pool_present != self.config.cache_similarities {
            return Err(SnapshotError::Malformed {
                context: "match pool flag disagrees with config",
            });
        }
        let match_pool = if pool_present {
            Some(read_value_pool(&mut r)?)
        } else {
            None
        };
        r.finish()?;

        // Section 5: memoized similarity / verdict cache entries.
        let mut r = reader.section(TAG_CACHES, "caches section")?;
        let n_attr = r.take_u32()? as usize;
        if n_attr != 0 && n_attr != own_arity {
            return Err(SnapshotError::Malformed {
                context: "cache dump attribute count",
            });
        }
        if n_attr != 0 && !self.config.cache_similarities {
            return Err(SnapshotError::Malformed {
                context: "cache dump without similarity cache",
            });
        }
        let mut cache_dumps = Vec::with_capacity(n_attr);
        for _ in 0..n_attr {
            let mut both = [Vec::new(), Vec::new()];
            for entries in &mut both {
                let n = r.take_len(16)?;
                entries.reserve(n);
                for _ in 0..n {
                    let key = r.take_u64()?;
                    let sim = r.take_f64()?;
                    if !sim.is_finite() {
                        return Err(SnapshotError::Malformed {
                            context: "non-finite cached similarity",
                        });
                    }
                    entries.push((key, sim));
                }
            }
            let [exact, bound] = both;
            cache_dumps.push((exact, bound));
        }
        r.finish()?;

        // Section 6: warm reduction key pools.
        let mut r = reader.section(TAG_REDUCTION, "reduction section")?;
        let reduction_pools = if read_bool(&mut r, "reduction table flag")? {
            let values = read_value_pool(&mut r)?;
            let keys = read_key_pool(&mut r, values.len())?;
            Some((values, keys))
        } else {
            None
        };
        r.finish()?;

        // Section 7: the decision memo and tier counters.
        let mut r = reader.section(TAG_DECIDED, "decisions section")?;
        let n = r.take_len(25)?;
        let mut decided: FxHashMap<(usize, usize), PairDecision> = FxHashMap::default();
        decided.reserve(n);
        for _ in 0..n {
            let i = usize::try_from(r.take_u64()?).map_err(|_| SnapshotError::Malformed {
                context: "decision row index",
            })?;
            let j = usize::try_from(r.take_u64()?).map_err(|_| SnapshotError::Malformed {
                context: "decision row index",
            })?;
            if i >= j || j >= rows {
                return Err(SnapshotError::Malformed {
                    context: "decision pair out of range",
                });
            }
            let similarity = r.take_f64()?;
            if !similarity.is_finite() {
                return Err(SnapshotError::Malformed {
                    context: "non-finite decision similarity",
                });
            }
            let class = class_from_byte(r.take_u8()?)?;
            let decision = PairDecision {
                pair: (i, j),
                similarity,
                class,
            };
            if decided.insert((i, j), decision).is_some() {
                return Err(SnapshotError::Malformed {
                    context: "duplicate decision pair",
                });
            }
        }
        let mut tiers = [0u64; 4];
        for t in &mut tiers {
            *t = r.take_u64()?;
        }
        r.finish()?;

        // Section 8 (optional, trailing): the highest journal sequence
        // number this snapshot covers. Pre-WAL files end at section 7 and
        // read as 0 — the reason the format version did not change.
        let journal_seq = if reader.has_more() {
            let mut r = reader.section(TAG_JOURNAL, "journal section")?;
            let seq = r.take_u64()?;
            r.finish()?;
            seq
        } else {
            0
        };

        // Section 9 (optional, trailing): memoized entity partitions.
        // Files from before entity resolution end at section 8 (or 7) and
        // read as "no cached entities".
        let entities = if reader.has_more() {
            let mut r = reader.section(TAG_ENTITIES, "entities section")?;
            let count = r.take_u32()? as usize;
            let mut entries: Vec<CachedEntities> = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                let strategy = r.take_u8()?;
                if entries.last().is_some_and(|p| p.strategy >= strategy) {
                    return Err(SnapshotError::Malformed {
                        context: "entity strategies not strictly increasing",
                    });
                }
                let moves = r.take_u64()?;
                let cluster_count = r.take_len(1)?;
                let mut clusters: Vec<Vec<usize>> = Vec::with_capacity(cluster_count);
                let mut seen = vec![false; rows];
                let mut covered = 0usize;
                for _ in 0..cluster_count {
                    let len = r.take_len(8)?;
                    if len == 0 {
                        return Err(SnapshotError::Malformed {
                            context: "empty entity cluster",
                        });
                    }
                    let mut cluster = Vec::with_capacity(len);
                    for _ in 0..len {
                        let row = usize::try_from(r.take_u64()?)
                            .ok()
                            .filter(|&m| m < rows)
                            .ok_or(SnapshotError::Malformed {
                                context: "entity cluster row out of range",
                            })?;
                        if cluster.last().is_some_and(|&prev| prev >= row) {
                            return Err(SnapshotError::Malformed {
                                context: "entity cluster members not ascending",
                            });
                        }
                        if seen[row] {
                            return Err(SnapshotError::Malformed {
                                context: "entity row in two clusters",
                            });
                        }
                        seen[row] = true;
                        covered += 1;
                        cluster.push(row);
                    }
                    if clusters.last().is_some_and(|prev| prev[0] >= cluster[0]) {
                        return Err(SnapshotError::Malformed {
                            context: "entity clusters not in smallest-member order",
                        });
                    }
                    clusters.push(cluster);
                }
                if covered != rows {
                    return Err(SnapshotError::Malformed {
                        context: "entity partition does not cover the corpus",
                    });
                }
                entries.push(CachedEntities {
                    strategy,
                    moves,
                    clusters,
                });
            }
            r.finish()?;
            entries
        } else {
            Vec::new()
        };
        reader.finish()?;

        // Rebuild the row-keyed warm state from the restored pools —
        // fresh locals first, so a failure never leaves `self` half-set.
        let mut reduction = WarmReduction::restore(&self.config.reduction, reduction_pools)?;
        let mut matching = WarmMatching::new();
        if let Some(pool) = match_pool {
            matching.pool = pool;
        }
        let mut candidates = CandidatePairs::new(0);
        if let Some(rel) = &relation {
            // Re-key and re-intern the resident tuples through the warm
            // pools: every prefix render and symbol lookup is a memo hit.
            reduction.ingest_rows(rel.xtuples(), 0);
            matching.ingest(&self.config, rel.xtuples());
            candidates = reduction.current(rel.xtuples(), &self.config.reduction);
            // The memo must cover the regenerated candidate set, or
            // `result()` on the reopened session would have to classify —
            // a coherent snapshot always decided its own candidates.
            for pair in candidates.pairs() {
                if !decided.contains_key(pair) {
                    return Err(SnapshotError::Malformed {
                        context: "decision memo incomplete",
                    });
                }
            }
        }
        if !cache_dumps.is_empty() {
            match &matching.cmps {
                Some(cmps) => cmps.import_cache_entries(&cache_dumps)?,
                None => {
                    // Warm caches but no resident tuples (a session saved
                    // after its corpus was emptied): materialize the
                    // comparators directly over the restored pool.
                    let cmps = InternedComparators::with_capacity(
                        &matching.pool,
                        &self.config.comparators,
                        self.config.cache_capacity,
                    );
                    cmps.import_cache_entries(&cache_dumps)?;
                    matching.cmps = Some(cmps);
                }
            }
        }

        self.relation = relation;
        self.source_offsets = offsets;
        self.reduction = reduction;
        self.matching = matching;
        self.candidates = candidates;
        // Sorted pair order becomes the restored memo's clock order; a
        // configured capacity ceiling is re-applied on the next
        // run/ingest (the restored candidate set stays pinned).
        let mut sorted: Vec<PairDecision> = decided.into_values().collect();
        sorted.sort_unstable_by_key(|d| d.pair);
        self.decided = DecisionMemo::from_decisions(sorted);
        self.tiers = tiers;
        self.journal_seq = journal_seq;
        self.entities = entities;
        Ok(())
    }
}

/// Snapshot byte for a [`MatchClass`] (`Match`=0, `Possible`=1,
/// `NonMatch`=2 — part of format version 1).
fn class_to_byte(class: MatchClass) -> u8 {
    match class {
        MatchClass::Match => 0,
        MatchClass::Possible => 1,
        MatchClass::NonMatch => 2,
    }
}

/// Inverse of [`class_to_byte`]; any other byte is a corrupt snapshot.
fn class_from_byte(byte: u8) -> Result<MatchClass, SnapshotError> {
    match byte {
        0 => Ok(MatchClass::Match),
        1 => Ok(MatchClass::Possible),
        2 => Ok(MatchClass::NonMatch),
        _ => Err(SnapshotError::Malformed {
            context: "decision class byte",
        }),
    }
}

/// Read a strict boolean byte (anything but 0/1 is corruption, not data).
fn read_bool(
    r: &mut probdedup_model::snapshot::SectionReader<'_>,
    context: &'static str,
) -> Result<bool, SnapshotError> {
    match r.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(SnapshotError::Malformed { context }),
    }
}

/// `"on"` / `"off"` for config-mismatch messages.
fn on_off(flag: bool) -> &'static str {
    if flag {
        "on"
    } else {
        "off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DedupPipeline;
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::{SimilarityBasedModel, XTupleDecisionModel};
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_model::xtuple::XTuple;
    use probdedup_reduction::{KeySpec, WorldSelection};
    use probdedup_textsim::NormalizedHamming;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn model() -> Arc<dyn XTupleDecisionModel> {
        Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.6, 0.8).unwrap(),
        ))
    }

    fn rel(rows: &[(&str, &str)]) -> XRelation {
        let s = schema();
        let mut r = XRelation::new(s.clone());
        for (n, j) in rows {
            r.push(XTuple::builder(&s).alt(0.9, [*n, *j]).build().unwrap());
        }
        r
    }

    fn builder(reduction: ReductionStrategy, cache: bool) -> DedupPipeline {
        DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(model())
            .reduction(reduction)
            .cache_similarities(cache)
            .build()
    }

    fn corpus() -> Vec<XRelation> {
        vec![
            rel(&[("John", "pilot"), ("Tim", "mechanic")]),
            rel(&[("John", "pilot"), ("Tom", "mechanic")]),
            rel(&[("Sean", "pilot"), ("Tim", "mechanic")]),
        ]
    }

    fn strategies() -> Vec<ReductionStrategy> {
        let spec = KeySpec::paper_example(0, 1);
        vec![
            ReductionStrategy::Full,
            ReductionStrategy::SortingAlternatives {
                spec: spec.clone(),
                window: 3,
            },
            ReductionStrategy::BlockingAlternatives { spec: spec.clone() },
            ReductionStrategy::MultipassWorlds {
                spec,
                window: 2,
                selection: WorldSelection::TopK(2),
            },
        ]
    }

    #[test]
    fn ingest_in_batches_equals_one_shot_run() {
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        for strategy in strategies() {
            for cache in [false, true] {
                let one_shot = builder(strategy.clone(), cache).run(&refs).unwrap();
                let mut session = builder(strategy.clone(), cache).session();
                for src in &sources {
                    session.ingest(src).unwrap();
                }
                let merged = session.result();
                assert_eq!(
                    one_shot.decisions.len(),
                    merged.decisions.len(),
                    "{} cache {cache}",
                    strategy.name()
                );
                let by_pair: FxHashMap<(usize, usize), MatchClass> =
                    merged.decisions.iter().map(|d| (d.pair, d.class)).collect();
                for d in &one_shot.decisions {
                    assert_eq!(by_pair.get(&d.pair), Some(&d.class), "{}", strategy.name());
                }
                assert_eq!(one_shot.clusters, merged.clusters, "{}", strategy.name());
                assert_eq!(one_shot.source_offsets, merged.source_offsets);
            }
        }
    }

    #[test]
    fn warm_rerun_skips_reduction_and_interning() {
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        let spec = KeySpec::paper_example(0, 1);
        let mut session = builder(
            ReductionStrategy::SortingAlternatives { spec, window: 3 },
            true,
        )
        .session();
        let first = session.run(&refs).unwrap();
        let renders = session.key_render_count();
        let interned = session.interned_value_count();
        assert!(renders > 0 && interned > 0);
        let again = session.run(&refs).unwrap();
        assert_eq!(session.key_render_count(), renders, "warm rerun rendered");
        assert_eq!(session.interned_value_count(), interned);
        assert_eq!(first.decisions, again.decisions);
        assert_eq!(first.clusters, again.clusters);
        // The rerun answered from the warm cache.
        assert!(session.stats().cache_hits > first.stats.cache_hits);
    }

    #[test]
    fn run_with_changed_corpus_resets_rows_but_keeps_pools() {
        let sources = corpus();
        let spec = KeySpec::paper_example(0, 1);
        let mut session = builder(ReductionStrategy::BlockingAlternatives { spec }, true).session();
        session.run(&[&sources[0], &sources[1]]).unwrap();
        let renders = session.key_render_count();
        // A different corpus drawn from the same value domain: re-keying
        // renders nothing new.
        let shrunk = session.run(&[&sources[0]]).unwrap();
        assert_eq!(session.key_render_count(), renders);
        assert_eq!(shrunk.relation.len(), 2);
        // And the one-shot answer over the changed corpus still holds.
        let fresh = builder(
            ReductionStrategy::BlockingAlternatives {
                spec: KeySpec::paper_example(0, 1),
            },
            true,
        )
        .run(&[&sources[0]])
        .unwrap();
        assert_eq!(fresh.decisions, shrunk.decisions);
    }

    #[test]
    fn ingest_reports_new_rows_and_decisions() {
        let sources = corpus();
        let mut session = builder(ReductionStrategy::Full, false).session();
        let r1 = session.ingest(&sources[0]).unwrap();
        assert_eq!(r1.source, SourceId(0));
        assert_eq!(r1.new_rows, 0..2);
        assert_eq!(r1.new_decisions.len(), 1); // the within-batch pair
        let r2 = session.ingest(&sources[1]).unwrap();
        assert_eq!(r2.source, SourceId(1));
        assert_eq!(r2.new_rows, 2..4);
        // 4 rows: 6 total pairs, 1 already decided.
        assert_eq!(r2.new_decisions.len(), 5);
        assert_eq!(r2.candidates, 6);
        assert_eq!(session.rows(), 4);
        assert_eq!(session.source_count(), 2);
        assert!(r2.summary().contains("+2 rows"));
        // Every decision the report lists is resident.
        let merged = session.result();
        assert_eq!(merged.candidates, 6);
        assert!(merged.summary().contains("pairs compared"));
    }

    #[test]
    fn ingest_rejects_incompatible_schema() {
        let mut session = builder(ReductionStrategy::Full, false).session();
        session.ingest(&corpus()[0]).unwrap();
        let other = XRelation::new(Schema::new(["solo"]));
        assert!(matches!(
            session.ingest(&other),
            Err(ModelError::IncompatibleSchemas)
        ));
    }

    #[test]
    fn empty_session_views() {
        let session = builder(ReductionStrategy::Full, false).session();
        assert!(session.is_empty());
        assert_eq!(session.candidate_count(), 0);
        assert_eq!(session.decided_count(), 0);
        let snap = session.result();
        assert_eq!(snap.candidates, 0);
        assert!(snap.decisions.is_empty());
    }

    fn temp_snap(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "probdedup-session-snap-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("session.snap")
    }

    #[test]
    fn snapshot_roundtrip_restores_partition_and_memos() {
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        for strategy in strategies() {
            let pipeline = builder(strategy.clone(), true);
            let mut session = pipeline.session();
            let before = session.run(&refs).unwrap();
            let renders = session.key_render_count();
            let path = temp_snap(strategy.name());
            session.save(&path).unwrap();

            let mut reopened = DedupSession::open(&path, &pipeline).unwrap();
            assert_eq!(reopened.rows(), session.rows(), "{}", strategy.name());
            assert_eq!(reopened.decided_count(), session.decided_count());
            assert_eq!(
                reopened.key_render_count(),
                renders,
                "open re-rendered keys ({})",
                strategy.name()
            );
            // The resident view needs no classification at all.
            let restored = reopened.result();
            assert_eq!(before.decisions, restored.decisions, "{}", strategy.name());
            assert_eq!(before.clusters, restored.clusters);
            assert_eq!(before.source_offsets, restored.source_offsets);
            // An identical-corpus rerun stays fully warm: zero key renders.
            let again = reopened.run(&refs).unwrap();
            assert_eq!(reopened.key_render_count(), renders, "{}", strategy.name());
            assert_eq!(before.decisions, again.decisions);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn open_rejects_mismatched_configuration() {
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        let spec = KeySpec::paper_example(0, 1);
        let pipeline = builder(
            ReductionStrategy::SortingAlternatives {
                spec: spec.clone(),
                window: 3,
            },
            true,
        );
        let mut session = pipeline.session();
        session.run(&refs).unwrap();
        let bytes = session.to_snapshot_bytes();

        // Different reduction strategy.
        let other = builder(ReductionStrategy::BlockingAlternatives { spec }, true);
        let err = DedupSession::from_snapshot_bytes(&bytes, &other)
            .err()
            .expect("mismatched strategy must be rejected");
        assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
        // Similarity cache off vs. the snapshot's on.
        let uncached = builder(
            ReductionStrategy::SortingAlternatives {
                spec: KeySpec::paper_example(0, 1),
                window: 3,
            },
            false,
        );
        let err = DedupSession::from_snapshot_bytes(&bytes, &uncached)
            .err()
            .expect("cache-flag mismatch must be rejected");
        assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
    }

    #[test]
    fn empty_session_snapshot_roundtrips() {
        let pipeline = builder(ReductionStrategy::Full, true);
        let session = pipeline.session();
        let bytes = session.to_snapshot_bytes();
        let reopened = DedupSession::from_snapshot_bytes(&bytes, &pipeline).unwrap();
        assert!(reopened.is_empty());
        assert_eq!(reopened.decided_count(), 0);
    }

    #[test]
    fn session_is_send_and_sync() {
        // The serving front door shares one warm session across reader
        // threads (RwLock<DedupSession>); this is the compile-time
        // certificate that everything inside is thread-safe.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DedupSession>();
    }

    #[test]
    fn classify_pair_reads_match_write_path() {
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        for cache in [false, true] {
            let mut session = builder(ReductionStrategy::Full, cache).session();
            let result = session.run(&refs).unwrap();
            let session = &session; // read path only from here on
            for d in &result.decisions {
                let q = session.classify_pair(d.pair.0, d.pair.1).unwrap();
                assert_eq!(q.class, d.class, "cache {cache}");
                assert!((q.similarity - d.similarity).abs() < 1e-12);
                // Row order is irrelevant.
                let swapped = session.classify_pair(d.pair.1, d.pair.0).unwrap();
                assert_eq!(swapped.pair, d.pair);
            }
            assert!(session.classify_pair(0, 0).is_none());
            assert!(session.classify_pair(0, session.rows()).is_none());
        }
    }

    #[test]
    fn classify_pair_computes_undecided_pairs_readonly() {
        // A windowed strategy leaves some pairs out of the candidate set;
        // the read path classifies them on the fly without mutating the
        // memo, and agrees with what full comparison decides.
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        let spec = KeySpec::paper_example(0, 1);
        let mut session = builder(
            ReductionStrategy::SortingAlternatives { spec, window: 2 },
            true,
        )
        .session();
        session.run(&refs).unwrap();
        let full = builder(ReductionStrategy::Full, false).run(&refs).unwrap();
        let decided_before = session.decided_count();
        for d in &full.decisions {
            let q = session.classify_pair(d.pair.0, d.pair.1).unwrap();
            assert_eq!(q.class, d.class, "pair {:?}", d.pair);
        }
        assert_eq!(
            session.decided_count(),
            decided_before,
            "read path must not grow the decision memo"
        );
    }

    #[test]
    fn bounded_memo_evicts_but_partition_survives() {
        let sources = corpus();
        let spec = KeySpec::paper_example(0, 1);
        let strategy = ReductionStrategy::SortingAlternatives { spec, window: 2 };
        let unbounded = {
            let mut s = builder(strategy.clone(), true).session();
            for src in &sources {
                s.ingest(src).unwrap();
            }
            s.result()
        };
        let mut bounded = DedupPipeline::builder()
            .comparators(AttributeComparators::uniform(
                &schema(),
                NormalizedHamming::new(),
            ))
            .model(model())
            .reduction(strategy)
            .cache_similarities(true)
            .decision_memo_capacity(Some(2))
            .build_session();
        for src in &sources {
            bounded.ingest(src).unwrap();
        }
        let merged = bounded.result();
        assert_eq!(unbounded.decisions, merged.decisions);
        assert_eq!(unbounded.clusters, merged.clusters);
        // The ceiling is honoured up to pinned current candidates.
        assert!(bounded.decided_count() <= bounded.candidate_count().max(2));
        let stats = bounded.stats();
        assert!(
            stats.memo_evictions > 0,
            "expected evictions with capacity 2, memo holds {}",
            bounded.decided_count()
        );
    }

    #[test]
    fn run_over_no_sources_resets_resident_rows() {
        let sources = corpus();
        let mut session = builder(ReductionStrategy::Full, true).session();
        session.ingest(&sources[0]).unwrap();
        assert!(!session.is_empty());
        // Running over zero sources empties the corpus — the return value
        // and the resident view must agree on that.
        let empty = session.run(&[]).unwrap();
        assert_eq!(empty.candidates, 0);
        assert!(session.is_empty());
        assert_eq!(session.candidate_count(), 0);
        assert_eq!(session.source_count(), 0);
        assert!(session.result().decisions.is_empty());
        // The warm pools survive, and the session remains usable.
        let again = session.ingest(&sources[0]).unwrap();
        assert_eq!(again.new_rows, 0..2);
    }

    /// A cached partition over `rows` rows, one entry per strategy id.
    fn entities_for(session: &DedupSession, strategy: u8) -> CachedEntities {
        CachedEntities {
            strategy,
            moves: u64::from(strategy) * 3,
            clusters: (0..session.rows()).map(|r| vec![r]).collect(),
        }
    }

    #[test]
    fn entity_cache_is_sorted_replaced_and_invalidated() {
        let sources = corpus();
        let mut session = builder(ReductionStrategy::Full, true).session();
        session.ingest(&sources[0]).unwrap();

        // Out-of-order inserts land sorted by strategy id; re-inserting
        // a strategy replaces its entry in place.
        session.cache_entities(entities_for(&session, 2));
        session.cache_entities(entities_for(&session, 0));
        assert!(session.cached_entities(1).is_none());
        assert_eq!(session.cached_entities(2).unwrap().moves, 6);
        let replacement = CachedEntities {
            moves: 99,
            ..entities_for(&session, 2)
        };
        session.cache_entities(replacement);
        assert_eq!(session.cached_entities(2).unwrap().moves, 99);
        assert_eq!(session.cached_entities(0).unwrap().moves, 0);

        // New rows invalidate the memo.
        session.ingest(&sources[1]).unwrap();
        assert!(session.cached_entities(0).is_none());
        assert!(session.cached_entities(2).is_none());
    }

    #[test]
    fn entity_cache_survives_snapshot_and_warm_rerun() {
        let sources = corpus();
        let refs: Vec<&XRelation> = sources.iter().collect();
        let pipe = builder(ReductionStrategy::Full, true);
        let mut session = pipe.session();
        session.run(&refs).unwrap();
        session.cache_entities(entities_for(&session, 1));

        let bytes = session.to_snapshot_bytes();
        let mut reopened = DedupSession::from_snapshot_bytes(&bytes, &pipe).unwrap();
        assert_eq!(
            reopened.cached_entities(1),
            session.cached_entities(1),
            "section 9 must round-trip the cache"
        );

        // A warm rerun over the identical corpus reproduces identical
        // decisions, so the memo legitimately survives...
        reopened.run(&refs).unwrap();
        assert!(reopened.cached_entities(1).is_some());
        // ...but a different corpus must clear it.
        reopened.run(&refs[..1]).unwrap();
        assert!(reopened.cached_entities(1).is_none());
    }
}
