//! Crash-safe session persistence: the file-level layout and atomic-write
//! protocol of [`DedupSession::save`](crate::session::DedupSession::save) /
//! [`open`](crate::session::DedupSession::open).
//!
//! The byte-level primitives (framed checksummed sections, model codecs)
//! live in [`probdedup_model::snapshot`]; this module owns what is
//! *session-specific*: which sections a session file contains, in which
//! order, and how the file reaches disk without a crash window.
//!
//! # Section layout (format version 1)
//!
//! Sections appear in exactly this order, each framed as
//! `tag · len · payload · checksum` by the model-layer writer:
//!
//! | tag | section    | contents                                              |
//! |-----|------------|-------------------------------------------------------|
//! | 1   | config     | arity, reduction-strategy name, cache + bounded flags |
//! | 2   | relation   | the **prepared** resident [`XRelation`] (or absent)   |
//! | 3   | offsets    | per-source row offsets into the combined relation     |
//! | 4   | match pool | the matching [`ValuePool`] in dense symbol order      |
//! | 5   | caches     | per-attribute similarity + verdict memo entries       |
//! | 6   | reduction  | the warm [`KeyTable`] pools (values, keys, memos)     |
//! | 7   | decisions  | every classified pair + the bounded-tier counters     |
//! | 8   | journal    | *(optional)* highest applied WAL sequence number      |
//! | 9   | entities   | *(optional)* cached entity partitions per strategy    |
//!
//! Section 8 couples a snapshot to the write-ahead ingest journal
//! ([`crate::wal`]): it records the journal sequence number the snapshot's
//! state already covers, so boot-time replay can skip journal records that
//! are baked into the snapshot (the crash window between snapshot rename
//! and journal compaction would otherwise double-apply them). The section
//! is *trailing and optional* — files written before it existed (including
//! the committed golden v1 fixture) read as "journal seq 0" and keep
//! loading, which is why the format version did not change.
//!
//! Section 9 persists the session's memoized entity partitions (the
//! [`CachedEntities`](crate::session::CachedEntities) entries the
//! `probdedup-entity` crate computes): one entry per clustering strategy,
//! each a full partition of the resident rows plus the local-search move
//! count that produced it. Like section 8 it is trailing and optional —
//! older files simply read as "no cached entities" and the resolution is
//! recomputed on demand, so format version 1 still holds.
//!
//! The relation is stored *post-preparation*, so opening never re-runs the
//! preparation plan; pools are stored in dense symbol order, so re-interning
//! on open reproduces identical symbols and every memoized cache entry keyed
//! on them stays valid. Everything row-indexed but cheap (interned tuple
//! mirrors, `PreparedValue` sidecars, candidate pairs, conditioned
//! alternative weights) is **rebuilt** from the restored pools on open —
//! pure warm-pool work with zero key renders, verified by the round-trip
//! property tests.
//!
//! # Atomic-write protocol
//!
//! [`atomic_write`] never exposes a torn file:
//!
//! 1. serialize to `<path>.tmp` (truncating any stale temp file),
//! 2. `fsync` the temp file,
//! 3. `rename` it over `<path>` (atomic on POSIX),
//! 4. `fsync` the containing directory so the rename itself is durable.
//!
//! A crash before step 3 leaves the previous snapshot untouched; a crash
//! after leaves the new one fully in place. There is no intermediate state
//! in which `<path>` holds a partial file — property-tested by the
//! kill-point suite in `tests/snapshot.rs`, which stops the protocol at
//! every step and asserts the last good snapshot still loads.
//!
//! [`XRelation`]: probdedup_model::relation::XRelation
//! [`ValuePool`]: probdedup_model::intern::ValuePool
//! [`KeyTable`]: probdedup_reduction::KeyTable

use std::fs;
use std::io::Write;
use std::path::Path;

use probdedup_model::snapshot::SnapshotError;

/// Section tag: configuration fingerprint.
pub const TAG_CONFIG: u32 = 1;
/// Section tag: prepared resident relation.
pub const TAG_RELATION: u32 = 2;
/// Section tag: source row offsets.
pub const TAG_OFFSETS: u32 = 3;
/// Section tag: matching value pool.
pub const TAG_MATCH_POOL: u32 = 4;
/// Section tag: per-attribute similarity/verdict cache entries.
pub const TAG_CACHES: u32 = 5;
/// Section tag: warm reduction key-table pools.
pub const TAG_REDUCTION: u32 = 6;
/// Section tag: classified pairs and tier counters.
pub const TAG_DECIDED: u32 = 7;
/// Section tag (optional, trailing): highest applied write-ahead-journal
/// sequence number (see [`crate::wal`]). Absent in pre-WAL snapshots.
pub const TAG_JOURNAL: u32 = 8;
/// Section tag (optional, trailing): cached entity partitions per
/// clustering strategy (see
/// [`CachedEntities`](crate::session::CachedEntities)). Absent in files
/// written before entity resolution existed.
pub const TAG_ENTITIES: u32 = 9;

/// The temp-file path the atomic protocol stages into: `<path>.tmp` in the
/// same directory (same filesystem, so the rename is atomic).
pub fn staging_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Durably replace `path` with `bytes` via write-temp → fsync → rename →
/// fsync-dir (see the module docs). On any error the previous contents of
/// `path`, if any, are left untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = staging_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable: fsync the containing directory.
    // Directories cannot be fsynced on all platforms; failure to open one
    // for syncing is not a correctness problem (the data is already
    // renamed), so only propagate errors from an actual sync attempt.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok(())
}

/// Read a snapshot file fully into memory (decoding is done by the
/// model-layer [`SnapshotReader`](probdedup_model::snapshot::SnapshotReader)
/// over the returned bytes).
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    Ok(fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("probdedup-core-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = temp_dir("atomic");
        let path = dir.join("state.snap");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!staging_path(&path).exists(), "temp file left behind");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_failure_preserves_previous_file() {
        let dir = temp_dir("fail");
        let path = dir.join("state.snap");
        atomic_write(&path, b"good").unwrap();
        // Writing into a missing directory fails before any rename.
        let bad = dir.join("missing-subdir").join("state.snap");
        assert!(atomic_write(&bad, b"broken").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"good");
        let _ = fs::remove_dir_all(&dir);
    }
}
