//! Certain keys via conflict resolution (Section V-A.2 / Fig. 10).
//!
//! Before key creation, each x-tuple's alternatives are unified to a single
//! one using a conflict-resolution strategy known from data fusion; the
//! paper's example is the *metadata-based deciding strategy* "take the most
//! probable alternative". Choosing most-probable alternatives is equivalent
//! to keying the most probable world, so the resulting matchings are always
//! a **subset** of the multi-pass matchings — proven as a test here and as
//! a property test in `tests/properties.rs`.

use probdedup_model::intern::{KeyPool, KeySymbol, ValuePool};
use probdedup_model::xtuple::XTuple;

use crate::key::KeySpec;
use crate::pairs::CandidatePairs;
use crate::snm::{sorted_neighborhood, sorted_neighborhood_interned, InternedSnmEntry, SnmEntry};

/// Strategy unifying an x-tuple's alternatives into one certain key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictResolution {
    /// The paper's metadata-based deciding strategy: the most probable
    /// alternative (ties toward the earlier alternative), with uncertain
    /// values inside it resolved to their most probable rendered prefix.
    #[default]
    MostProbableAlternative,
    /// The most probable *key* (marginalizing over alternatives) — can
    /// differ when several alternatives share a key (e.g. t41 in Fig. 13).
    MostProbableKey,
    /// The first alternative as listed (a naive baseline).
    FirstAlternative,
}

/// Index of the most probable alternative (ties toward the earlier one).
fn most_probable_alternative(t: &XTuple) -> usize {
    t.alternatives()
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| {
            a.probability()
                .partial_cmp(&b.probability())
                .expect("finite probabilities")
                .then(ib.cmp(ia)) // tie → earlier alternative
        })
        .map(|(i, _)| i)
        .expect("x-tuples are non-empty")
}

/// The certain key of one x-tuple under a strategy (string path — the
/// oracle the interned [`resolve_key_symbol`] is tested against).
pub fn resolve_key(t: &XTuple, spec: &KeySpec, strategy: ConflictResolution) -> String {
    match strategy {
        ConflictResolution::MostProbableAlternative => {
            spec.alternative_keys(t)[most_probable_alternative(t)].clone()
        }
        ConflictResolution::MostProbableKey => spec.most_probable_key(t),
        ConflictResolution::FirstAlternative => spec.alternative_keys(t)[0].clone(),
    }
}

/// Interned twin of [`resolve_key`]: the certain key as a [`KeySymbol`],
/// rendering each distinct value prefix at most once across all tuples.
pub fn resolve_key_symbol(
    t: &XTuple,
    spec: &KeySpec,
    strategy: ConflictResolution,
    values: &mut ValuePool,
    keys: &mut KeyPool,
) -> KeySymbol {
    match strategy {
        ConflictResolution::MostProbableAlternative => {
            spec.alternative_key_symbols(t, values, keys)[most_probable_alternative(t)]
        }
        ConflictResolution::MostProbableKey => spec.most_probable_key_symbol(t, values, keys),
        ConflictResolution::FirstAlternative => spec.alternative_key_symbols(t, values, keys)[0],
    }
}

/// The conflict-resolved key symbols of all tuples plus the issuing pool —
/// the shared front half of interned conflict-resolved SNM and blocking.
pub(crate) fn resolved_key_symbols(
    tuples: &[XTuple],
    spec: &KeySpec,
    strategy: ConflictResolution,
) -> (KeyPool, Vec<KeySymbol>) {
    let mut values = ValuePool::new();
    let mut keys = KeyPool::new();
    let syms = tuples
        .iter()
        .map(|t| resolve_key_symbol(t, spec, strategy, &mut values, &mut keys))
        .collect();
    (keys, syms)
}

/// SNM over conflict-resolved certain keys: one key per x-tuple, one pass.
/// Returns the pairs and the sorted key list (Fig. 10 prints it).
///
/// Keys are interned ([`resolve_key_symbol`]) and the sort runs over
/// lexicographic ranks; the strings in the returned [`SnmEntry`] list are
/// resolved from the pool for display only.
pub fn conflict_resolved_snm(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    strategy: ConflictResolution,
) -> (CandidatePairs, Vec<SnmEntry>) {
    let (keys, syms) = resolved_key_symbols(tuples, spec, strategy);
    let ranks = keys.lexicographic_ranks();
    let entries: Vec<InternedSnmEntry> = syms
        .iter()
        .enumerate()
        .map(|(i, &k)| InternedSnmEntry::new(k, i))
        .collect();
    let (pairs, order) = sorted_neighborhood_interned(entries, &ranks, window, tuples.len(), false);
    let order = order
        .iter()
        .map(|e| SnmEntry::new(keys.resolve(e.key), e.tuple))
        .collect();
    (pairs, order)
}

/// String-path oracle of [`conflict_resolved_snm`] (property-tested to be
/// identical; renders one key per tuple per call).
pub fn conflict_resolved_snm_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    strategy: ConflictResolution,
) -> (CandidatePairs, Vec<SnmEntry>) {
    let entries: Vec<SnmEntry> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| SnmEntry::new(resolve_key(t, spec, strategy), i))
        .collect();
    sorted_neighborhood(entries, window, tuples.len(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multipass::{multipass_snm, WorldSelection};
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// ℛ34 with indices 0=t31, 1=t32, 2=t41, 3=t42, 4=t43.
    fn r34() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ]
    }

    fn spec() -> KeySpec {
        KeySpec::paper_example(0, 1)
    }

    /// Fig. 10: sorting by most-probable-alternative keys yields
    /// Jimba(t32), Johpi(t31), Johpi(t41), Seapi(t43), Tomme(t42).
    #[test]
    fn fig10_sorted_keys() {
        let tuples = r34();
        let (_, order) = conflict_resolved_snm(
            &tuples,
            &spec(),
            2,
            ConflictResolution::MostProbableAlternative,
        );
        let keys: Vec<(&str, usize)> = order.iter().map(|e| (e.key.as_str(), e.tuple)).collect();
        assert_eq!(
            keys,
            vec![
                ("Jimba", 1), // t32
                ("Johpi", 0), // t31
                ("Johpi", 2), // t41
                ("Seapi", 4), // t43
                ("Tomme", 3), // t42
            ]
        );
    }

    /// The paper's subset claim: most-probable-alternative matchings are
    /// always contained in the all-worlds multi-pass matchings.
    #[test]
    fn fig10_matchings_subset_of_multipass() {
        let tuples = r34();
        let (resolved, _) = conflict_resolved_snm(
            &tuples,
            &spec(),
            2,
            ConflictResolution::MostProbableAlternative,
        );
        let multipass = multipass_snm(&tuples, &spec(), 2, WorldSelection::All { limit: 10_000 });
        for &(i, j) in resolved.pairs() {
            assert!(
                multipass.pairs.contains(i, j),
                "({i},{j}) missing from multipass"
            );
        }
        assert!(resolved.len() <= multipass.pairs.len());
    }

    #[test]
    fn most_probable_key_strategy_uses_marginal() {
        // t41: alternatives John/pilot (0.8) and Johan/pianist (0.2), but
        // both render "Johpi": all strategies agree here. Build a case where
        // they differ: alternatives (Abc, x) 0.4, (Abd, y) 0.35, (Abc, x) is
        // most probable alternative; but keys "Abx"? Use split-vote keys.
        let s = Schema::new(["name", "job"]);
        let t = XTuple::builder(&s)
            .alt(0.35, ["Xaa", "pp"])
            .alt(0.33, ["Yaa", "qq"])
            .alt(0.32, ["Yaa", "qq"])
            .build()
            .unwrap();
        // Most probable alternative: #0 → "Xaapp". Most probable key:
        // "Yaaqq" with mass 0.65.
        assert_eq!(
            resolve_key(&t, &spec(), ConflictResolution::MostProbableAlternative),
            "Xaapp"
        );
        assert_eq!(
            resolve_key(&t, &spec(), ConflictResolution::MostProbableKey),
            "Yaaqq"
        );
        assert_eq!(
            resolve_key(&t, &spec(), ConflictResolution::FirstAlternative),
            "Xaapp"
        );
    }

    #[test]
    fn tie_breaks_toward_earlier_alternative() {
        let s = Schema::new(["name", "job"]);
        let t = XTuple::builder(&s)
            .alt(0.5, ["Bbb", "yy"])
            .alt(0.5, ["Aaa", "xx"])
            .build()
            .unwrap();
        assert_eq!(
            resolve_key(&t, &spec(), ConflictResolution::MostProbableAlternative),
            "Bbbyy"
        );
    }
}
