//! Blocking adapted to probabilistic data (Section V-B / Fig. 14).
//!
//! Blocking partitions tuples by key value and compares only within blocks.
//! Adaptations mirror the SNM ones: multi-pass over chosen worlds,
//! conflict-resolved certain keys, and **per-alternative block insertion**
//! (an x-tuple joins one block per alternative key; duplicate entries of
//! the same tuple within one block are removed, and repeated matchings
//! across blocks are suppressed — Fig. 14's walkthrough).
//!
//! **Multi-pass** blocking assembles blocks in a `BlockMap` keyed on
//! **interned key symbols** ([`KeySymbol`]): the
//! [`KeyTable`](crate::key::KeyTable) built up front renders each
//! distinct `(value, prefix)` once, and every insertion afterwards is a
//! single integer-keyed hash probe — no key string is rendered, hashed or
//! compared on the hot path, and no collision chain is needed because
//! symbol equality *is* key equality. **Single-pass** blocking
//! ([`block_alternatives`]) instead takes the hash-dedup'd direct path:
//! with every key seen essentially once, interner maintenance never
//! amortizes, so each rendered key is resolved to its block with one
//! string-keyed hash probe and no pools are built at all. Per-block
//! membership stays O(1) either way via a small-vec scan that spills into
//! an `FxHashSet` past a handful of members. The sorted
//! `BTreeMap<String, Vec<usize>>` inspection view that figures and tests
//! consume is materialized once at the end, and candidate pairs are
//! emitted in sorted-key order, so results remain byte-for-byte identical
//! across all implementations — the string-keyed originals are retained
//! below as the property-tested oracles ([`block_alternatives_oracle`]
//! and friends).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::PathBuf;

use probdedup_model::intern::{KeyPool, KeySymbol};
use probdedup_model::util::{FxHashMap, FxHashSet};
use probdedup_model::xtuple::XTuple;

use crate::conflict::{resolve_key, resolved_key_symbols, ConflictResolution};
use crate::key::KeySpec;
use crate::multipass::{select_worlds, WorldSelection};
use crate::pairs::CandidatePairs;

/// Result of a blocking run: candidate pairs plus the blocks themselves
/// (deterministically ordered by key) for inspection and figures.
#[derive(Debug, Clone)]
pub struct BlockingResult {
    /// Candidate pairs (each matching executed once).
    pub pairs: CandidatePairs,
    /// Block key → member tuple indices (first-insertion order, deduped).
    pub blocks: BTreeMap<String, Vec<usize>>,
}

/// Members beyond which a block's membership test spills from a linear
/// small-vec scan into a hash set.
const SPILL_THRESHOLD: usize = 16;

/// One block under construction: members in first-insertion order and
/// (for large blocks) a spill set for O(1) membership tests. Shared with
/// the incremental blocking state of [`crate::incremental`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Block {
    members: Vec<usize>,
    spill: Option<FxHashSet<usize>>,
}

impl Block {
    /// The members in first-insertion order.
    pub(crate) fn members(&self) -> &[usize] {
        &self.members
    }

    /// Insert `tuple` unless already present ("if an x-tuple is allocated
    /// to a single block for multiple times, except for one, all entries of
    /// this tuple are removed" — Fig. 14). O(1): small blocks scan ≤
    /// [`SPILL_THRESHOLD`] entries, larger ones consult the spill set.
    pub(crate) fn insert(&mut self, tuple: usize) {
        match &mut self.spill {
            Some(set) => {
                if set.insert(tuple) {
                    self.members.push(tuple);
                }
            }
            None => {
                if !self.members.contains(&tuple) {
                    self.members.push(tuple);
                    if self.members.len() > SPILL_THRESHOLD {
                        self.spill = Some(self.members.iter().copied().collect());
                    }
                }
            }
        }
    }
}

/// Symbol-keyed block accumulator (see the module docs). Insertion is one
/// integer hash probe; key strings only appear when a sorted inspection
/// view is materialized.
#[derive(Debug, Clone, Default)]
struct BlockMap {
    slots: probdedup_model::util::FxHashMap<KeySymbol, Block>,
}

impl BlockMap {
    /// Insert `tuple` into the block of `key` (creating the block on first
    /// sight of the key symbol).
    fn insert(&mut self, key: KeySymbol, tuple: usize) {
        self.slots.entry(key).or_default().insert(tuple);
    }

    /// The blocks in deterministic sorted-key order (resolving symbols for
    /// the comparison only — no rendering, no allocation).
    fn sorted_blocks(self, keys: &KeyPool) -> Vec<(KeySymbol, Block)> {
        let mut blocks: Vec<(KeySymbol, Block)> = self.slots.into_iter().collect();
        blocks.sort_unstable_by(|a, b| keys.resolve(a.0).cmp(keys.resolve(b.0)));
        blocks
    }

    /// Emit all within-block pairs in sorted-key order (matching the
    /// string implementation's output order exactly) without building the
    /// string view.
    fn finish_pairs(self, keys: &KeyPool, pairs: &mut CandidatePairs) {
        for (_, block) in self.sorted_blocks(keys) {
            emit_block_pairs(&block.members, pairs);
        }
    }

    /// Emit pairs **and** materialize the sorted `BTreeMap` inspection
    /// view (one `String` per distinct block key).
    fn finish(self, keys: &KeyPool, pairs: &mut CandidatePairs) -> BTreeMap<String, Vec<usize>> {
        let mut sorted = BTreeMap::new();
        for (key, block) in self.sorted_blocks(keys) {
            emit_block_pairs(&block.members, pairs);
            sorted.insert(keys.resolve(key).to_string(), block.members);
        }
        sorted
    }
}

pub(crate) fn emit_block_pairs(members: &[usize], pairs: &mut CandidatePairs) {
    for (a, &i) in members.iter().enumerate() {
        for &j in members.iter().skip(a + 1) {
            pairs.insert(i, j);
        }
    }
}

// ----------------------------------------------------------------------
// Out-of-core block scanning: the bounded-memory twin of `BlockMap`.
// ----------------------------------------------------------------------

/// Configuration of an out-of-core block scan.
#[derive(Debug, Clone)]
pub struct BlockScanConfig {
    /// Resident members per block before the buffer is flushed to that
    /// block's spill file. Clamped to ≥ 1; blocks that never reach the
    /// ceiling never touch disk.
    pub spill_members: usize,
    /// Directory for spill files; `None` uses [`std::env::temp_dir`].
    pub dir: Option<PathBuf>,
}

impl Default for BlockScanConfig {
    fn default() -> Self {
        Self {
            // 64 Ki members ≈ 512 KiB resident per oversized block.
            spill_members: 1 << 16,
            dir: None,
        }
    }
}

/// What a block scan did — asserted by the spill-path tests and surfaced
/// by the sharded bench mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockScanStats {
    /// Distinct blocks seen.
    pub blocks: usize,
    /// Blocks whose membership spilled to disk at least once.
    pub spilled_blocks: usize,
    /// Total bytes written to spill files.
    pub spilled_bytes: u64,
}

/// A spill-file path removed on `Drop` (success, abandonment and unwind).
#[derive(Debug)]
struct TempPath(PathBuf);

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// One block under construction with a bounded resident buffer.
///
/// Every production insertion stream feeds a block **nondecreasing tuple
/// indices with only adjacent repeats**: the outer loops walk rows in
/// ascending order, and the only way a row recurs in one block is via
/// several alternatives of that same row (consecutive in the block's
/// stream, since no other row intervenes). Dedup therefore only needs the
/// last kept member — O(1) state — instead of `Block`'s full membership
/// set; the invariant is debug-asserted.
#[derive(Debug)]
struct SpillBlock {
    members: Vec<usize>,
    last: Option<usize>,
    // (path guard, writer, records already spilled)
    spill: Option<(TempPath, BufWriter<File>, usize)>,
}

impl SpillBlock {
    fn new() -> Self {
        Self {
            members: Vec::new(),
            last: None,
            spill: None,
        }
    }

    fn insert(
        &mut self,
        tuple: usize,
        spill_members: usize,
        dir: &std::path::Path,
        stats: &mut BlockScanStats,
    ) -> io::Result<()> {
        if self.last == Some(tuple) {
            return Ok(());
        }
        debug_assert!(
            self.last.is_none_or(|l| tuple > l),
            "block insertion streams must be nondecreasing (got {tuple} after {:?})",
            self.last
        );
        self.last = Some(tuple);
        self.members.push(tuple);
        if self.members.len() >= spill_members {
            self.flush(dir, stats)?;
        }
        Ok(())
    }

    fn flush(&mut self, dir: &std::path::Path, stats: &mut BlockScanStats) -> io::Result<()> {
        if self.spill.is_none() {
            let path = spill_block_path(dir);
            let file = File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            stats.spilled_blocks += 1;
            self.spill = Some((TempPath(path), BufWriter::new(file), 0));
        }
        let (_, writer, count) = self.spill.as_mut().expect("just ensured");
        for &m in &self.members {
            writer.write_all(&(m as u64).to_le_bytes())?;
        }
        *count += self.members.len();
        stats.spilled_bytes += (self.members.len() * 8) as u64;
        self.members.clear();
        Ok(())
    }

    /// All members in insertion order (spilled prefix + resident tail),
    /// consuming the block. The spill file is removed when the returned
    /// guard drops.
    fn drain(self) -> io::Result<Vec<usize>> {
        let Some((guard, writer, count)) = self.spill else {
            return Ok(self.members);
        };
        let mut file = writer
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        file.flush()?;
        file.rewind()?;
        let mut members = Vec::with_capacity(count + self.members.len());
        let mut reader = BufReader::new(file);
        let mut rec = [0u8; 8];
        for _ in 0..count {
            reader.read_exact(&mut rec)?;
            members.push(u64::from_le_bytes(rec) as usize);
        }
        members.extend_from_slice(&self.members);
        drop(guard);
        Ok(members)
    }
}

static SPILL_BLOCK_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn spill_block_path(dir: &std::path::Path) -> PathBuf {
    let n = SPILL_BLOCK_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("probdedup-block-{}-{n}.spill", std::process::id()))
}

/// Bounded-memory block accumulator: the out-of-core twin of `BlockMap`.
/// Oversized blocks spill their membership to per-block temp files
/// (8-byte little-endian tuple indices); [`finish_scan`](Self::finish_scan)
/// walks the blocks in exactly the sorted-key order the in-memory
/// implementations emit, materializing one block's members at a time.
#[derive(Debug)]
pub struct SpillableBlockMap {
    slots: FxHashMap<KeySymbol, SpillBlock>,
    spill_members: usize,
    dir: PathBuf,
    stats: BlockScanStats,
}

impl SpillableBlockMap {
    /// A new accumulator under `cfg`'s ceilings.
    pub fn new(cfg: &BlockScanConfig) -> Self {
        Self {
            slots: FxHashMap::default(),
            spill_members: cfg.spill_members.max(1),
            dir: cfg.dir.clone().unwrap_or_else(std::env::temp_dir),
            stats: BlockScanStats::default(),
        }
    }

    /// Insert `tuple` into the block of `key`. Insertion streams per block
    /// must be nondecreasing in `tuple` (see `SpillBlock`) — true of
    /// every row-major production scan.
    pub fn insert(&mut self, key: KeySymbol, tuple: usize) -> io::Result<()> {
        self.slots
            .entry(key)
            .or_insert_with(SpillBlock::new)
            .insert(tuple, self.spill_members, &self.dir, &mut self.stats)
    }

    /// Visit every block as `(key string, members)` in sorted-key order —
    /// byte-identical to the order `BlockMap::finish_pairs` emits — and
    /// return the scan stats. Spill files are removed as each block is
    /// visited.
    pub fn finish_scan(
        mut self,
        keys: &KeyPool,
        f: &mut impl FnMut(&str, &[usize]),
    ) -> io::Result<BlockScanStats> {
        self.stats.blocks = self.slots.len();
        let mut blocks: Vec<(KeySymbol, SpillBlock)> = self.slots.drain().collect();
        blocks.sort_unstable_by(|a, b| keys.resolve(a.0).cmp(keys.resolve(b.0)));
        for (key, block) in blocks {
            let members = block.drain()?;
            f(keys.resolve(key), &members);
        }
        Ok(self.stats)
    }
}

/// Out-of-core scan of the per-alternative blocks (Fig. 14): visits every
/// block in exactly [`block_alternatives`]' sorted-key order under
/// `cfg`'s memory ceiling. The candidate pairs of the blocking run are
/// recovered by emitting each visited block's within-block pairs in order.
pub fn scan_alternative_blocks(
    tuples: &[XTuple],
    spec: &KeySpec,
    cfg: &BlockScanConfig,
    f: &mut impl FnMut(&str, &[usize]),
) -> io::Result<BlockScanStats> {
    let mut values = probdedup_model::intern::ValuePool::new();
    let mut keys = KeyPool::new();
    let mut map = SpillableBlockMap::new(cfg);
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_key_symbols(t, &mut values, &mut keys) {
            map.insert(key, i)?;
        }
    }
    map.finish_scan(&keys, f)
}

/// Out-of-core scan of the conflict-resolved blocks: visits every block in
/// exactly [`block_conflict_resolved`]' sorted-key order.
pub fn scan_conflict_resolved_blocks(
    tuples: &[XTuple],
    spec: &KeySpec,
    strategy: ConflictResolution,
    cfg: &BlockScanConfig,
    f: &mut impl FnMut(&str, &[usize]),
) -> io::Result<BlockScanStats> {
    let (keys, syms) = resolved_key_symbols(tuples, spec, strategy);
    let mut map = SpillableBlockMap::new(cfg);
    for (i, &key) in syms.iter().enumerate() {
        map.insert(key, i)?;
    }
    map.finish_scan(&keys, f)
}

/// Out-of-core scan of the multi-pass blocks: for each selected world in
/// [`block_multipass`]' world order, visits that world's blocks in
/// sorted-key order — the exact per-world emission order of the in-memory
/// path. Stats are summed across worlds.
pub fn scan_multipass_blocks(
    tuples: &[XTuple],
    spec: &KeySpec,
    selection: WorldSelection,
    cfg: &BlockScanConfig,
    f: &mut impl FnMut(&str, &[usize]),
) -> io::Result<BlockScanStats> {
    let worlds = select_worlds(tuples, selection);
    let table = spec.key_table(tuples);
    let mut total = BlockScanStats::default();
    for world in worlds {
        let mut map = SpillableBlockMap::new(cfg);
        for i in 0..table.len() {
            let alt = world.choices[i].expect("full world");
            map.insert(table.alternative_keys(i)[alt], i)?;
        }
        let stats = map.finish_scan(table.key_pool(), f)?;
        total.blocks += stats.blocks;
        total.spilled_blocks += stats.spilled_blocks;
        total.spilled_bytes += stats.spilled_bytes;
    }
    Ok(total)
}

/// Blocking with **alternative key values** (Fig. 14): one block entry per
/// alternative key of each x-tuple.
///
/// This is the **hash-dedup'd single-pass path**: each alternative's key is
/// rendered exactly once and resolved to its block with **one** hash probe
/// on the key string — no `ValuePool`/`KeyPool` maintenance at all. On a
/// single pass over mostly-distinct keys the interning layer never
/// amortizes (it was measured ~2.4× slower than direct rendering on the
/// typo-heavy synthetic workload; the `blocking-alt` bench mode tracks
/// this), so single-pass blocking bypasses it. Multi-pass blocking keeps
/// the interned [`KeyTable`](crate::key::KeyTable) — there the table is
/// reused across passes and pays for itself. The interner-backed
/// single-pass variant is retained as [`block_alternatives_interned`];
/// all three implementations produce byte-identical results
/// (property-tested in `tests/interned_oracle.rs`).
pub fn block_alternatives(tuples: &[XTuple], spec: &KeySpec) -> BlockingResult {
    // Key string → index into `blocks`, one probe per alternative.
    let mut ids: FxHashMap<String, usize> = FxHashMap::default();
    ids.reserve(tuples.len());
    let mut blocks: Vec<Block> = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_keys(t) {
            let next = blocks.len();
            let id = *ids.entry(key).or_insert(next);
            if id == next {
                blocks.push(Block::default());
            }
            blocks[id].insert(i);
        }
    }
    // Deterministic sorted-key order, matching the other implementations;
    // the `BTreeMap` view is bulk-built from the sorted entries (std
    // detects the presorted run) instead of paying per-key tree descents.
    let mut order: Vec<(String, Vec<usize>)> = ids
        .into_iter()
        .map(|(key, id)| (key, std::mem::take(&mut blocks[id].members)))
        .collect();
    order.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut pairs = CandidatePairs::new(tuples.len());
    for (_, members) in &order {
        emit_block_pairs(members, &mut pairs);
    }
    BlockingResult {
        pairs,
        blocks: order.into_iter().collect(),
    }
}

/// The interner-backed single-pass variant of [`block_alternatives`]:
/// keys interned on the fly ([`KeySpec::alternative_key_symbols`]),
/// insertion a symbol-keyed hash probe. Identical output; kept for the
/// oracle tests and as the building block the multi-pass path composes.
pub fn block_alternatives_interned(tuples: &[XTuple], spec: &KeySpec) -> BlockingResult {
    let mut values = probdedup_model::intern::ValuePool::new();
    let mut keys = KeyPool::new();
    let mut map = BlockMap::default();
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_key_symbols(t, &mut values, &mut keys) {
            map.insert(key, i);
        }
    }
    let mut pairs = CandidatePairs::new(tuples.len());
    let blocks = map.finish(&keys, &mut pairs);
    BlockingResult { pairs, blocks }
}

/// Blocking over **conflict-resolved certain keys** (Section V-B: "conflict
/// resolution strategies can be used to produce certain key values; in this
/// case, blocking can be performed as usual").
pub fn block_conflict_resolved(
    tuples: &[XTuple],
    spec: &KeySpec,
    strategy: ConflictResolution,
) -> BlockingResult {
    let (keys, syms) = resolved_key_symbols(tuples, spec, strategy);
    let mut map = BlockMap::default();
    for (i, &key) in syms.iter().enumerate() {
        map.insert(key, i);
    }
    let mut pairs = CandidatePairs::new(tuples.len());
    let blocks = map.finish(&keys, &mut pairs);
    BlockingResult { pairs, blocks }
}

/// Multi-pass blocking over selected possible worlds ("a multi-pass over
/// some finely chosen worlds seems to be an option"). Pairs are unioned;
/// the returned blocks are those of the **first** pass (for inspection).
///
/// The [`KeyTable`](crate::key::KeyTable) is built once; every pass after
/// the first is pure integer work (bucket by symbol, emit pairs) — zero
/// key renders, which the reduction property tests assert via
/// [`KeyTable::render_count`](crate::key::KeyTable::render_count).
pub fn block_multipass(
    tuples: &[XTuple],
    spec: &KeySpec,
    selection: WorldSelection,
) -> BlockingResult {
    let worlds = select_worlds(tuples, selection);
    // Per-alternative keys are world-independent; intern them once instead
    // of once per (world, tuple).
    let table = spec.key_table(tuples);
    let mut pairs = CandidatePairs::new(tuples.len());
    let mut first_blocks: Option<BTreeMap<String, Vec<usize>>> = None;
    for world in worlds {
        let mut map = BlockMap::default();
        for i in 0..table.len() {
            let alt = world.choices[i].expect("full world");
            map.insert(table.alternative_keys(i)[alt], i);
        }
        if first_blocks.is_none() {
            first_blocks = Some(map.finish(table.key_pool(), &mut pairs));
        } else {
            map.finish_pairs(table.key_pool(), &mut pairs);
        }
    }
    BlockingResult {
        pairs,
        blocks: first_blocks.unwrap_or_default(),
    }
}

/// [`block_multipass`] with a caller-supplied [`KeyTable`](crate::key::KeyTable)
/// and without the first-pass inspection view — the lean path persistent
/// sessions use: the table (extended incrementally as tuples arrive)
/// already holds every alternative's key symbol, so each pass is pure
/// integer bucketing plus one sorted emission. Pair output is identical to
/// [`block_multipass`] (per-world sorted-key order).
pub fn block_multipass_with_table(
    tuples: &[XTuple],
    table: &crate::key::KeyTable,
    selection: WorldSelection,
) -> CandidatePairs {
    debug_assert_eq!(tuples.len(), table.len(), "table must cover the corpus");
    let worlds = select_worlds(tuples, selection);
    let mut pairs = CandidatePairs::new(tuples.len());
    for world in worlds {
        let mut map = BlockMap::default();
        for i in 0..table.len() {
            let alt = world.choices[i].expect("full world");
            map.insert(table.alternative_keys(i)[alt], i);
        }
        map.finish_pairs(table.key_pool(), &mut pairs);
    }
    pairs
}

// ----------------------------------------------------------------------
// String-key oracles: the rendering path the interned implementation is
// property-tested against (`tests/properties.rs` asserts identical pair
// sets and identical block views on generated schemas).
// ----------------------------------------------------------------------

/// String-path oracle of [`block_alternatives`]: renders one key `String`
/// per alternative per call and buckets in a `BTreeMap`. Kept for
/// property-testing the interned path, not for production use.
pub fn block_alternatives_oracle(tuples: &[XTuple], spec: &KeySpec) -> BlockingResult {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_keys(t) {
            oracle_insert(&mut map, key, i);
        }
    }
    oracle_finish(map, tuples.len())
}

/// String-path oracle of [`block_conflict_resolved`].
pub fn block_conflict_resolved_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    strategy: ConflictResolution,
) -> BlockingResult {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, t) in tuples.iter().enumerate() {
        oracle_insert(&mut map, resolve_key(t, spec, strategy), i);
    }
    oracle_finish(map, tuples.len())
}

/// String-path oracle of [`block_multipass`]. Like the pre-interning
/// production implementation, the per-alternative key strings are rendered
/// **once** before the world loop (they are world-independent); what each
/// pass still pays — and the interned path removes — is the per-(world,
/// tuple) `String` clone plus string hashing/comparison in the block map.
pub fn block_multipass_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    selection: WorldSelection,
) -> BlockingResult {
    let worlds = select_worlds(tuples, selection);
    let alt_keys: Vec<Vec<String>> = tuples.iter().map(|t| spec.alternative_keys(t)).collect();
    let mut pairs = CandidatePairs::new(tuples.len());
    let mut first_blocks: Option<BTreeMap<String, Vec<usize>>> = None;
    for world in worlds {
        let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, keys) in alt_keys.iter().enumerate() {
            let alt = world.choices[i].expect("full world");
            oracle_insert(&mut map, keys[alt].clone(), i);
        }
        for members in map.values() {
            emit_block_pairs(members, &mut pairs);
        }
        if first_blocks.is_none() {
            first_blocks = Some(map);
        }
    }
    BlockingResult {
        pairs,
        blocks: first_blocks.unwrap_or_default(),
    }
}

fn oracle_insert(map: &mut BTreeMap<String, Vec<usize>>, key: String, tuple: usize) {
    let members = map.entry(key).or_default();
    if !members.contains(&tuple) {
        members.push(tuple);
    }
}

fn oracle_finish(map: BTreeMap<String, Vec<usize>>, n: usize) -> BlockingResult {
    let mut pairs = CandidatePairs::new(n);
    for members in map.values() {
        emit_block_pairs(members, &mut pairs);
    }
    BlockingResult { pairs, blocks: map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// ℛ34 with indices 0=t31, 1=t32, 2=t41, 3=t42, 4=t43.
    fn r34() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ]
    }

    /// Fig. 14's blocking key: first character of the name + first
    /// character of the job.
    fn fig14_spec() -> KeySpec {
        KeySpec::new(vec![
            crate::key::KeyPart::prefix(0, 1),
            crate::key::KeyPart::prefix(1, 1),
        ])
    }

    /// Fig. 14 on ℛ34: per-alternative blocking partitions the tuples into
    /// blocks JP, JM(=Jm?), TM, JB, J, SP. The figure's tuple labels use an
    /// inconsistent naming (t21/t22/t33); on ℛ3 ∪ ℛ4 as drawn in Fig. 5 the
    /// blocks and matchings below result (documented in EXPERIMENTS.md).
    #[test]
    fn fig14_blocks_and_matchings() {
        let tuples = r34();
        let r = block_alternatives(&tuples, &fig14_spec());
        // Alternative keys: t31 → JP, Jm; t32 → Tm, Jm, Jb; t41 → JP, Jp;
        // t42 → Tm; t43 → J (⊥ job), Sp.
        // (case matters: "Jp" from (Johan, pianist) vs "JP"? — both render
        // "Jp"/"Jp": first char of "John"='J', of "pilot"='p' → "Jp".)
        let expect_blocks: Vec<(&str, Vec<usize>)> = vec![
            ("J", vec![4]),     // (John, ⊥)
            ("Jb", vec![1]),    // (Jim, baker)
            ("Jm", vec![0, 1]), // (Johan, mu*), (Jim, mechanic)
            ("Jp", vec![0, 2]), // (John, pilot) of t31 and t41
            ("Sp", vec![4]),    // (Sean, pilot)
            ("Tm", vec![1, 3]), // (Tim, mechanic), (Tom, mechanic)
        ];
        let got: Vec<(&str, Vec<usize>)> = r
            .blocks
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        assert_eq!(got, expect_blocks);
        // Three matchings result (as in the paper's count): (t31,t32) from
        // block Jm, (t31,t41) from Jp, (t32,t42) from Tm.
        assert_eq!(r.pairs.pairs(), &[(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn duplicate_block_membership_removed() {
        // t41's two alternatives both key "Jp" under Fig. 14's key: the
        // tuple must appear in that block once.
        let tuples = r34();
        let r = block_alternatives(&tuples, &fig14_spec());
        assert_eq!(r.blocks["Jp"].iter().filter(|&&t| t == 2).count(), 1);
    }

    #[test]
    fn conflict_resolved_blocking() {
        let tuples = r34();
        let r = block_conflict_resolved(
            &tuples,
            &fig14_spec(),
            ConflictResolution::MostProbableAlternative,
        );
        // Most probable alternatives: t31 (John,pilot) → Jp;
        // t32 (Jim,baker) → Jb; t41 (John,pilot) → Jp; t42 (Tom,mechanic)
        // → Tm; t43 (Sean,pilot) → Sp.
        assert_eq!(r.pairs.pairs(), &[(0, 2)]);
        // Every tuple appears in exactly one block.
        let total: usize = r.blocks.values().map(Vec::len).sum();
        assert_eq!(total, tuples.len());
    }

    #[test]
    fn conflict_resolved_is_subset_of_alternatives() {
        let tuples = r34();
        let alts = block_alternatives(&tuples, &fig14_spec());
        let resolved = block_conflict_resolved(
            &tuples,
            &fig14_spec(),
            ConflictResolution::MostProbableAlternative,
        );
        for &(i, j) in resolved.pairs.pairs() {
            assert!(alts.pairs.contains(i, j));
        }
    }

    #[test]
    fn multipass_blocking_unions_worlds() {
        let tuples = r34();
        let all = block_multipass(&tuples, &fig14_spec(), WorldSelection::All { limit: 1000 });
        let one = block_multipass(&tuples, &fig14_spec(), WorldSelection::TopK(1));
        assert!(one.pairs.len() <= all.pairs.len());
        for &(i, j) in one.pairs.pairs() {
            assert!(all.pairs.contains(i, j));
        }
        let diverse = block_multipass(
            &tuples,
            &fig14_spec(),
            WorldSelection::DiverseTopK { k: 3, pool: 24 },
        );
        for &(i, j) in diverse.pairs.pairs() {
            assert!(all.pairs.contains(i, j));
        }
    }

    #[test]
    fn empty_input() {
        let r = block_alternatives(&[], &fig14_spec());
        assert!(r.pairs.is_empty());
        assert!(r.blocks.is_empty());
    }

    #[test]
    fn large_block_membership_spills_and_stays_deduped() {
        // Enough same-key tuples to cross SPILL_THRESHOLD, each with two
        // identical alternative keys (forcing a duplicate insertion per
        // tuple): membership must stay deduped across the spill boundary
        // and insertion order preserved.
        let s = Schema::new(["name", "job"]);
        let n = 3 * SPILL_THRESHOLD;
        let tuples: Vec<XTuple> = (0..n)
            .map(|_| {
                XTuple::builder(&s)
                    .alt(0.5, ["John", "pilot"])
                    .alt(0.5, ["Johan", "pianist"]) // same "Jp" key
                    .build()
                    .unwrap()
            })
            .collect();
        let r = block_alternatives(&tuples, &fig14_spec());
        assert_eq!(r.blocks.len(), 1);
        let members = &r.blocks["Jp"];
        assert_eq!(members.len(), n, "duplicates crept in: {members:?}");
        assert_eq!(*members, (0..n).collect::<Vec<_>>());
        assert_eq!(r.pairs.len(), n * (n - 1) / 2);
    }

    #[test]
    fn spillable_scans_match_in_memory_blocking() {
        let tuples = r34();
        let spec = fig14_spec();
        let dir = std::env::temp_dir().join(format!("pd-blk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // spill_members 1 forces every block through its spill file;
        // usize::MAX keeps everything resident. Both must reproduce the
        // in-memory block view and emission order byte-for-byte.
        for spill_members in [1, 2, usize::MAX] {
            let cfg = BlockScanConfig {
                spill_members,
                dir: Some(dir.clone()),
            };
            type ScanFn<'a> = dyn FnMut(&mut dyn FnMut(&str, &[usize])) -> BlockScanStats + 'a;
            let collect = |scan: &mut ScanFn<'_>| {
                let mut seen: Vec<(String, Vec<usize>)> = Vec::new();
                let stats = scan(&mut |k, m| seen.push((k.to_string(), m.to_vec())));
                (seen, stats)
            };

            let expected = block_alternatives(&tuples, &spec);
            let (seen, stats) = collect(&mut |f| {
                scan_alternative_blocks(&tuples, &spec, &cfg, &mut |k, m| f(k, m)).unwrap()
            });
            let want: Vec<(String, Vec<usize>)> = expected
                .blocks
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(seen, want, "alternatives spill {spill_members}");
            if spill_members == 1 {
                assert!(stats.spilled_blocks > 0);
            } else if spill_members == usize::MAX {
                assert_eq!(stats.spilled_blocks, 0);
            }

            let strategy = ConflictResolution::MostProbableAlternative;
            let expected = block_conflict_resolved(&tuples, &spec, strategy);
            let (seen, _) = collect(&mut |f| {
                scan_conflict_resolved_blocks(&tuples, &spec, strategy, &cfg, &mut |k, m| f(k, m))
                    .unwrap()
            });
            let want: Vec<(String, Vec<usize>)> = expected
                .blocks
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(seen, want, "conflict spill {spill_members}");

            // Multipass: replaying emit_block_pairs over the scanned
            // blocks must reproduce the unioned pair set in order.
            let selection = WorldSelection::TopK(3);
            let expected = block_multipass(&tuples, &spec, selection);
            let mut pairs = CandidatePairs::new(tuples.len());
            scan_multipass_blocks(&tuples, &spec, selection, &cfg, &mut |_, m| {
                emit_block_pairs(m, &mut pairs)
            })
            .unwrap();
            assert_eq!(
                pairs.pairs(),
                expected.pairs.pairs(),
                "multipass spill {spill_members}"
            );
        }
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "spill files must be cleaned up"
        );
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn spillable_block_crosses_spill_boundary_deduped() {
        let s = Schema::new(["name", "job"]);
        let n = 40;
        let tuples: Vec<XTuple> = (0..n)
            .map(|_| {
                XTuple::builder(&s)
                    .alt(0.5, ["John", "pilot"])
                    .alt(0.5, ["Johan", "pianist"]) // same "Jp" key twice
                    .build()
                    .unwrap()
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("pd-blk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = BlockScanConfig {
            spill_members: 7,
            dir: Some(dir.clone()),
        };
        let mut seen = Vec::new();
        let stats = scan_alternative_blocks(&tuples, &fig14_spec(), &cfg, &mut |k, m| {
            seen.push((k.to_string(), m.to_vec()))
        })
        .unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, "Jp");
        assert_eq!(seen[0].1, (0..n).collect::<Vec<_>>());
        assert_eq!(stats.spilled_blocks, 1);
        assert!(stats.spilled_bytes > 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn interned_blocking_matches_oracles() {
        let tuples = r34();
        let spec = fig14_spec();
        let (a, b) = (
            block_alternatives(&tuples, &spec),
            block_alternatives_oracle(&tuples, &spec),
        );
        assert_eq!(a.pairs.pairs(), b.pairs.pairs());
        assert_eq!(a.blocks, b.blocks);
        // The interner-backed variant agrees with both.
        let c = block_alternatives_interned(&tuples, &spec);
        assert_eq!(a.pairs.pairs(), c.pairs.pairs());
        assert_eq!(a.blocks, c.blocks);
        for strategy in [
            ConflictResolution::MostProbableAlternative,
            ConflictResolution::MostProbableKey,
            ConflictResolution::FirstAlternative,
        ] {
            let (a, b) = (
                block_conflict_resolved(&tuples, &spec, strategy),
                block_conflict_resolved_oracle(&tuples, &spec, strategy),
            );
            assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{strategy:?}");
            assert_eq!(a.blocks, b.blocks, "{strategy:?}");
        }
        for selection in [
            WorldSelection::All { limit: 100 },
            WorldSelection::TopK(3),
            WorldSelection::DiverseTopK { k: 3, pool: 24 },
        ] {
            let (a, b) = (
                block_multipass(&tuples, &spec, selection),
                block_multipass_oracle(&tuples, &spec, selection),
            );
            // Both emit per-world pairs in sorted-key order, so even the
            // first-insertion order agrees.
            assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{selection:?}");
            assert_eq!(a.blocks, b.blocks, "{selection:?}");
        }
    }
}
