//! Blocking adapted to probabilistic data (Section V-B / Fig. 14).
//!
//! Blocking partitions tuples by key value and compares only within blocks.
//! Adaptations mirror the SNM ones: multi-pass over chosen worlds,
//! conflict-resolved certain keys, and **per-alternative block insertion**
//! (an x-tuple joins one block per alternative key; duplicate entries of
//! the same tuple within one block are removed, and repeated matchings
//! across blocks are suppressed — Fig. 14's walkthrough).
//!
//! **Multi-pass** blocking assembles blocks in a `BlockMap` keyed on
//! **interned key symbols** ([`KeySymbol`]): the
//! [`KeyTable`](crate::key::KeyTable) built up front renders each
//! distinct `(value, prefix)` once, and every insertion afterwards is a
//! single integer-keyed hash probe — no key string is rendered, hashed or
//! compared on the hot path, and no collision chain is needed because
//! symbol equality *is* key equality. **Single-pass** blocking
//! ([`block_alternatives`]) instead takes the hash-dedup'd direct path:
//! with every key seen essentially once, interner maintenance never
//! amortizes, so each rendered key is resolved to its block with one
//! string-keyed hash probe and no pools are built at all. Per-block
//! membership stays O(1) either way via a small-vec scan that spills into
//! an `FxHashSet` past a handful of members. The sorted
//! `BTreeMap<String, Vec<usize>>` inspection view that figures and tests
//! consume is materialized once at the end, and candidate pairs are
//! emitted in sorted-key order, so results remain byte-for-byte identical
//! across all implementations — the string-keyed originals are retained
//! below as the property-tested oracles ([`block_alternatives_oracle`]
//! and friends).

use std::collections::BTreeMap;

use probdedup_model::intern::{KeyPool, KeySymbol};
use probdedup_model::util::{FxHashMap, FxHashSet};
use probdedup_model::xtuple::XTuple;

use crate::conflict::{resolve_key, resolved_key_symbols, ConflictResolution};
use crate::key::KeySpec;
use crate::multipass::{select_worlds, WorldSelection};
use crate::pairs::CandidatePairs;

/// Result of a blocking run: candidate pairs plus the blocks themselves
/// (deterministically ordered by key) for inspection and figures.
#[derive(Debug, Clone)]
pub struct BlockingResult {
    /// Candidate pairs (each matching executed once).
    pub pairs: CandidatePairs,
    /// Block key → member tuple indices (first-insertion order, deduped).
    pub blocks: BTreeMap<String, Vec<usize>>,
}

/// Members beyond which a block's membership test spills from a linear
/// small-vec scan into a hash set.
const SPILL_THRESHOLD: usize = 16;

/// One block under construction: members in first-insertion order and
/// (for large blocks) a spill set for O(1) membership tests. Shared with
/// the incremental blocking state of [`crate::incremental`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Block {
    members: Vec<usize>,
    spill: Option<FxHashSet<usize>>,
}

impl Block {
    /// The members in first-insertion order.
    pub(crate) fn members(&self) -> &[usize] {
        &self.members
    }

    /// Insert `tuple` unless already present ("if an x-tuple is allocated
    /// to a single block for multiple times, except for one, all entries of
    /// this tuple are removed" — Fig. 14). O(1): small blocks scan ≤
    /// [`SPILL_THRESHOLD`] entries, larger ones consult the spill set.
    pub(crate) fn insert(&mut self, tuple: usize) {
        match &mut self.spill {
            Some(set) => {
                if set.insert(tuple) {
                    self.members.push(tuple);
                }
            }
            None => {
                if !self.members.contains(&tuple) {
                    self.members.push(tuple);
                    if self.members.len() > SPILL_THRESHOLD {
                        self.spill = Some(self.members.iter().copied().collect());
                    }
                }
            }
        }
    }
}

/// Symbol-keyed block accumulator (see the module docs). Insertion is one
/// integer hash probe; key strings only appear when a sorted inspection
/// view is materialized.
#[derive(Debug, Clone, Default)]
struct BlockMap {
    slots: probdedup_model::util::FxHashMap<KeySymbol, Block>,
}

impl BlockMap {
    /// Insert `tuple` into the block of `key` (creating the block on first
    /// sight of the key symbol).
    fn insert(&mut self, key: KeySymbol, tuple: usize) {
        self.slots.entry(key).or_default().insert(tuple);
    }

    /// The blocks in deterministic sorted-key order (resolving symbols for
    /// the comparison only — no rendering, no allocation).
    fn sorted_blocks(self, keys: &KeyPool) -> Vec<(KeySymbol, Block)> {
        let mut blocks: Vec<(KeySymbol, Block)> = self.slots.into_iter().collect();
        blocks.sort_unstable_by(|a, b| keys.resolve(a.0).cmp(keys.resolve(b.0)));
        blocks
    }

    /// Emit all within-block pairs in sorted-key order (matching the
    /// string implementation's output order exactly) without building the
    /// string view.
    fn finish_pairs(self, keys: &KeyPool, pairs: &mut CandidatePairs) {
        for (_, block) in self.sorted_blocks(keys) {
            emit_block_pairs(&block.members, pairs);
        }
    }

    /// Emit pairs **and** materialize the sorted `BTreeMap` inspection
    /// view (one `String` per distinct block key).
    fn finish(self, keys: &KeyPool, pairs: &mut CandidatePairs) -> BTreeMap<String, Vec<usize>> {
        let mut sorted = BTreeMap::new();
        for (key, block) in self.sorted_blocks(keys) {
            emit_block_pairs(&block.members, pairs);
            sorted.insert(keys.resolve(key).to_string(), block.members);
        }
        sorted
    }
}

pub(crate) fn emit_block_pairs(members: &[usize], pairs: &mut CandidatePairs) {
    for (a, &i) in members.iter().enumerate() {
        for &j in members.iter().skip(a + 1) {
            pairs.insert(i, j);
        }
    }
}

/// Blocking with **alternative key values** (Fig. 14): one block entry per
/// alternative key of each x-tuple.
///
/// This is the **hash-dedup'd single-pass path**: each alternative's key is
/// rendered exactly once and resolved to its block with **one** hash probe
/// on the key string — no `ValuePool`/`KeyPool` maintenance at all. On a
/// single pass over mostly-distinct keys the interning layer never
/// amortizes (it was measured ~2.4× slower than direct rendering on the
/// typo-heavy synthetic workload; the `blocking-alt` bench mode tracks
/// this), so single-pass blocking bypasses it. Multi-pass blocking keeps
/// the interned [`KeyTable`](crate::key::KeyTable) — there the table is
/// reused across passes and pays for itself. The interner-backed
/// single-pass variant is retained as [`block_alternatives_interned`];
/// all three implementations produce byte-identical results
/// (property-tested in `tests/interned_oracle.rs`).
pub fn block_alternatives(tuples: &[XTuple], spec: &KeySpec) -> BlockingResult {
    // Key string → index into `blocks`, one probe per alternative.
    let mut ids: FxHashMap<String, usize> = FxHashMap::default();
    ids.reserve(tuples.len());
    let mut blocks: Vec<Block> = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_keys(t) {
            let next = blocks.len();
            let id = *ids.entry(key).or_insert(next);
            if id == next {
                blocks.push(Block::default());
            }
            blocks[id].insert(i);
        }
    }
    // Deterministic sorted-key order, matching the other implementations;
    // the `BTreeMap` view is bulk-built from the sorted entries (std
    // detects the presorted run) instead of paying per-key tree descents.
    let mut order: Vec<(String, Vec<usize>)> = ids
        .into_iter()
        .map(|(key, id)| (key, std::mem::take(&mut blocks[id].members)))
        .collect();
    order.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut pairs = CandidatePairs::new(tuples.len());
    for (_, members) in &order {
        emit_block_pairs(members, &mut pairs);
    }
    BlockingResult {
        pairs,
        blocks: order.into_iter().collect(),
    }
}

/// The interner-backed single-pass variant of [`block_alternatives`]:
/// keys interned on the fly ([`KeySpec::alternative_key_symbols`]),
/// insertion a symbol-keyed hash probe. Identical output; kept for the
/// oracle tests and as the building block the multi-pass path composes.
pub fn block_alternatives_interned(tuples: &[XTuple], spec: &KeySpec) -> BlockingResult {
    let mut values = probdedup_model::intern::ValuePool::new();
    let mut keys = KeyPool::new();
    let mut map = BlockMap::default();
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_key_symbols(t, &mut values, &mut keys) {
            map.insert(key, i);
        }
    }
    let mut pairs = CandidatePairs::new(tuples.len());
    let blocks = map.finish(&keys, &mut pairs);
    BlockingResult { pairs, blocks }
}

/// Blocking over **conflict-resolved certain keys** (Section V-B: "conflict
/// resolution strategies can be used to produce certain key values; in this
/// case, blocking can be performed as usual").
pub fn block_conflict_resolved(
    tuples: &[XTuple],
    spec: &KeySpec,
    strategy: ConflictResolution,
) -> BlockingResult {
    let (keys, syms) = resolved_key_symbols(tuples, spec, strategy);
    let mut map = BlockMap::default();
    for (i, &key) in syms.iter().enumerate() {
        map.insert(key, i);
    }
    let mut pairs = CandidatePairs::new(tuples.len());
    let blocks = map.finish(&keys, &mut pairs);
    BlockingResult { pairs, blocks }
}

/// Multi-pass blocking over selected possible worlds ("a multi-pass over
/// some finely chosen worlds seems to be an option"). Pairs are unioned;
/// the returned blocks are those of the **first** pass (for inspection).
///
/// The [`KeyTable`](crate::key::KeyTable) is built once; every pass after
/// the first is pure integer work (bucket by symbol, emit pairs) — zero
/// key renders, which the reduction property tests assert via
/// [`KeyTable::render_count`](crate::key::KeyTable::render_count).
pub fn block_multipass(
    tuples: &[XTuple],
    spec: &KeySpec,
    selection: WorldSelection,
) -> BlockingResult {
    let worlds = select_worlds(tuples, selection);
    // Per-alternative keys are world-independent; intern them once instead
    // of once per (world, tuple).
    let table = spec.key_table(tuples);
    let mut pairs = CandidatePairs::new(tuples.len());
    let mut first_blocks: Option<BTreeMap<String, Vec<usize>>> = None;
    for world in worlds {
        let mut map = BlockMap::default();
        for i in 0..table.len() {
            let alt = world.choices[i].expect("full world");
            map.insert(table.alternative_keys(i)[alt], i);
        }
        if first_blocks.is_none() {
            first_blocks = Some(map.finish(table.key_pool(), &mut pairs));
        } else {
            map.finish_pairs(table.key_pool(), &mut pairs);
        }
    }
    BlockingResult {
        pairs,
        blocks: first_blocks.unwrap_or_default(),
    }
}

/// [`block_multipass`] with a caller-supplied [`KeyTable`](crate::key::KeyTable)
/// and without the first-pass inspection view — the lean path persistent
/// sessions use: the table (extended incrementally as tuples arrive)
/// already holds every alternative's key symbol, so each pass is pure
/// integer bucketing plus one sorted emission. Pair output is identical to
/// [`block_multipass`] (per-world sorted-key order).
pub fn block_multipass_with_table(
    tuples: &[XTuple],
    table: &crate::key::KeyTable,
    selection: WorldSelection,
) -> CandidatePairs {
    debug_assert_eq!(tuples.len(), table.len(), "table must cover the corpus");
    let worlds = select_worlds(tuples, selection);
    let mut pairs = CandidatePairs::new(tuples.len());
    for world in worlds {
        let mut map = BlockMap::default();
        for i in 0..table.len() {
            let alt = world.choices[i].expect("full world");
            map.insert(table.alternative_keys(i)[alt], i);
        }
        map.finish_pairs(table.key_pool(), &mut pairs);
    }
    pairs
}

// ----------------------------------------------------------------------
// String-key oracles: the rendering path the interned implementation is
// property-tested against (`tests/properties.rs` asserts identical pair
// sets and identical block views on generated schemas).
// ----------------------------------------------------------------------

/// String-path oracle of [`block_alternatives`]: renders one key `String`
/// per alternative per call and buckets in a `BTreeMap`. Kept for
/// property-testing the interned path, not for production use.
pub fn block_alternatives_oracle(tuples: &[XTuple], spec: &KeySpec) -> BlockingResult {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_keys(t) {
            oracle_insert(&mut map, key, i);
        }
    }
    oracle_finish(map, tuples.len())
}

/// String-path oracle of [`block_conflict_resolved`].
pub fn block_conflict_resolved_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    strategy: ConflictResolution,
) -> BlockingResult {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, t) in tuples.iter().enumerate() {
        oracle_insert(&mut map, resolve_key(t, spec, strategy), i);
    }
    oracle_finish(map, tuples.len())
}

/// String-path oracle of [`block_multipass`]. Like the pre-interning
/// production implementation, the per-alternative key strings are rendered
/// **once** before the world loop (they are world-independent); what each
/// pass still pays — and the interned path removes — is the per-(world,
/// tuple) `String` clone plus string hashing/comparison in the block map.
pub fn block_multipass_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    selection: WorldSelection,
) -> BlockingResult {
    let worlds = select_worlds(tuples, selection);
    let alt_keys: Vec<Vec<String>> = tuples.iter().map(|t| spec.alternative_keys(t)).collect();
    let mut pairs = CandidatePairs::new(tuples.len());
    let mut first_blocks: Option<BTreeMap<String, Vec<usize>>> = None;
    for world in worlds {
        let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, keys) in alt_keys.iter().enumerate() {
            let alt = world.choices[i].expect("full world");
            oracle_insert(&mut map, keys[alt].clone(), i);
        }
        for members in map.values() {
            emit_block_pairs(members, &mut pairs);
        }
        if first_blocks.is_none() {
            first_blocks = Some(map);
        }
    }
    BlockingResult {
        pairs,
        blocks: first_blocks.unwrap_or_default(),
    }
}

fn oracle_insert(map: &mut BTreeMap<String, Vec<usize>>, key: String, tuple: usize) {
    let members = map.entry(key).or_default();
    if !members.contains(&tuple) {
        members.push(tuple);
    }
}

fn oracle_finish(map: BTreeMap<String, Vec<usize>>, n: usize) -> BlockingResult {
    let mut pairs = CandidatePairs::new(n);
    for members in map.values() {
        emit_block_pairs(members, &mut pairs);
    }
    BlockingResult { pairs, blocks: map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// ℛ34 with indices 0=t31, 1=t32, 2=t41, 3=t42, 4=t43.
    fn r34() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ]
    }

    /// Fig. 14's blocking key: first character of the name + first
    /// character of the job.
    fn fig14_spec() -> KeySpec {
        KeySpec::new(vec![
            crate::key::KeyPart::prefix(0, 1),
            crate::key::KeyPart::prefix(1, 1),
        ])
    }

    /// Fig. 14 on ℛ34: per-alternative blocking partitions the tuples into
    /// blocks JP, JM(=Jm?), TM, JB, J, SP. The figure's tuple labels use an
    /// inconsistent naming (t21/t22/t33); on ℛ3 ∪ ℛ4 as drawn in Fig. 5 the
    /// blocks and matchings below result (documented in EXPERIMENTS.md).
    #[test]
    fn fig14_blocks_and_matchings() {
        let tuples = r34();
        let r = block_alternatives(&tuples, &fig14_spec());
        // Alternative keys: t31 → JP, Jm; t32 → Tm, Jm, Jb; t41 → JP, Jp;
        // t42 → Tm; t43 → J (⊥ job), Sp.
        // (case matters: "Jp" from (Johan, pianist) vs "JP"? — both render
        // "Jp"/"Jp": first char of "John"='J', of "pilot"='p' → "Jp".)
        let expect_blocks: Vec<(&str, Vec<usize>)> = vec![
            ("J", vec![4]),     // (John, ⊥)
            ("Jb", vec![1]),    // (Jim, baker)
            ("Jm", vec![0, 1]), // (Johan, mu*), (Jim, mechanic)
            ("Jp", vec![0, 2]), // (John, pilot) of t31 and t41
            ("Sp", vec![4]),    // (Sean, pilot)
            ("Tm", vec![1, 3]), // (Tim, mechanic), (Tom, mechanic)
        ];
        let got: Vec<(&str, Vec<usize>)> = r
            .blocks
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        assert_eq!(got, expect_blocks);
        // Three matchings result (as in the paper's count): (t31,t32) from
        // block Jm, (t31,t41) from Jp, (t32,t42) from Tm.
        assert_eq!(r.pairs.pairs(), &[(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn duplicate_block_membership_removed() {
        // t41's two alternatives both key "Jp" under Fig. 14's key: the
        // tuple must appear in that block once.
        let tuples = r34();
        let r = block_alternatives(&tuples, &fig14_spec());
        assert_eq!(r.blocks["Jp"].iter().filter(|&&t| t == 2).count(), 1);
    }

    #[test]
    fn conflict_resolved_blocking() {
        let tuples = r34();
        let r = block_conflict_resolved(
            &tuples,
            &fig14_spec(),
            ConflictResolution::MostProbableAlternative,
        );
        // Most probable alternatives: t31 (John,pilot) → Jp;
        // t32 (Jim,baker) → Jb; t41 (John,pilot) → Jp; t42 (Tom,mechanic)
        // → Tm; t43 (Sean,pilot) → Sp.
        assert_eq!(r.pairs.pairs(), &[(0, 2)]);
        // Every tuple appears in exactly one block.
        let total: usize = r.blocks.values().map(Vec::len).sum();
        assert_eq!(total, tuples.len());
    }

    #[test]
    fn conflict_resolved_is_subset_of_alternatives() {
        let tuples = r34();
        let alts = block_alternatives(&tuples, &fig14_spec());
        let resolved = block_conflict_resolved(
            &tuples,
            &fig14_spec(),
            ConflictResolution::MostProbableAlternative,
        );
        for &(i, j) in resolved.pairs.pairs() {
            assert!(alts.pairs.contains(i, j));
        }
    }

    #[test]
    fn multipass_blocking_unions_worlds() {
        let tuples = r34();
        let all = block_multipass(&tuples, &fig14_spec(), WorldSelection::All { limit: 1000 });
        let one = block_multipass(&tuples, &fig14_spec(), WorldSelection::TopK(1));
        assert!(one.pairs.len() <= all.pairs.len());
        for &(i, j) in one.pairs.pairs() {
            assert!(all.pairs.contains(i, j));
        }
        let diverse = block_multipass(
            &tuples,
            &fig14_spec(),
            WorldSelection::DiverseTopK { k: 3, pool: 24 },
        );
        for &(i, j) in diverse.pairs.pairs() {
            assert!(all.pairs.contains(i, j));
        }
    }

    #[test]
    fn empty_input() {
        let r = block_alternatives(&[], &fig14_spec());
        assert!(r.pairs.is_empty());
        assert!(r.blocks.is_empty());
    }

    #[test]
    fn large_block_membership_spills_and_stays_deduped() {
        // Enough same-key tuples to cross SPILL_THRESHOLD, each with two
        // identical alternative keys (forcing a duplicate insertion per
        // tuple): membership must stay deduped across the spill boundary
        // and insertion order preserved.
        let s = Schema::new(["name", "job"]);
        let n = 3 * SPILL_THRESHOLD;
        let tuples: Vec<XTuple> = (0..n)
            .map(|_| {
                XTuple::builder(&s)
                    .alt(0.5, ["John", "pilot"])
                    .alt(0.5, ["Johan", "pianist"]) // same "Jp" key
                    .build()
                    .unwrap()
            })
            .collect();
        let r = block_alternatives(&tuples, &fig14_spec());
        assert_eq!(r.blocks.len(), 1);
        let members = &r.blocks["Jp"];
        assert_eq!(members.len(), n, "duplicates crept in: {members:?}");
        assert_eq!(*members, (0..n).collect::<Vec<_>>());
        assert_eq!(r.pairs.len(), n * (n - 1) / 2);
    }

    #[test]
    fn interned_blocking_matches_oracles() {
        let tuples = r34();
        let spec = fig14_spec();
        let (a, b) = (
            block_alternatives(&tuples, &spec),
            block_alternatives_oracle(&tuples, &spec),
        );
        assert_eq!(a.pairs.pairs(), b.pairs.pairs());
        assert_eq!(a.blocks, b.blocks);
        // The interner-backed variant agrees with both.
        let c = block_alternatives_interned(&tuples, &spec);
        assert_eq!(a.pairs.pairs(), c.pairs.pairs());
        assert_eq!(a.blocks, c.blocks);
        for strategy in [
            ConflictResolution::MostProbableAlternative,
            ConflictResolution::MostProbableKey,
            ConflictResolution::FirstAlternative,
        ] {
            let (a, b) = (
                block_conflict_resolved(&tuples, &spec, strategy),
                block_conflict_resolved_oracle(&tuples, &spec, strategy),
            );
            assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{strategy:?}");
            assert_eq!(a.blocks, b.blocks, "{strategy:?}");
        }
        for selection in [
            WorldSelection::All { limit: 100 },
            WorldSelection::TopK(3),
            WorldSelection::DiverseTopK { k: 3, pool: 24 },
        ] {
            let (a, b) = (
                block_multipass(&tuples, &spec, selection),
                block_multipass_oracle(&tuples, &spec, selection),
            );
            // Both emit per-world pairs in sorted-key order, so even the
            // first-insertion order agrees.
            assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{selection:?}");
            assert_eq!(a.blocks, b.blocks, "{selection:?}");
        }
    }
}
