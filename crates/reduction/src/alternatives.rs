//! Sorting alternatives (Section V-A.3 / Figs. 11–12): key values for
//! *every* alternative, so a tuple appears in the sorted list once per
//! alternative key.
//!
//! Two corrections keep the method sound:
//!
//! * **adjacent-duplicate omission** — neighboring entries referencing the
//!   same tuple collapse (matching a tuple with itself is meaningless);
//! * **executed-matching suppression** — the same tuple pair can meet in
//!   several windows; a [`crate::pairs::PairMatrix`] (Fig. 12) executes each
//!   matching exactly once.

//!
//! Keys are interned once into a [`KeyTable`](crate::key::KeyTable) and
//! the sort runs over lexicographic ranks; [`sorting_alternatives_oracle`]
//! keeps the string-rendering implementation for property testing.

use probdedup_model::xtuple::XTuple;

use crate::key::KeySpec;
use crate::pairs::CandidatePairs;
use crate::snm::{sorted_neighborhood, sorted_neighborhood_interned, InternedSnmEntry, SnmEntry};

/// Result of the sorting-alternatives method.
#[derive(Debug, Clone)]
pub struct SortingAlternativesResult {
    /// The candidate pairs (each matching executed once).
    pub pairs: CandidatePairs,
    /// The sorted entry list **after** adjacent-duplicate omission
    /// (the right-hand list of Fig. 11 without the struck-out rows).
    pub order: Vec<SnmEntry>,
    /// Number of entries before omission (the left-hand list's length).
    pub raw_entries: usize,
}

/// Run sorting-alternatives over the x-tuples (interned keys; the
/// returned [`SnmEntry`] strings are resolved from the pool for display).
pub fn sorting_alternatives(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
) -> SortingAlternativesResult {
    let table = spec.key_table(tuples);
    let mut entries: Vec<InternedSnmEntry> = Vec::new();
    for i in 0..table.len() {
        for &key in table.alternative_keys(i) {
            entries.push(InternedSnmEntry::new(key, i));
        }
    }
    let raw_entries = entries.len();
    let (pairs, order) =
        sorted_neighborhood_interned(entries, table.ranks(), window, tuples.len(), true);
    let order = order
        .iter()
        .map(|e| SnmEntry::new(table.resolve(e.key), e.tuple))
        .collect();
    SortingAlternativesResult {
        pairs,
        order,
        raw_entries,
    }
}

/// String-path oracle of [`sorting_alternatives`] (property-tested to be
/// identical).
pub fn sorting_alternatives_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
) -> SortingAlternativesResult {
    let mut entries: Vec<SnmEntry> = Vec::new();
    for (i, t) in tuples.iter().enumerate() {
        for key in spec.alternative_keys(t) {
            entries.push(SnmEntry::new(key, i));
        }
    }
    let raw_entries = entries.len();
    let (pairs, order) = sorted_neighborhood(entries, window, tuples.len(), true);
    SortingAlternativesResult {
        pairs,
        order,
        raw_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// ℛ34 with indices 0=t31, 1=t32, 2=t41, 3=t42, 4=t43.
    fn r34() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ]
    }

    /// The full Fig. 11 walkthrough.
    ///
    /// Nine raw entries (t31: Johpi, Johmu; t32: Timme, Jimme, Jimba;
    /// t41: Johpi, Johpi → our keying gives Johpi twice since both of
    /// t41's alternatives render Johpi — the figure prints one Johpi for
    /// t41; adjacent-duplicate omission makes this equivalent; t42: Tomme;
    /// t43: Joh, Seapi), sorted and with adjacent same-tuple entries
    /// omitted, windowed at 2, yields **exactly five matchings**:
    /// (t32,t43), (t43,t31), (t31,t41), (t41,t43), (t32,t42).
    #[test]
    fn fig11_five_matchings() {
        let tuples = r34();
        let spec = KeySpec::paper_example(0, 1);
        let r = sorting_alternatives(&tuples, &spec, 2);
        // Raw entries: 2 + 3 + 2 + 1 + 2 = 10 (the figure's list shows 9
        // because it prints t41's two identical Johpi keys as one row; the
        // omission rule collapses ours identically).
        assert_eq!(r.raw_entries, 10);
        let matchings: Vec<(usize, usize)> = r.pairs.pairs().to_vec();
        // In our index space: (t32,t43)=(1,4), (t43,t31)=(0,4),
        // (t31,t41)=(0,2), (t41,t43)=(2,4), (t32,t42)=(1,3).
        assert_eq!(
            matchings,
            vec![(1, 4), (0, 4), (0, 2), (2, 4), (1, 3)],
            "expected the paper's five matchings in window order"
        );
        assert_eq!(r.pairs.len(), 5);
    }

    /// The sorted, collapsed entry list of Fig. 11 (right side).
    #[test]
    fn fig11_sorted_order() {
        let tuples = r34();
        let spec = KeySpec::paper_example(0, 1);
        let r = sorting_alternatives(&tuples, &spec, 2);
        let listed: Vec<(&str, usize)> =
            r.order.iter().map(|e| (e.key.as_str(), e.tuple)).collect();
        // Fig. 11 strikes out Jimme(t32) and Johpi(t31) as adjacent
        // duplicates; our keying additionally collapses t41's second
        // (identical) Johpi entry, leaving the figure's effective list.
        assert_eq!(
            listed,
            vec![
                ("Jimba", 1),
                ("Joh", 4),
                ("Johmu", 0),
                ("Johpi", 2),
                ("Seapi", 4),
                ("Timme", 1),
                ("Tomme", 3),
            ]
        );
    }

    #[test]
    fn repeated_matchings_counted_once() {
        // Two tuples whose alternatives interleave: the pair would be
        // generated several times; the matrix executes it once.
        let s = Schema::new(["name", "job"]);
        let spec = KeySpec::paper_example(0, 1);
        let a = XTuple::builder(&s)
            .alt(0.5, ["Aaa", "xx"])
            .alt(0.5, ["Ccc", "xx"])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt(0.5, ["Bbb", "xx"])
            .alt(0.5, ["Ddd", "xx"])
            .build()
            .unwrap();
        let r = sorting_alternatives(&[a, b], &spec, 2);
        // Sorted: Aaaxx(0), Bbbxx(1), Cccxx(0), Dddxx(1) → windows generate
        // (0,1) three times; executed once.
        assert_eq!(r.pairs.len(), 1);
        assert_eq!(r.pairs.pairs(), &[(0, 1)]);
    }

    #[test]
    fn single_tuple_produces_nothing() {
        let s = Schema::new(["name", "job"]);
        let spec = KeySpec::paper_example(0, 1);
        let t = XTuple::builder(&s)
            .alt(0.5, ["Aaa", "xx"])
            .alt(0.5, ["Aab", "yy"])
            .build()
            .unwrap();
        let r = sorting_alternatives(&[t], &spec, 2);
        assert!(r.pairs.is_empty());
        // Both entries reference tuple 0 and are adjacent → collapsed.
        assert_eq!(r.order.len(), 1);
    }
}
