//! Sorting/blocking keys over (possibly uncertain) attribute values.
//!
//! The paper's running key: *"the first three characters of the name value
//! and the first two characters of the job value"* — e.g. `(John, pilot) →
//! "Johpi"`. For probabilistic tuples the key itself becomes a
//! distribution: [`KeySpec::key_distribution`] (over a value row) and
//! [`KeySpec::xtuple_keys`] (over a whole x-tuple, reproducing the
//! probabilistic key values of Fig. 13).
//!
//! Two representations coexist:
//!
//! * the **string path** ([`KeySpec::alternative_keys`],
//!   [`KeySpec::xtuple_keys`], …) renders owned `String` keys — the
//!   readable reference, retained as the property-tested oracle of the
//!   interned path;
//! * the **interned path** ([`KeyTable`], built by [`KeySpec::key_table`])
//!   renders each distinct `(value, prefix length)` once into a
//!   [`KeyPool`] and hands out dense
//!   [`KeySymbol`]s plus a lexicographic rank table, so blocking buckets
//!   and SNM sorts are pure integer work — multi-pass methods become
//!   sort-only after the table is built.

use probdedup_model::intern::{KeyPool, KeyRanks, KeySymbol, ValuePool};
use probdedup_model::pvalue::PValue;
use probdedup_model::util::PROB_EPS;
use probdedup_model::value::Value;
use probdedup_model::xtuple::XTuple;

/// One key component: a prefix of one attribute's rendered value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPart {
    /// Attribute index.
    pub attr: usize,
    /// Number of leading characters to take (`0` = the whole value).
    pub prefix_len: usize,
}

impl KeyPart {
    /// A prefix component.
    pub fn prefix(attr: usize, prefix_len: usize) -> Self {
        Self { attr, prefix_len }
    }

    /// The whole attribute value.
    pub fn full(attr: usize) -> Self {
        Self {
            attr,
            prefix_len: 0,
        }
    }

    fn render(&self, v: &Value) -> String {
        let s = v.render();
        if self.prefix_len == 0 {
            s
        } else {
            s.chars().take(self.prefix_len).collect()
        }
    }
}

/// A sorting/blocking key specification: the concatenation of its parts.
/// `⊥` values render as the empty string, so `(John, ⊥)` under the paper's
/// key yields `"Joh"` — exactly tuple `t43`'s first key in Fig. 13.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpec {
    parts: Vec<KeyPart>,
    /// Cartesian-product guard for key distributions.
    max_expansion: usize,
}

impl KeySpec {
    /// A key from parts.
    pub fn new(parts: Vec<KeyPart>) -> Self {
        Self {
            parts,
            max_expansion: 4096,
        }
    }

    /// The paper's example key: first 3 characters of attribute `name_attr`
    /// + first 2 characters of attribute `job_attr`.
    pub fn paper_example(name_attr: usize, job_attr: usize) -> Self {
        Self::new(vec![
            KeyPart::prefix(name_attr, 3),
            KeyPart::prefix(job_attr, 2),
        ])
    }

    /// Override the expansion guard.
    pub fn with_max_expansion(mut self, max: usize) -> Self {
        self.max_expansion = max.max(1);
        self
    }

    /// The parts.
    pub fn parts(&self) -> &[KeyPart] {
        &self.parts
    }

    /// Key for a row of **certain** outcomes (one `Option<&Value>` per
    /// attribute; `None` = ⊥).
    pub fn key_of_outcomes(&self, outcomes: &[Option<&Value>]) -> String {
        let mut key = String::new();
        for part in &self.parts {
            if let Some(v) = outcomes[part.attr] {
                key.push_str(&part.render(v));
            }
        }
        key
    }

    /// Key distribution of a row of possibly-uncertain values: the cartesian
    /// product of the referenced attributes' outcome distributions, with
    /// equal keys merged. Probabilities sum to 1 (⊥ outcomes contribute the
    /// empty string for their part). Truncated at `max_expansion`
    /// combinations (most probable first is *not* guaranteed under
    /// truncation; the guard exists for pathological inputs).
    pub fn key_distribution(&self, values: &[PValue]) -> Vec<(String, f64)> {
        // Outcome lists only for referenced attributes, in part order.
        let lists: Vec<Vec<(String, f64)>> = self
            .parts
            .iter()
            .map(|part| {
                let pv = &values[part.attr];
                let mut outcomes: Vec<(String, f64)> = pv
                    .alternatives()
                    .iter()
                    .map(|(v, p)| (part.render(v), *p))
                    .collect();
                if pv.null_prob() > PROB_EPS {
                    outcomes.push((String::new(), pv.null_prob()));
                }
                // Merge outcomes that render identically (e.g. `musician`
                // and `museum guide` both render `mu` under a 2-prefix).
                outcomes.sort_by(|a, b| a.0.cmp(&b.0));
                outcomes.dedup_by(|b, a| {
                    if a.0 == b.0 {
                        a.1 += b.1;
                        true
                    } else {
                        false
                    }
                });
                outcomes
            })
            .collect();
        // Odometer over the (merged) outcome lists.
        let mut dist: Vec<(String, f64)> = vec![(String::new(), 1.0)];
        for list in lists {
            let mut next = Vec::with_capacity(dist.len() * list.len());
            for (prefix, p) in &dist {
                for (piece, q) in &list {
                    next.push((format!("{prefix}{piece}"), p * q));
                    if next.len() > self.max_expansion {
                        break;
                    }
                }
            }
            dist = next;
            if dist.len() > self.max_expansion {
                dist.truncate(self.max_expansion);
            }
        }
        dist.sort_by(|a, b| a.0.cmp(&b.0));
        dist.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        dist
    }

    /// The probabilistic key values of an x-tuple (Fig. 13): the union over
    /// alternatives of their key distributions, weighted by the **raw**
    /// alternative probabilities (so the masses sum to `p(t)`, exactly as
    /// printed in the figure), with equal keys merged.
    pub fn xtuple_keys(&self, t: &XTuple) -> Vec<(String, f64)> {
        let mut dist: Vec<(String, f64)> = Vec::new();
        for alt in t.alternatives() {
            for (key, p) in self.key_distribution(alt.values()) {
                match dist.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, q)) => *q += p * alt.probability(),
                    None => dist.push((key, p * alt.probability())),
                }
            }
        }
        dist
    }

    /// The single most probable key of an x-tuple (ties break toward the
    /// lexicographically smaller key for determinism).
    pub fn most_probable_key(&self, t: &XTuple) -> String {
        let mut keys = self.xtuple_keys(t);
        keys.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probabilities")
                .then(a.0.cmp(&b.0))
        });
        keys.into_iter().next().map(|(k, _)| k).unwrap_or_default()
    }

    /// One certain key per alternative of an x-tuple, resolving uncertain
    /// values *inside* an alternative to their most probable outcome — the
    /// per-alternative keys of the sorting-alternatives method (Fig. 11)
    /// and of per-alternative blocking (Fig. 14).
    pub fn alternative_keys(&self, t: &XTuple) -> Vec<String> {
        t.alternatives()
            .iter()
            .map(|alt| {
                let mut key = String::new();
                for part in &self.parts {
                    let pv = alt.value(part.attr);
                    // Prefer the most probable *rendered prefix*, so that a
                    // distribution like `mu*` (all outcomes sharing the
                    // prefix `mu`) contributes `mu` even though each single
                    // outcome is improbable.
                    let dist = self.part_distribution(part, pv);
                    if let Some((piece, _)) = dist.first() {
                        key.push_str(piece);
                    }
                }
                key
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Interned path: the same key semantics over dense `KeySymbol`s.
    // Every method below is oracle-tested against its string twin above.
    // ------------------------------------------------------------------

    /// Build the cached key table of this spec over `tuples`: every
    /// alternative's key as a [`KeySymbol`], with all prefix rendering done
    /// **here, once** — consumers (blocking buckets, SNM passes) never
    /// touch key strings again. See [`KeyTable`].
    pub fn key_table(&self, tuples: &[XTuple]) -> KeyTable {
        let mut table = KeyTable::empty(self.clone());
        table.extend(tuples);
        table
    }

    /// Interned twin of [`KeySpec::alternative_keys`]: one key symbol per
    /// alternative, resolving uncertain values inside an alternative to
    /// their most probable rendered prefix.
    pub fn alternative_key_symbols(
        &self,
        t: &XTuple,
        values: &mut ValuePool,
        keys: &mut KeyPool,
    ) -> Vec<KeySymbol> {
        t.alternatives()
            .iter()
            .map(|alt| {
                // Fold over memoized pairwise concatenation: when every
                // cache hits, an alternative's key costs a few hash probes
                // and zero allocations.
                self.parts.iter().fold(KeySymbol::EMPTY, |acc, part| {
                    let piece = self.part_symbol(part, alt.value(part.attr), values, keys);
                    keys.concat2(acc, piece)
                })
            })
            .collect()
    }

    /// Interned twin of [`KeySpec::key_distribution`]: the cartesian
    /// product of the referenced attributes' outcome distributions with
    /// equal keys merged, as symbols. Identical ordering and
    /// `max_expansion` truncation behaviour as the string path.
    pub fn key_symbol_distribution(
        &self,
        pvalues: &[PValue],
        values: &mut ValuePool,
        keys: &mut KeyPool,
    ) -> Vec<(KeySymbol, f64)> {
        let lists: Vec<Vec<(KeySymbol, f64)>> = self
            .parts
            .iter()
            .map(|part| self.part_symbol_distribution(part, &pvalues[part.attr], values, keys))
            .collect();
        let mut dist: Vec<(KeySymbol, f64)> = vec![(KeySymbol::EMPTY, 1.0)];
        for list in lists {
            let mut next = Vec::with_capacity(dist.len() * list.len());
            for (prefix, p) in &dist {
                for (piece, q) in &list {
                    next.push((keys.concat2(*prefix, *piece), p * q));
                    if next.len() > self.max_expansion {
                        break;
                    }
                }
            }
            dist = next;
            if dist.len() > self.max_expansion {
                dist.truncate(self.max_expansion);
            }
        }
        merge_equal_symbols(&mut dist, keys);
        dist
    }

    /// Interned twin of [`KeySpec::xtuple_keys`]: the probabilistic key
    /// values of an x-tuple (Fig. 13) as symbols, masses summing to `p(t)`.
    pub fn xtuple_key_symbols(
        &self,
        t: &XTuple,
        values: &mut ValuePool,
        keys: &mut KeyPool,
    ) -> Vec<(KeySymbol, f64)> {
        let mut dist: Vec<(KeySymbol, f64)> = Vec::new();
        for alt in t.alternatives() {
            for (key, p) in self.key_symbol_distribution(alt.values(), values, keys) {
                match dist.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, q)) => *q += p * alt.probability(),
                    None => dist.push((key, p * alt.probability())),
                }
            }
        }
        dist
    }

    /// Interned twin of [`KeySpec::most_probable_key`] (ties break toward
    /// the lexicographically smaller key).
    pub fn most_probable_key_symbol(
        &self,
        t: &XTuple,
        values: &mut ValuePool,
        keys: &mut KeyPool,
    ) -> KeySymbol {
        let dist = self.xtuple_key_symbols(t, values, keys);
        dist.into_iter()
            .max_by(|(ka, pa), (kb, pb)| {
                pa.partial_cmp(pb)
                    .expect("finite probabilities")
                    .then_with(|| keys.resolve(*kb).cmp(keys.resolve(*ka)))
            })
            .map(|(k, _)| k)
            .unwrap_or(KeySymbol::EMPTY)
    }

    /// The most probable rendered prefix of one part over one value, as a
    /// symbol — the interned analogue of `part_distribution(..).first()`.
    fn part_symbol(
        &self,
        part: &KeyPart,
        pv: &PValue,
        values: &mut ValuePool,
        keys: &mut KeyPool,
    ) -> KeySymbol {
        // Fast path: a certain value has exactly one rendered prefix — no
        // distribution to build, no sort, no allocation.
        if pv.null_prob() <= PROB_EPS {
            if let [(v, _)] = pv.alternatives() {
                let sym = values.intern(v);
                return keys.prefix_of(values, sym, part.prefix_len);
            }
        }
        let outcomes = self.part_symbol_distribution(part, pv, values, keys);
        // Argmax by probability, ties toward the smaller string; the list
        // arrives string-sorted, so a strict-greater scan implements the
        // oracle's (prob desc, string asc) ordering.
        let mut best: Option<(KeySymbol, f64)> = None;
        for (k, p) in outcomes {
            match best {
                Some((_, bp)) if p <= bp => {}
                _ => best = Some((k, p)),
            }
        }
        best.map(|(k, _)| k).unwrap_or(KeySymbol::EMPTY)
    }

    /// Outcome distribution of one part as symbols, string-sorted with
    /// equal renders merged — mirrors the per-part lists of
    /// [`KeySpec::key_distribution`] exactly (including ordering, which the
    /// `max_expansion` truncation depends on).
    fn part_symbol_distribution(
        &self,
        part: &KeyPart,
        pv: &PValue,
        values: &mut ValuePool,
        keys: &mut KeyPool,
    ) -> Vec<(KeySymbol, f64)> {
        let mut outcomes: Vec<(KeySymbol, f64)> = pv
            .alternatives()
            .iter()
            .map(|(v, p)| {
                let sym = values.intern(v);
                (keys.prefix_of(values, sym, part.prefix_len), *p)
            })
            .collect();
        if pv.null_prob() > PROB_EPS {
            outcomes.push((KeySymbol::EMPTY, pv.null_prob()));
        }
        merge_equal_symbols(&mut outcomes, keys);
        outcomes
    }

    /// Rendered-prefix distribution of one part over one value, most
    /// probable first (ties toward the smaller string).
    fn part_distribution(&self, part: &KeyPart, pv: &PValue) -> Vec<(String, f64)> {
        let mut outcomes: Vec<(String, f64)> = pv
            .alternatives()
            .iter()
            .map(|(v, p)| (part.render(v), *p))
            .collect();
        if pv.null_prob() > PROB_EPS {
            outcomes.push((String::new(), pv.null_prob()));
        }
        outcomes.sort_by(|a, b| a.0.cmp(&b.0));
        outcomes.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        outcomes.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probabilities")
                .then(a.0.cmp(&b.0))
        });
        outcomes
    }
}

/// Sort a symbol distribution by rendered string and merge entries whose
/// symbols are equal (equal strings ⟺ equal symbols, so this mirrors the
/// string path's sort-and-dedup merge byte for byte).
fn merge_equal_symbols(dist: &mut Vec<(KeySymbol, f64)>, keys: &KeyPool) {
    dist.sort_by(|a, b| keys.resolve(a.0).cmp(keys.resolve(b.0)));
    dist.dedup_by(|b, a| {
        if a.0 == b.0 {
            a.1 += b.1;
            true
        } else {
            false
        }
    });
}

/// The interned key table of one `(KeySpec, tuples)` pair: every
/// alternative's key as a [`KeySymbol`], the issuing [`KeyPool`], and a
/// lexicographic rank table.
///
/// Built by [`KeySpec::key_table`] — this is where **all** key rendering
/// happens. Between growth operations the table is read-only: blocking
/// buckets on `KeySymbol`s directly, SNM sorts by [`KeyTable::rank`]
/// (integer compares, byte-identical order to string sorting), and
/// multi-pass methods reuse the same table across passes, so passes ≥ 2
/// perform zero renders and zero allocations — the property tests assert
/// this via [`KeyTable::render_count`].
///
/// A persistent session grows the table instead of rebuilding it:
/// [`KeyTable::extend`] interns only the **new** tuples' keys (re-using
/// every cached prefix render) and rank-**inserts** the newly distinct key
/// strings into the resident sorted order — no full re-sort, and zero
/// renders for values already seen. [`KeyTable::clear_rows`] drops the
/// per-tuple rows while keeping the warm pools, for re-keying a changed
/// corpus.
#[derive(Debug, Clone)]
pub struct KeyTable {
    spec: KeySpec,
    values: ValuePool,
    keys: KeyPool,
    alt_keys: Vec<Vec<KeySymbol>>,
    /// Every interned key symbol in lexicographic order of its string
    /// (`sorted[rank] = symbol`); kept resident so growth can rank-insert.
    sorted: Vec<KeySymbol>,
    ranks: KeyRanks,
}

impl KeyTable {
    /// An empty table for `spec` (no tuples yet); grow with
    /// [`KeyTable::extend`].
    pub fn empty(spec: KeySpec) -> Self {
        let keys = KeyPool::new();
        let sorted: Vec<KeySymbol> = keys.iter().map(|(k, _)| k).collect(); // [""]
        let ranks = KeyRanks::from_sorted(&sorted);
        Self {
            spec,
            values: ValuePool::new(),
            keys,
            alt_keys: Vec::new(),
            sorted,
            ranks,
        }
    }

    /// Rebuild a table around warm pools restored from a snapshot: the
    /// sorted order and rank table are re-derived from the key pool's
    /// contents (deterministic — lexicographic order of the interned
    /// strings), and the per-tuple rows start empty, ready for
    /// [`KeyTable::extend`] to re-key the resident corpus with **zero**
    /// renders (every prefix is already memoized in the restored pool).
    pub fn from_pools(spec: KeySpec, values: ValuePool, keys: KeyPool) -> Self {
        let mut sorted: Vec<KeySymbol> = keys.iter().map(|(k, _)| k).collect();
        sorted.sort_unstable_by(|&a, &b| keys.resolve(a).cmp(keys.resolve(b)));
        let ranks = KeyRanks::from_sorted(&sorted);
        Self {
            spec,
            values,
            keys,
            alt_keys: Vec::new(),
            sorted,
            ranks,
        }
    }

    /// The key spec the table renders.
    pub fn spec(&self) -> &KeySpec {
        &self.spec
    }

    /// Append the per-alternative key rows of `tuples` (they become tuples
    /// `self.len()..self.len() + tuples.len()`), interning only what has
    /// not been seen: prefixes of already-interned values are cache hits
    /// (zero renders), and only newly **distinct** key strings are
    /// rank-inserted into the resident sorted order — a merge, never a
    /// full re-sort.
    pub fn extend(&mut self, tuples: &[XTuple]) {
        let spec = self.spec.clone();
        for t in tuples {
            let row = spec.alternative_key_symbols(t, &mut self.values, &mut self.keys);
            self.alt_keys.push(row);
        }
        self.absorb_new_keys();
    }

    /// Run `f` with mutable access to the table's pools (for interning
    /// keys outside the per-alternative rows — e.g. conflict-resolved or
    /// most-probable keys), then absorb whatever new key symbols `f`
    /// interned into the sorted order and rank table.
    pub fn intern_with<R>(&mut self, f: impl FnOnce(&mut ValuePool, &mut KeyPool) -> R) -> R {
        let out = f(&mut self.values, &mut self.keys);
        self.absorb_new_keys();
        out
    }

    /// Drop the per-tuple rows but keep the warm pools, sorted order and
    /// rank table — re-keying a different corpus over the same spec then
    /// renders only values never seen before.
    pub fn clear_rows(&mut self) {
        self.alt_keys.clear();
    }

    /// Rank-insert every key symbol interned since the last absorb:
    /// the new symbols are sorted among themselves and merged with the
    /// resident order (distinct strings — no ties), then the dense rank
    /// array is rebuilt in `O(len)`.
    fn absorb_new_keys(&mut self) {
        let known = self.sorted.len();
        if known == self.keys.len() {
            return;
        }
        let mut fresh: Vec<KeySymbol> = self.keys.iter().skip(known).map(|(k, _)| k).collect();
        fresh.sort_unstable_by(|&a, &b| self.keys.resolve(a).cmp(self.keys.resolve(b)));
        let old = std::mem::take(&mut self.sorted);
        let mut merged = Vec::with_capacity(old.len() + fresh.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < fresh.len() {
            if self.keys.resolve(old[i]) <= self.keys.resolve(fresh[j]) {
                merged.push(old[i]);
                i += 1;
            } else {
                merged.push(fresh[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend_from_slice(&fresh[j..]);
        self.sorted = merged;
        self.ranks = KeyRanks::from_sorted(&self.sorted);
    }

    /// Number of tuples the table covers.
    pub fn len(&self) -> usize {
        self.alt_keys.len()
    }

    /// Whether the table covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.alt_keys.is_empty()
    }

    /// The per-alternative key symbols of tuple `i` (interned twin of
    /// [`KeySpec::alternative_keys`]).
    #[inline]
    pub fn alternative_keys(&self, i: usize) -> &[KeySymbol] {
        &self.alt_keys[i]
    }

    /// The lexicographic rank of `k`: sorting entries by rank is
    /// byte-identical to sorting by key string.
    #[inline]
    pub fn rank(&self, k: KeySymbol) -> u32 {
        self.ranks.rank(k)
    }

    /// The rank table itself.
    pub fn ranks(&self) -> &KeyRanks {
        &self.ranks
    }

    /// The rendered key string behind a symbol (inspection views only —
    /// the hot paths never call this).
    #[inline]
    pub fn resolve(&self, k: KeySymbol) -> &str {
        self.keys.resolve(k)
    }

    /// The key pool backing this table.
    pub fn key_pool(&self) -> &KeyPool {
        &self.keys
    }

    /// The value pool backing this table (key-attribute values only).
    pub fn value_pool(&self) -> &ValuePool {
        &self.values
    }

    /// How many key-prefix renders (prefix-cache misses reading a value's
    /// text — see [`KeyPool::render_count`]) building this table has cost.
    /// Flat outside growth operations: multi-pass consumers assert it
    /// stays put across passes, and sessions assert a warm rerun (or an
    /// [`extend`](Self::extend) over already-seen values) adds zero.
    pub fn render_count(&self) -> u64 {
        self.keys.render_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::schema::Schema;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn spec() -> KeySpec {
        KeySpec::paper_example(0, 1)
    }

    #[test]
    fn certain_key_construction() {
        let john = Value::from("John");
        let pilot = Value::from("pilot");
        let outcomes = [Some(&john), Some(&pilot)];
        assert_eq!(spec().key_of_outcomes(&outcomes), "Johpi");
    }

    #[test]
    fn null_renders_empty() {
        // Fig. 13: t43's alternative (John, ⊥) → key "Joh".
        let john = Value::from("John");
        let outcomes: [Option<&Value>; 2] = [Some(&john), None];
        assert_eq!(spec().key_of_outcomes(&outcomes), "Joh");
    }

    #[test]
    fn key_distribution_merges_equal_keys() {
        // mu* ≈ uniform over {musician, museum guide}: both render "mu".
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let values = vec![PValue::certain("Johan"), mu];
        let dist = spec().key_distribution(&values);
        assert_eq!(dist, vec![("Johmu".to_string(), 1.0)]);
    }

    #[test]
    fn key_distribution_includes_null_branch() {
        // job = {pilot: 0.6, ⊥: 0.4} → keys "Johpi" 0.6, "Joh" 0.4.
        let values = vec![
            PValue::certain("John"),
            PValue::categorical([("pilot", 0.6)]).unwrap(),
        ];
        let mut dist = spec().key_distribution(&values);
        dist.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].0, "Joh");
        assert!((dist[0].1 - 0.4).abs() < 1e-12);
        assert_eq!(dist[1].0, "Johpi");
        assert!((dist[1].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fig13_xtuple_keys() {
        let s = schema();
        // t31: (John, pilot):0.7 | (Johan, mu*):0.3 → Johpi 0.7, Johmu 0.3.
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let t31 = XTuple::builder(&s)
            .alt(0.7, ["John", "pilot"])
            .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
            .build()
            .unwrap();
        let mut keys = spec().xtuple_keys(&t31);
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, "Johmu");
        assert!((keys[0].1 - 0.3).abs() < 1e-12);
        assert_eq!(keys[1].0, "Johpi");
        assert!((keys[1].1 - 0.7).abs() < 1e-12);

        // t43: (John, ⊥):0.2 | (Sean, pilot):0.6 → Joh 0.2, Seapi 0.6
        // (masses sum to p(t) = 0.8, as printed in Fig. 13).
        let t43 = XTuple::builder(&s)
            .alt(0.2, [Value::from("John"), Value::Null])
            .alt(0.6, ["Sean", "pilot"])
            .build()
            .unwrap();
        let mut keys = spec().xtuple_keys(&t43);
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(keys[0], ("Joh".to_string(), 0.2));
        assert_eq!(keys[1].0, "Seapi");
        assert!((keys[1].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fig13_t41_certain_key_despite_two_alternatives() {
        // t41: (John, pilot):0.8 | (Johan, pianist):0.2 — both render
        // "Johpi": "t41 has a certain key value despite of having two
        // alternative tuples."
        let s = schema();
        let t41 = XTuple::builder(&s)
            .alt(0.8, ["John", "pilot"])
            .alt(0.2, ["Johan", "pianist"])
            .build()
            .unwrap();
        let keys = spec().xtuple_keys(&t41);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0, "Johpi");
        assert!((keys[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_probable_key() {
        let s = schema();
        let t32 = XTuple::builder(&s)
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .build()
            .unwrap();
        // Keys: Timme 0.3, Jimme 0.2, Jimba 0.4 → most probable "Jimba".
        assert_eq!(spec().most_probable_key(&t32), "Jimba");
    }

    #[test]
    fn alternative_keys_fig11() {
        let s = schema();
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let t31 = XTuple::builder(&s)
            .alt(0.7, ["John", "pilot"])
            .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
            .build()
            .unwrap();
        // Fig. 11: t31 contributes keys Johpi and Johmu.
        assert_eq!(spec().alternative_keys(&t31), vec!["Johpi", "Johmu"]);
    }

    #[test]
    fn full_part_takes_whole_value() {
        let spec = KeySpec::new(vec![KeyPart::full(0)]);
        let values = vec![PValue::certain("Johannes"), PValue::certain("x")];
        assert_eq!(
            spec.key_distribution(&values),
            vec![("Johannes".into(), 1.0)]
        );
    }

    #[test]
    fn expansion_guard_truncates() {
        let spec =
            KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(1, 3)]).with_max_expansion(2);
        let a = PValue::categorical([("aaa", 0.3), ("bbb", 0.3), ("ccc", 0.4)]).unwrap();
        let b = PValue::categorical([("xxx", 0.5), ("yyy", 0.5)]).unwrap();
        let dist = spec.key_distribution(&[a, b]);
        assert!(dist.len() <= 2);
    }

    #[test]
    fn key_table_matches_string_alternative_keys() {
        let s = schema();
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let tuples = vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ];
        let spec = spec();
        let table = spec.key_table(&tuples);
        for (i, t) in tuples.iter().enumerate() {
            let strings = spec.alternative_keys(t);
            let resolved: Vec<&str> = table
                .alternative_keys(i)
                .iter()
                .map(|&k| table.resolve(k))
                .collect();
            assert_eq!(resolved, strings);
        }
        // Rendering happened at build time and is bounded by distinct
        // (value, len) pairs, not by tuples × parts.
        assert!(table.render_count() > 0);
        let before = table.render_count();
        let _ = table.alternative_keys(0);
        let _ = table.rank(table.alternative_keys(1)[0]);
        assert_eq!(table.render_count(), before, "reads must not render");
    }

    #[test]
    fn xtuple_key_symbols_match_string_path() {
        let s = schema();
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let t31 = XTuple::builder(&s)
            .alt(0.7, ["John", "pilot"])
            .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
            .build()
            .unwrap();
        let spec = spec();
        let mut vp = ValuePool::new();
        let mut kp = KeyPool::new();
        let symbolic = spec.xtuple_key_symbols(&t31, &mut vp, &mut kp);
        let strings = spec.xtuple_keys(&t31);
        assert_eq!(symbolic.len(), strings.len());
        for ((k, p), (sk, sp)) in symbolic.iter().zip(&strings) {
            assert_eq!(kp.resolve(*k), sk);
            assert!((p - sp).abs() < 1e-15);
        }
        let mpk = spec.most_probable_key_symbol(&t31, &mut vp, &mut kp);
        assert_eq!(kp.resolve(mpk), spec.most_probable_key(&t31));
    }

    #[test]
    fn extended_table_matches_batch_build() {
        let s = schema();
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let tuples: Vec<XTuple> = vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(1.0, ["Tim", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(1.0, ["John", "pianist"])
                .build()
                .unwrap(),
        ];
        let spec = spec();
        let batch = spec.key_table(&tuples);
        // Grow in three uneven steps; keys, rank order and resolved
        // strings must match the one-shot build exactly.
        let mut grown = KeyTable::empty(spec.clone());
        grown.extend(&tuples[..1]);
        grown.extend(&tuples[1..3]);
        grown.extend(&tuples[3..]);
        assert_eq!(grown.len(), batch.len());
        for i in 0..tuples.len() {
            let b: Vec<&str> = batch
                .alternative_keys(i)
                .iter()
                .map(|&k| batch.resolve(k))
                .collect();
            let g: Vec<&str> = grown
                .alternative_keys(i)
                .iter()
                .map(|&k| grown.resolve(k))
                .collect();
            assert_eq!(b, g, "tuple {i}");
        }
        // Rank order agrees with string order after growth.
        let mut syms: Vec<KeySymbol> = (0..tuples.len())
            .flat_map(|i| grown.alternative_keys(i).to_vec())
            .collect();
        let mut by_rank = syms.clone();
        by_rank.sort_by_key(|&k| grown.rank(k));
        syms.sort_by(|&a, &b| grown.resolve(a).cmp(grown.resolve(b)));
        assert_eq!(by_rank, syms);
        // Extending with already-seen values renders nothing new.
        let before = grown.render_count();
        grown.extend(&tuples[2..3]);
        assert_eq!(grown.render_count(), before, "warm extend must not render");
        assert_eq!(grown.len(), tuples.len() + 1);
    }

    #[test]
    fn clear_rows_keeps_warm_pools() {
        let s = schema();
        let tuples: Vec<XTuple> = [("John", "pilot"), ("Tim", "mechanic")]
            .iter()
            .map(|(n, j)| XTuple::builder(&s).alt(1.0, [*n, *j]).build().unwrap())
            .collect();
        let mut table = spec().key_table(&tuples);
        let renders = table.render_count();
        table.clear_rows();
        assert_eq!(table.len(), 0);
        table.extend(&tuples);
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.render_count(),
            renders,
            "re-keying seen values is free"
        );
    }

    #[test]
    fn intern_with_ranks_external_keys() {
        let mut table = spec().key_table(&[]);
        let k = table.intern_with(|_, keys| keys.intern_str("Zzz"));
        assert_eq!(table.resolve(k), "Zzz");
        // The externally interned key participates in the rank order.
        let k2 = table.intern_with(|_, keys| keys.intern_str("Aaa"));
        assert!(table.rank(k2) < table.rank(k));
    }

    #[test]
    fn rank_order_matches_string_order_on_table() {
        let s = schema();
        let tuples: Vec<XTuple> = [("John", "pilot"), ("Jim", "baker"), ("Łukasz", "pilot")]
            .iter()
            .map(|(n, j)| XTuple::builder(&s).alt(1.0, [*n, *j]).build().unwrap())
            .collect();
        let spec = spec();
        let table = spec.key_table(&tuples);
        let mut syms: Vec<KeySymbol> = (0..tuples.len())
            .flat_map(|i| table.alternative_keys(i).to_vec())
            .collect();
        let mut by_rank = syms.clone();
        by_rank.sort_by_key(|&k| table.rank(k));
        syms.sort_by(|&a, &b| table.resolve(a).cmp(table.resolve(b)));
        assert_eq!(by_rank, syms);
    }

    #[test]
    fn unreferenced_attributes_ignored() {
        let spec = KeySpec::new(vec![KeyPart::prefix(1, 2)]);
        let values = vec![
            PValue::categorical([("many", 0.5), ("keys", 0.5)]).unwrap(),
            PValue::certain("pilot"),
        ];
        // Only attribute 1 matters: a single certain key.
        assert_eq!(spec.key_distribution(&values), vec![("pi".into(), 1.0)]);
    }
}
