//! Candidate pairs and the executed-matching matrix of Fig. 12.

use probdedup_model::util::FxHashSet;

/// A triangular bit matrix over `n` tuples recording which matchings have
/// already been executed — the paper's Fig. 12 device for avoiding repeated
/// comparisons when the same tuple pair meets in several windows, blocks or
/// passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMatrix {
    n: usize,
    bits: Vec<u64>,
}

impl PairMatrix {
    /// An empty matrix over `n` tuples.
    pub fn new(n: usize) -> Self {
        let cells = n.saturating_mul(n.saturating_sub(1)) / 2;
        Self {
            n,
            bits: vec![0; cells.div_ceil(64)],
        }
    }

    /// Number of tuples the matrix ranges over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Linear index of the unordered pair `(i, j)`, `i ≠ j`.
    fn index(&self, i: usize, j: usize) -> usize {
        assert!(i != j, "self-pairs are meaningless in duplicate detection");
        assert!(
            i < self.n && j < self.n,
            "pair ({i},{j}) out of range {0}",
            self.n
        );
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        // Row-wise triangular layout: row `lo` starts after all previous rows.
        lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Record the pair; returns `true` if it was **new** (not yet executed).
    pub fn insert(&mut self, i: usize, j: usize) -> bool {
        let idx = self.index(i, j);
        let (word, bit) = (idx / 64, idx % 64);
        let mask = 1u64 << bit;
        let new = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        new
    }

    /// Whether the pair has been recorded.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        let idx = self.index(i, j);
        self.bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// An ordered, deduplicated set of candidate pairs over tuple indices
/// `0..n` of a combined relation. Insertion order is preserved (figures and
/// tests depend on it); duplicates are suppressed with a [`PairMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePairs {
    pairs: Vec<(usize, usize)>,
    seen: PairMatrix,
}

impl CandidatePairs {
    /// An empty set over `n` tuples.
    pub fn new(n: usize) -> Self {
        Self {
            pairs: Vec::new(),
            seen: PairMatrix::new(n),
        }
    }

    /// The complete candidate set: all `n·(n−1)/2` unordered pairs in
    /// canonical `(lo, hi)` row order — the quadratic baseline the paper
    /// calls "mostly too inefficient", used by the pipeline's `Full`
    /// strategy and as the reference set for reduction metrics.
    pub fn full(n: usize) -> Self {
        let mut pairs = Self::new(n);
        pairs
            .pairs
            .reserve(n.saturating_mul(n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.insert(i, j);
            }
        }
        pairs
    }

    /// Insert the unordered pair `(i, j)`; returns `true` if it was new.
    /// Self-pairs are ignored (returns `false`).
    pub fn insert(&mut self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        if self.seen.insert(lo, hi) {
            self.pairs.push((lo, hi));
            true
        } else {
            false
        }
    }

    /// The pairs in first-insertion order, canonicalized as `(lo, hi)`.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Whether `(i, j)` is present.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i != j && self.seen.contains(i, j)
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were generated.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of tuples the set ranges over.
    pub fn universe(&self) -> usize {
        self.seen.len()
    }

    /// Merge another pair set over the same universe into this one
    /// (used by multi-pass methods).
    pub fn absorb(&mut self, other: &CandidatePairs) {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        for &(i, j) in other.pairs() {
            self.insert(i, j);
        }
    }

    /// Reduction ratio against the full comparison space:
    /// `1 − |candidates| / (n·(n−1)/2)`.
    pub fn reduction_ratio(&self) -> f64 {
        let n = self.universe();
        let total = n * n.saturating_sub(1) / 2;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.len() as f64 / total as f64
    }
}

/// A sparse executed-matching set: the out-of-core replacement for
/// [`PairMatrix`].
///
/// The triangular bit matrix is the right tool while `n·(n−1)/2` bits fit
/// in RAM, but at 10⁵–10⁶ tuples it costs gigabytes even when reduction
/// leaves only millions of candidates. `SparsePairSet` stores each seen
/// pair as one packed `u64` (`lo` in the high 32 bits, `hi` in the low
/// 32), so memory scales with the number of **distinct pairs actually
/// emitted**, not with the universe. Semantics match [`PairMatrix`]:
/// unordered pairs, self-pairs rejected, `insert` reports newness.
///
/// The `u32` packing caps the universe at `u32::MAX` tuples — comfortably
/// above the 10⁶-class corpora the sharded pipeline targets; `insert`
/// asserts the bound.
#[derive(Debug, Default, Clone)]
pub struct SparsePairSet {
    seen: FxHashSet<u64>,
}

impl SparsePairSet {
    /// An empty set. No universe size is needed up front — that is the
    /// point.
    pub fn new() -> Self {
        Self::default()
    }

    fn pack(i: usize, j: usize) -> u64 {
        assert!(i != j, "self-pairs are meaningless in duplicate detection");
        assert!(
            i <= u32::MAX as usize && j <= u32::MAX as usize,
            "SparsePairSet packs indices into u32s; ({i},{j}) out of range"
        );
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        (lo as u64) << 32 | hi as u64
    }

    /// Record the unordered pair; returns `true` if it was new.
    pub fn insert(&mut self, i: usize, j: usize) -> bool {
        self.seen.insert(Self::pack(i, j))
    }

    /// Whether the pair has been recorded.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.seen.contains(&Self::pack(i, j))
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_matrix_suppresses_repeats() {
        // The Fig. 11/12 walkthrough: (t32,t43) executed once although the
        // window produces it twice.
        let mut m = PairMatrix::new(5);
        assert!(m.insert(1, 4)); // first time: execute
        assert!(!m.insert(4, 1)); // repeat in either order: suppressed
        assert!(m.contains(1, 4));
        assert!(!m.contains(0, 1));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn matrix_indexing_is_bijective() {
        let n = 13;
        let mut m = PairMatrix::new(n);
        let mut inserted = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(m.insert(i, j), "({i},{j}) collided");
                inserted += 1;
                assert_eq!(m.count(), inserted);
            }
        }
        assert_eq!(inserted, n * (n - 1) / 2);
    }

    #[test]
    #[should_panic(expected = "self-pairs")]
    fn self_pair_panics() {
        let mut m = PairMatrix::new(3);
        m.insert(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut m = PairMatrix::new(3);
        m.insert(0, 3);
    }

    #[test]
    fn candidate_pairs_dedup_and_order() {
        let mut c = CandidatePairs::new(4);
        assert!(c.insert(2, 0));
        assert!(c.insert(1, 3));
        assert!(!c.insert(0, 2)); // duplicate, either orientation
        assert!(!c.insert(1, 1)); // self-pair ignored
        assert_eq!(c.pairs(), &[(0, 2), (1, 3)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(3, 1));
        assert!(!c.contains(0, 1));
        assert!(!c.contains(2, 2));
    }

    #[test]
    fn absorb_unions_pair_sets() {
        let mut a = CandidatePairs::new(4);
        a.insert(0, 1);
        let mut b = CandidatePairs::new(4);
        b.insert(0, 1);
        b.insert(2, 3);
        a.absorb(&b);
        assert_eq!(a.pairs(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn reduction_ratio() {
        let mut c = CandidatePairs::new(5); // 10 total pairs
        c.insert(0, 1);
        c.insert(2, 3);
        assert!((c.reduction_ratio() - 0.8).abs() < 1e-12);
        let empty = CandidatePairs::new(0);
        assert_eq!(empty.reduction_ratio(), 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = PairMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn sparse_set_agrees_with_matrix() {
        let n = 17;
        let mut matrix = PairMatrix::new(n);
        let mut sparse = SparsePairSet::new();
        // A deterministic scatter of insertions in mixed orientations.
        let mut x = 7usize;
        for _ in 0..200 {
            x = (x * 31 + 11) % (n * n);
            let (i, j) = (x / n, x % n);
            if i == j {
                continue;
            }
            assert_eq!(sparse.insert(i, j), matrix.insert(i, j), "({i},{j})");
            assert!(sparse.contains(j, i));
        }
        assert_eq!(sparse.len(), matrix.count());
        assert!(!sparse.is_empty());
    }

    #[test]
    #[should_panic(expected = "self-pairs")]
    fn sparse_self_pair_panics() {
        let mut s = SparsePairSet::new();
        s.insert(4, 4);
    }
}
