//! Multi-pass SNM over possible worlds (Section V-A.1 / Figs. 8–9).
//!
//! Each pass fixes one possible world (only worlds **containing all
//! tuples** matter — tuple membership must not influence dedup, and every
//! tuple needs a key), creates certain key values for it, runs the sorted
//! neighborhood method, and the passes' matchings are unioned.
//!
//! Enumerating *all* worlds is usually prohibitive; the paper suggests a
//! small set of **highly probable and pairwise dissimilar** worlds, because
//! the top-probability worlds tend to be near-identical and yield redundant
//! passes. [`WorldSelection`] offers all three policies; the E3 experiment
//! measures their trade-off.
//!
//! Keys are computed **once** into an interned [`KeyTable`] before the
//! first pass: every later pass only picks each tuple's chosen-alternative
//! key symbol and sorts by precomputed lexicographic rank — sort-only,
//! zero key renders, zero allocation per entry. The string-rendering
//! implementation is retained as [`multipass_snm_oracle`] and
//! property-tested to produce identical candidate pairs and pass orders.

use probdedup_model::world::{full_worlds, top_k_worlds, World};
use probdedup_model::xtuple::XTuple;

use crate::key::{KeySpec, KeyTable};
use crate::pairs::CandidatePairs;
use crate::snm::{sorted_neighborhood, sorted_neighborhood_interned, InternedSnmEntry, SnmEntry};

/// Which possible worlds the passes run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldSelection {
    /// Every world containing all tuples, up to `limit` (errors … no:
    /// silently stops at the limit; use with care, the count is the product
    /// of alternative counts).
    All {
        /// Hard cap on enumerated full worlds.
        limit: usize,
    },
    /// The `k` most probable full worlds.
    TopK(usize),
    /// `k` pairwise-dissimilar worlds greedily selected from the `pool`
    /// most probable full worlds (maximize the minimum distance to the
    /// already-selected set; ties toward higher probability). This is the
    /// paper's "highly probable and pairwise dissimilar" policy.
    DiverseTopK {
        /// Number of passes.
        k: usize,
        /// Size of the probability-ranked candidate pool.
        pool: usize,
    },
}

/// Result of a multi-pass run: the unioned pairs plus each pass's world and
/// sorted order (Fig. 9 prints them).
#[derive(Debug, Clone)]
pub struct MultipassResult {
    /// Union of all passes' candidate pairs.
    pub pairs: CandidatePairs,
    /// Per pass: the world and the sorted key entries of that pass.
    pub passes: Vec<(World, Vec<SnmEntry>)>,
}

/// Greedy max-min-distance selection of `k` worlds from `pool` (shared
/// with multi-pass blocking).
pub(crate) fn select_diverse_worlds(mut pool: Vec<World>, k: usize) -> Vec<World> {
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    // Pool arrives probability-sorted (top_k_worlds); seed with the most
    // probable world.
    let mut selected = vec![pool.remove(0)];
    while selected.len() < k && !pool.is_empty() {
        let (best_idx, _) = pool
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let min_dist = selected
                    .iter()
                    .map(|s| w.distance(s))
                    .fold(f64::INFINITY, f64::min);
                (i, min_dist)
            })
            // max by (distance, probability); pool order encodes probability
            // rank, so earlier index wins ties.
            .max_by(|(ia, da), (ib, db)| {
                da.partial_cmp(db)
                    .expect("finite distances")
                    .then(ib.cmp(ia))
            })
            .expect("pool non-empty");
        selected.push(pool.remove(best_idx));
    }
    selected
}

/// Key entries of one world: each tuple's key from its chosen alternative
/// (uncertain values inside the alternative resolve to their most probable
/// rendered prefix). String path — used by the oracle.
fn world_entries(tuples: &[XTuple], world: &World, spec: &KeySpec) -> Vec<SnmEntry> {
    debug_assert!(
        world.is_full(),
        "multi-pass uses worlds containing all tuples"
    );
    tuples
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let alt = world.choices[i].expect("full world");
            // Reuse the per-alternative key logic on a single alternative.
            let keys = spec.alternative_keys(t);
            SnmEntry::new(keys[alt].clone(), i)
        })
        .collect()
}

/// Interned key entries of one world off a prebuilt [`KeyTable`]: a table
/// lookup per tuple, no rendering.
fn world_entries_interned(table: &KeyTable, world: &World) -> Vec<InternedSnmEntry> {
    debug_assert!(
        world.is_full(),
        "multi-pass uses worlds containing all tuples"
    );
    (0..table.len())
        .map(|i| {
            let alt = world.choices[i].expect("full world");
            InternedSnmEntry::new(table.alternative_keys(i)[alt], i)
        })
        .collect()
}

/// Resolve a [`WorldSelection`] to concrete worlds (shared with the
/// blocking module so SNM and blocking can never drift apart on policy).
pub(crate) fn select_worlds(tuples: &[XTuple], selection: WorldSelection) -> Vec<World> {
    match selection {
        WorldSelection::All { limit } => full_worlds(tuples).take(limit).collect(),
        WorldSelection::TopK(k) => top_k_worlds(tuples, k, true),
        WorldSelection::DiverseTopK { k, pool } => {
            select_diverse_worlds(top_k_worlds(tuples, pool.max(k), true), k)
        }
    }
}

/// Multi-pass SNM over possible worlds of `tuples`.
///
/// The key table is interned once up front; each pass is then a rank sort
/// plus windowing ([`sorted_neighborhood_interned`]) — passes ≥ 2 perform
/// **zero** key renders (asserted by the property tests via
/// [`KeyTable::render_count`]). The per-pass [`SnmEntry`] strings in the
/// result are resolved from the pool for figures and tests; use
/// [`multipass_snm_pairs`] when only the candidate set matters.
pub fn multipass_snm(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    selection: WorldSelection,
) -> MultipassResult {
    let worlds = select_worlds(tuples, selection);
    let table = spec.key_table(tuples);
    let mut pairs = CandidatePairs::new(tuples.len());
    let mut passes = Vec::with_capacity(worlds.len());
    for world in worlds {
        let entries = world_entries_interned(&table, &world);
        let (pass_pairs, order) =
            sorted_neighborhood_interned(entries, table.ranks(), window, tuples.len(), false);
        pairs.absorb(&pass_pairs);
        let order: Vec<SnmEntry> = order
            .iter()
            .map(|e| SnmEntry::new(table.resolve(e.key), e.tuple))
            .collect();
        passes.push((world, order));
    }
    MultipassResult { pairs, passes }
}

/// [`multipass_snm`] without materializing the per-pass inspection views:
/// the lean path the pipeline and benchmarks use — after the key table is
/// built, each pass allocates nothing but its entry vector.
pub fn multipass_snm_pairs(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    selection: WorldSelection,
) -> CandidatePairs {
    multipass_snm_with_table(tuples, &spec.key_table(tuples), window, selection)
}

/// Multi-pass SNM with a caller-supplied [`KeyTable`] — lets callers reuse
/// one table across several window sizes or selections, and lets tests
/// observe the render counter across passes.
pub fn multipass_snm_with_table(
    tuples: &[XTuple],
    table: &KeyTable,
    window: usize,
    selection: WorldSelection,
) -> CandidatePairs {
    let worlds = select_worlds(tuples, selection);
    let mut pairs = CandidatePairs::new(tuples.len());
    for world in worlds {
        let entries = world_entries_interned(table, &world);
        let (pass_pairs, _) =
            sorted_neighborhood_interned(entries, table.ranks(), window, tuples.len(), false);
        pairs.absorb(&pass_pairs);
    }
    pairs
}

/// String-path oracle of [`multipass_snm`]: renders every tuple's key in
/// **every pass** — exactly the per-pass allocation the interned path
/// removes. Retained for property testing.
pub fn multipass_snm_oracle(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    selection: WorldSelection,
) -> MultipassResult {
    let worlds = select_worlds(tuples, selection);
    let mut pairs = CandidatePairs::new(tuples.len());
    let mut passes = Vec::with_capacity(worlds.len());
    for world in worlds {
        let entries = world_entries(tuples, &world, spec);
        let (pass_pairs, order) = sorted_neighborhood(entries, window, tuples.len(), false);
        pairs.absorb(&pass_pairs);
        passes.push((world, order));
    }
    MultipassResult { pairs, passes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// The paper's ℛ34 = ℛ3 ∪ ℛ4 (Fig. 5), tuple indices:
    /// 0 = t31, 1 = t32, 2 = t41, 3 = t42, 4 = t43.
    pub(crate) fn r34() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .label("t31")
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .label("t32")
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .label("t41")
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .label("t42")
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .label("t43")
                .build()
                .unwrap(),
        ]
    }

    fn spec() -> KeySpec {
        KeySpec::paper_example(0, 1)
    }

    /// Fig. 9 (left): world I1 = (John pilot, Tim mechanic, Johan pianist,
    /// Tom mechanic, Sean pilot) sorts as Johpi(t31), Johpi(t41),
    /// Seapi(t43), Timme(t32), Tomme(t42).
    ///
    /// NOTE: Fig. 8 prints t41 = (Johan, pianist) in I1; under our key that
    /// gives "Johpi" as well (Joha→Joh + pi), matching Fig. 9's key list.
    #[test]
    fn fig9_world_orders() {
        let tuples = r34();
        // Enumerate all full worlds; find I1's choices:
        // t31 = John/pilot (0), t32 = Tim/mechanic (0), t41 = Johan/pianist (1),
        // t42 = Tom/mechanic (0), t43 = Sean/pilot (1).
        let world = World {
            choices: vec![Some(0), Some(0), Some(1), Some(0), Some(1)],
            probability: 0.7 * 0.3 * 0.2 * 0.8 * 0.6,
        };
        let entries = world_entries(&tuples, &world, &spec());
        let (_, order) = sorted_neighborhood(entries, 2, 5, false);
        let keys: Vec<(&str, usize)> = order.iter().map(|e| (e.key.as_str(), e.tuple)).collect();
        assert_eq!(
            keys,
            vec![
                ("Johpi", 0), // t31
                ("Johpi", 2), // t41
                ("Seapi", 4), // t43
                ("Timme", 1), // t32
                ("Tomme", 3), // t42
            ]
        );

        // Fig. 9 (right): world I2 = (Johan mu*, Jim mechanic, John pilot,
        // Tom mechanic, John ⊥) sorts as Jimme(t32), Joh(t43), Johmu(t31),
        // Johpi(t41), Tomme(t42).
        let world2 = World {
            choices: vec![Some(1), Some(1), Some(0), Some(0), Some(0)],
            probability: 0.3 * 0.2 * 0.8 * 0.8 * 0.2,
        };
        let entries2 = world_entries(&tuples, &world2, &spec());
        let (_, order2) = sorted_neighborhood(entries2, 2, 5, false);
        let keys2: Vec<(&str, usize)> = order2.iter().map(|e| (e.key.as_str(), e.tuple)).collect();
        assert_eq!(
            keys2,
            vec![
                ("Jimme", 1),
                ("Joh", 4),
                ("Johmu", 0),
                ("Johpi", 2),
                ("Tomme", 3),
            ]
        );
    }

    #[test]
    fn all_worlds_union_dominates_top_k() {
        let tuples = r34();
        let all = multipass_snm(&tuples, &spec(), 2, WorldSelection::All { limit: 10_000 });
        let top1 = multipass_snm(&tuples, &spec(), 2, WorldSelection::TopK(1));
        assert!(top1.pairs.len() <= all.pairs.len());
        for &(i, j) in top1.pairs.pairs() {
            assert!(all.pairs.contains(i, j));
        }
        // ℛ34 full worlds: 2·3·2·1·2 = 24 passes.
        assert_eq!(all.passes.len(), 24);
    }

    #[test]
    fn diverse_selection_differs_from_plain_top_k() {
        let tuples = r34();
        let top = multipass_snm(&tuples, &spec(), 2, WorldSelection::TopK(3));
        let diverse = multipass_snm(
            &tuples,
            &spec(),
            2,
            WorldSelection::DiverseTopK { k: 3, pool: 24 },
        );
        assert_eq!(top.passes.len(), 3);
        assert_eq!(diverse.passes.len(), 3);
        // The diverse policy must not pick three near-identical worlds: its
        // minimum pairwise distance is at least that of the plain top-3.
        let min_dist = |passes: &[(World, Vec<SnmEntry>)]| -> f64 {
            let mut d = f64::INFINITY;
            for i in 0..passes.len() {
                for j in (i + 1)..passes.len() {
                    d = d.min(passes[i].0.distance(&passes[j].0));
                }
            }
            d
        };
        assert!(min_dist(&diverse.passes) >= min_dist(&top.passes) - 1e-12);
        // Both start from the most probable world.
        assert_eq!(top.passes[0].0.choices, diverse.passes[0].0.choices);
    }

    #[test]
    fn single_certain_world() {
        let s = Schema::new(["name", "job"]);
        let tuples = vec![
            XTuple::builder(&s)
                .alt(1.0, ["John", "pilot"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(1.0, ["Johan", "pilot"])
                .build()
                .unwrap(),
        ];
        let r = multipass_snm(&tuples, &spec(), 2, WorldSelection::All { limit: 100 });
        assert_eq!(r.passes.len(), 1);
        assert_eq!(r.pairs.pairs(), &[(0, 1)]);
    }

    #[test]
    fn empty_input() {
        let r = multipass_snm(&[], &spec(), 2, WorldSelection::TopK(3));
        assert!(r.pairs.is_empty());
        // The empty tuple set has exactly one (empty) world.
        assert_eq!(r.passes.len(), 1);
    }
}
