//! Incrementally growable reduction state for persistent sessions.
//!
//! The one-shot entry points of this crate rebuild their key state from
//! scratch on every call. A persistent session (the `DedupSession` of
//! `probdedup-core`) instead keeps the state **resident** and feeds it
//! batches of tuples as they arrive:
//!
//! * [`IncrementalSnm`] — a [`KeyTable`] plus the rank-sorted entry list.
//!   Ingesting a batch interns only the new tuples' keys (cached prefix
//!   renders make already-seen values free) and **rank-inserts** the new
//!   entries into the resident sorted order — a merge against the resident
//!   rank order, never a full re-sort. [`IncrementalSnm::current_pairs`]
//!   then windows the merged list, reproducing the one-shot
//!   sorted-neighborhood candidate order byte for byte.
//! * [`IncrementalRankedSnm`] — the probabilistic-ranking flavour
//!   (Section V-A.4): per-tuple rank scores are corpus-independent, so new
//!   tuples binary-insert into the resident ranked order.
//! * [`IncrementalBlocks`] — resident symbol-keyed blocks: each new tuple
//!   joins its blocks with one integer-keyed probe per key;
//!   [`IncrementalBlocks::current_pairs`] emits within-block pairs in
//!   sorted-key order, identical to the one-shot blocking output.
//!
//! All three share a contract with their one-shot twins, property-tested
//! in this module and end-to-end in `tests/`: ingesting a corpus in **any
//! batch split** yields the same candidate pairs, in the same order, as
//! one batch call — and re-ingesting values the pools have already seen
//! performs **zero** key renders (asserted via
//! [`KeyTable::render_count`]).

use probdedup_model::intern::KeySymbol;
use probdedup_model::util::FxHashMap;
use probdedup_model::xtuple::XTuple;

use crate::blocking::{emit_block_pairs, Block};
use crate::conflict::{resolve_key_symbol, ConflictResolution};
use crate::key::{KeySpec, KeyTable};
use crate::pairs::CandidatePairs;
use crate::ranking::{rank_score, RankingFunction};
use crate::snm::{windowed_pairs, InternedSnmEntry};

/// How each tuple contributes sorted-neighborhood entries (the
/// world-independent SNM flavours; multi-pass-over-worlds regenerates per
/// pass from the shared [`KeyTable`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnmKeying {
    /// One entry per alternative key (sorting alternatives, Fig. 11),
    /// windowed with the adjacent-same-tuple omission rule.
    PerAlternative,
    /// One entry per tuple: its conflict-resolved certain key (Fig. 10).
    Resolved(ConflictResolution),
}

/// Persistent sorted-neighborhood state: the warm [`KeyTable`] and the
/// entry list kept sorted by `(key string, tuple)` across ingests.
#[derive(Debug, Clone)]
pub struct IncrementalSnm {
    table: KeyTable,
    keying: SnmKeying,
    window: usize,
    /// Sorted by `(resolved key, tuple)`, stable by arrival order —
    /// exactly the order a one-shot stable sort of all entries produces.
    entries: Vec<InternedSnmEntry>,
    n_tuples: usize,
}

impl IncrementalSnm {
    /// Empty state for `spec`; grow with [`IncrementalSnm::ingest`].
    pub fn new(spec: KeySpec, keying: SnmKeying, window: usize) -> Self {
        Self {
            table: KeyTable::empty(spec),
            keying,
            window,
            entries: Vec::new(),
            n_tuples: 0,
        }
    }

    /// Rebuild state around a warm table restored from a snapshot (no
    /// rows yet — the caller re-ingests the resident corpus, which is
    /// render-free against the restored pools).
    pub fn with_table(table: KeyTable, keying: SnmKeying, window: usize) -> Self {
        Self {
            table,
            keying,
            window,
            entries: Vec::new(),
            n_tuples: 0,
        }
    }

    /// The warm key table (snapshot export).
    pub fn table(&self) -> &KeyTable {
        &self.table
    }

    /// Number of tuples ingested so far.
    pub fn len(&self) -> usize {
        self.n_tuples
    }

    /// Whether no tuples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.n_tuples == 0
    }

    /// Key renders performed since construction (flat across ingests of
    /// already-seen values).
    pub fn render_count(&self) -> u64 {
        self.table.render_count()
    }

    /// Ingest `tuples` as combined rows `start..start + tuples.len()`:
    /// intern their keys into the warm table and rank-insert the new
    /// entries into the resident sorted order (a linear merge — the
    /// resident list is never re-sorted).
    pub fn ingest(&mut self, tuples: &[XTuple], start: usize) {
        debug_assert_eq!(start, self.n_tuples, "batches must arrive in row order");
        let mut fresh: Vec<InternedSnmEntry> = Vec::new();
        match self.keying {
            SnmKeying::PerAlternative => {
                self.table.extend(tuples);
                for (offset, _) in tuples.iter().enumerate() {
                    let i = start + offset;
                    for &key in self.table.alternative_keys(i) {
                        fresh.push(InternedSnmEntry::new(key, i));
                    }
                }
            }
            SnmKeying::Resolved(strategy) => {
                let spec = self.table.spec().clone();
                for (offset, t) in tuples.iter().enumerate() {
                    let key = self
                        .table
                        .intern_with(|vp, kp| resolve_key_symbol(t, &spec, strategy, vp, kp));
                    fresh.push(InternedSnmEntry::new(key, start + offset));
                }
            }
        }
        self.n_tuples = start + tuples.len();
        self.merge_entries(fresh);
    }

    /// Drop the per-row state (entries + table rows) but keep the warm
    /// pools, for re-keying a different corpus.
    pub fn reset_rows(&mut self) {
        self.entries.clear();
        self.table.clear_rows();
        self.n_tuples = 0;
    }

    /// The full candidate set over everything ingested so far: a window
    /// scan of the resident sorted list — byte-identical pairs, in the
    /// same order, as the one-shot method over the same corpus.
    pub fn current_pairs(&self) -> CandidatePairs {
        let skip = matches!(self.keying, SnmKeying::PerAlternative);
        windowed_pairs(&self.entries, self.window, self.n_tuples, skip)
    }

    /// Merge `fresh` (arrival order) into the resident sorted entry list.
    /// New entries sort stably among themselves and insert **after**
    /// resident ties, matching what a stable sort of the concatenated
    /// one-shot entry list produces. The table's rank array already covers
    /// every fresh key (the ingest that produced them absorbed its new
    /// symbols), so every comparison is a `(u32, usize)` integer compare —
    /// the same ordering `sorted_neighborhood_interned` sorts by.
    fn merge_entries(&mut self, mut fresh: Vec<InternedSnmEntry>) {
        if fresh.is_empty() {
            return;
        }
        let ranks = self.table.ranks();
        let sort_key = |e: &InternedSnmEntry| (ranks.rank(e.key), e.tuple);
        fresh.sort_by_key(sort_key);
        let old = std::mem::take(&mut self.entries);
        let mut merged = Vec::with_capacity(old.len() + fresh.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < fresh.len() {
            if sort_key(&old[i]) <= sort_key(&fresh[j]) {
                merged.push(old[i]);
                i += 1;
            } else {
                merged.push(fresh[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend_from_slice(&fresh[j..]);
        self.entries = merged;
    }
}

/// Persistent ranked-SNM state (Section V-A.4): tuples kept in rank-score
/// order across ingests. Scores are per-tuple, so a new tuple
/// binary-inserts without touching the resident order.
#[derive(Debug, Clone)]
pub struct IncrementalRankedSnm {
    spec: KeySpec,
    f: RankingFunction,
    window: usize,
    /// `(score, display key, tuple)` in the one-shot rank order.
    scored: Vec<(f64, String, usize)>,
}

impl IncrementalRankedSnm {
    /// Empty state; grow with [`IncrementalRankedSnm::ingest`].
    pub fn new(spec: KeySpec, f: RankingFunction, window: usize) -> Self {
        Self {
            spec,
            f,
            window,
            scored: Vec::new(),
        }
    }

    /// Number of tuples ingested so far.
    pub fn len(&self) -> usize {
        self.scored.len()
    }

    /// Whether no tuples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.scored.is_empty()
    }

    /// Ingest `tuples` as rows `start..`: score each and binary-insert
    /// into the resident ranked order.
    pub fn ingest(&mut self, tuples: &[XTuple], start: usize) {
        for (offset, t) in tuples.iter().enumerate() {
            let idx = start + offset;
            let (score, key) = rank_score(t, &self.spec, self.f);
            let pos = self.scored.partition_point(|(s, k, i)| {
                s.partial_cmp(&score)
                    .expect("finite scores")
                    .then(k.as_str().cmp(&key))
                    .then(i.cmp(&idx))
                    .is_le()
            });
            self.scored.insert(pos, (score, key, idx));
        }
    }

    /// Drop all rows (ranked scoring keeps no pools to warm).
    pub fn reset_rows(&mut self) {
        self.scored.clear();
    }

    /// The full candidate set over everything ingested so far — identical
    /// pairs and order to [`ranked_snm`](crate::ranking::ranked_snm).
    pub fn current_pairs(&self) -> CandidatePairs {
        let window = self.window.max(2);
        let n = self.scored.len();
        let mut pairs = CandidatePairs::new(n);
        for (i, (_, _, a)) in self.scored.iter().enumerate() {
            for (_, _, b) in self.scored.iter().skip(i + 1).take(window - 1) {
                pairs.insert(*a, *b);
            }
        }
        pairs
    }
}

/// How each tuple joins blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKeying {
    /// One block per alternative key (Fig. 14).
    PerAlternative,
    /// One block per tuple: its conflict-resolved certain key.
    Resolved(ConflictResolution),
}

/// Persistent blocking state: resident symbol-keyed blocks over a warm
/// [`KeyTable`]. Ingesting a tuple is one integer-keyed probe per key;
/// no key string is re-rendered, hashed or compared.
#[derive(Debug, Clone)]
pub struct IncrementalBlocks {
    table: KeyTable,
    keying: BlockKeying,
    blocks: FxHashMap<KeySymbol, Block>,
    n_tuples: usize,
}

impl IncrementalBlocks {
    /// Empty state for `spec`; grow with [`IncrementalBlocks::ingest`].
    pub fn new(spec: KeySpec, keying: BlockKeying) -> Self {
        Self {
            table: KeyTable::empty(spec),
            keying,
            blocks: FxHashMap::default(),
            n_tuples: 0,
        }
    }

    /// Rebuild state around a warm table restored from a snapshot (no
    /// rows yet — the caller re-ingests the resident corpus render-free).
    pub fn with_table(table: KeyTable, keying: BlockKeying) -> Self {
        Self {
            table,
            keying,
            blocks: FxHashMap::default(),
            n_tuples: 0,
        }
    }

    /// The warm key table (snapshot export).
    pub fn table(&self) -> &KeyTable {
        &self.table
    }

    /// Number of tuples ingested so far.
    pub fn len(&self) -> usize {
        self.n_tuples
    }

    /// Whether no tuples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.n_tuples == 0
    }

    /// Key renders performed since construction.
    pub fn render_count(&self) -> u64 {
        self.table.render_count()
    }

    /// Ingest `tuples` as combined rows `start..`: each joins the blocks
    /// of its keys (per-block membership stays deduplicated).
    pub fn ingest(&mut self, tuples: &[XTuple], start: usize) {
        debug_assert_eq!(start, self.n_tuples, "batches must arrive in row order");
        match self.keying {
            BlockKeying::PerAlternative => {
                self.table.extend(tuples);
                for (offset, _) in tuples.iter().enumerate() {
                    let i = start + offset;
                    for &key in self.table.alternative_keys(i) {
                        self.blocks.entry(key).or_default().insert(i);
                    }
                }
            }
            BlockKeying::Resolved(strategy) => {
                let spec = self.table.spec().clone();
                for (offset, t) in tuples.iter().enumerate() {
                    let key = self
                        .table
                        .intern_with(|vp, kp| resolve_key_symbol(t, &spec, strategy, vp, kp));
                    self.blocks.entry(key).or_default().insert(start + offset);
                }
            }
        }
        self.n_tuples = start + tuples.len();
    }

    /// Drop the blocks and table rows but keep the warm pools.
    pub fn reset_rows(&mut self) {
        self.blocks.clear();
        self.table.clear_rows();
        self.n_tuples = 0;
    }

    /// The full candidate set over everything ingested so far: within-block
    /// pairs in sorted-key order (by the table's integer ranks — no string
    /// is resolved) — identical pairs and order to the one-shot
    /// [`block_alternatives`](crate::blocking::block_alternatives)
    /// / [`block_conflict_resolved`](crate::blocking::block_conflict_resolved).
    pub fn current_pairs(&self) -> CandidatePairs {
        let mut order: Vec<(&KeySymbol, &Block)> = self.blocks.iter().collect();
        let ranks = self.table.ranks();
        order.sort_unstable_by_key(|(k, _)| ranks.rank(**k));
        let mut pairs = CandidatePairs::new(self.n_tuples);
        for (_, block) in order {
            emit_block_pairs(block.members(), &mut pairs);
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternatives::sorting_alternatives;
    use crate::blocking::{block_alternatives, block_conflict_resolved};
    use crate::conflict::conflict_resolved_snm;
    use crate::key::KeyPart;
    use crate::ranking::ranked_snm;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// ℛ34 plus a few extra rows so splits have room to cut.
    fn corpus() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(1.0, ["Sean", "painter"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(1.0, ["Tim", "mechanic"])
                .build()
                .unwrap(),
        ]
    }

    fn spec() -> KeySpec {
        KeySpec::paper_example(0, 1)
    }

    fn splits(n: usize) -> Vec<Vec<usize>> {
        // Batch boundaries to exercise: one shot, halves, thirds, singles.
        vec![
            vec![n],
            vec![1, n - 1],
            vec![n / 2, n - n / 2],
            vec![2, 2, n - 4],
            vec![1; n],
        ]
    }

    #[test]
    fn incremental_snm_alternatives_matches_one_shot() {
        let tuples = corpus();
        for window in [2, 3, 5] {
            let batch = sorting_alternatives(&tuples, &spec(), window).pairs;
            for split in splits(tuples.len()) {
                let mut inc = IncrementalSnm::new(spec(), SnmKeying::PerAlternative, window);
                let mut start = 0;
                for size in split {
                    inc.ingest(&tuples[start..start + size], start);
                    start += size;
                }
                assert_eq!(
                    inc.current_pairs().pairs(),
                    batch.pairs(),
                    "window {window}"
                );
            }
        }
    }

    #[test]
    fn incremental_snm_resolved_matches_one_shot() {
        let tuples = corpus();
        for strategy in [
            ConflictResolution::MostProbableAlternative,
            ConflictResolution::MostProbableKey,
            ConflictResolution::FirstAlternative,
        ] {
            let (batch, _) = conflict_resolved_snm(&tuples, &spec(), 3, strategy);
            for split in splits(tuples.len()) {
                let mut inc = IncrementalSnm::new(spec(), SnmKeying::Resolved(strategy), 3);
                let mut start = 0;
                for size in split {
                    inc.ingest(&tuples[start..start + size], start);
                    start += size;
                }
                assert_eq!(inc.current_pairs().pairs(), batch.pairs(), "{strategy:?}");
            }
        }
    }

    #[test]
    fn incremental_ranked_matches_one_shot() {
        let tuples = corpus();
        for f in [
            RankingFunction::MostProbableKey,
            RankingFunction::ExpectedScore,
        ] {
            let (batch, _) = ranked_snm(&tuples, &spec(), 3, f);
            for split in splits(tuples.len()) {
                let mut inc = IncrementalRankedSnm::new(spec(), f, 3);
                let mut start = 0;
                for size in split {
                    inc.ingest(&tuples[start..start + size], start);
                    start += size;
                }
                assert_eq!(inc.current_pairs().pairs(), batch.pairs(), "{f:?}");
            }
        }
    }

    #[test]
    fn incremental_blocks_match_one_shot() {
        let tuples = corpus();
        let fig14 = KeySpec::new(vec![KeyPart::prefix(0, 1), KeyPart::prefix(1, 1)]);
        let batch_alt = block_alternatives(&tuples, &fig14);
        let batch_res =
            block_conflict_resolved(&tuples, &fig14, ConflictResolution::MostProbableAlternative);
        for split in splits(tuples.len()) {
            let mut alt = IncrementalBlocks::new(fig14.clone(), BlockKeying::PerAlternative);
            let mut res = IncrementalBlocks::new(
                fig14.clone(),
                BlockKeying::Resolved(ConflictResolution::MostProbableAlternative),
            );
            let mut start = 0;
            for &size in &split {
                alt.ingest(&tuples[start..start + size], start);
                res.ingest(&tuples[start..start + size], start);
                start += size;
            }
            assert_eq!(alt.current_pairs().pairs(), batch_alt.pairs.pairs());
            assert_eq!(res.current_pairs().pairs(), batch_res.pairs.pairs());
        }
    }

    #[test]
    fn warm_reingest_renders_nothing_new() {
        let tuples = corpus();
        let mut inc = IncrementalSnm::new(spec(), SnmKeying::PerAlternative, 3);
        inc.ingest(&tuples, 0);
        let renders = inc.render_count();
        assert!(renders > 0);
        // Re-keying the same values after a row reset is free.
        inc.reset_rows();
        inc.ingest(&tuples, 0);
        assert_eq!(inc.render_count(), renders);
        // Ingesting duplicates of seen tuples is free too.
        inc.ingest(&tuples[..2], tuples.len());
        assert_eq!(inc.render_count(), renders);

        let mut blocks = IncrementalBlocks::new(spec(), BlockKeying::PerAlternative);
        blocks.ingest(&tuples, 0);
        let renders = blocks.render_count();
        blocks.reset_rows();
        blocks.ingest(&tuples, 0);
        assert_eq!(blocks.render_count(), renders);
    }

    #[test]
    fn empty_states() {
        let inc = IncrementalSnm::new(spec(), SnmKeying::PerAlternative, 2);
        assert!(inc.is_empty());
        assert!(inc.current_pairs().is_empty());
        let ranked = IncrementalRankedSnm::new(spec(), RankingFunction::MostProbableKey, 2);
        assert!(ranked.is_empty());
        assert!(ranked.current_pairs().is_empty());
        let blocks = IncrementalBlocks::new(spec(), BlockKeying::PerAlternative);
        assert!(blocks.is_empty());
        assert!(blocks.current_pairs().is_empty());
    }
}
