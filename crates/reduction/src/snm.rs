//! The core sorted-neighborhood method (Hernández & Stolfo 1995): sort key
//! entries, slide a window, emit candidate pairs.
//!
//! Two entry representations share the windowing logic:
//! [`sorted_neighborhood`] sorts owned key `String`s (the oracle path) and
//! [`sorted_neighborhood_interned`] sorts [`KeySymbol`]s by a precomputed
//! lexicographic rank — integer compares, zero allocation, byte-identical
//! order. Multi-pass methods build the key table once and call the interned
//! variant per pass, which makes passes ≥ 2 sort-only.

use probdedup_model::intern::{KeyRanks, KeySymbol};

use crate::pairs::CandidatePairs;

/// One sortable entry: a key string and the tuple it references. Several
/// entries may reference the same tuple (sorting-alternatives method) and
/// several tuples may share a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnmEntry {
    /// The key value.
    pub key: String,
    /// Index of the referenced tuple.
    pub tuple: usize,
}

impl SnmEntry {
    /// A new entry.
    pub fn new(key: impl Into<String>, tuple: usize) -> Self {
        Self {
            key: key.into(),
            tuple,
        }
    }
}

/// Sort `entries` by key (ties by tuple index, then input order — fully
/// deterministic) and emit all pairs of tuples whose entries fall within a
/// window of `window` consecutive entries.
///
/// * `window` is clamped to ≥ 2 (a window of 1 compares nothing).
/// * Self-pairs (an entry meeting another entry of the same tuple) are
///   skipped.
/// * If `skip_adjacent_same_tuple` is set, neighboring entries referencing
///   the same tuple are collapsed before windowing — the omission rule of
///   the sorting-alternatives method (Fig. 11: "if two neighboring key
///   values are referencing the same tuple, one of this values can be
///   omitted").
/// * Duplicate pairs across windows are suppressed (Fig. 12 matrix),
///   which also implements "storing already executed matchings".
///
/// Returns the candidate pairs and the sorted entry list (figures print it).
pub fn sorted_neighborhood(
    mut entries: Vec<SnmEntry>,
    window: usize,
    n_tuples: usize,
    skip_adjacent_same_tuple: bool,
) -> (CandidatePairs, Vec<SnmEntry>) {
    let window = window.max(2);
    entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.tuple.cmp(&b.tuple)));
    if skip_adjacent_same_tuple {
        entries.dedup_by(|next, prev| next.tuple == prev.tuple);
    }
    let mut pairs = CandidatePairs::new(n_tuples);
    for (i, e) in entries.iter().enumerate() {
        for f in entries.iter().skip(i + 1).take(window - 1) {
            pairs.insert(e.tuple, f.tuple);
        }
    }
    (pairs, entries)
}

/// One sortable **interned** entry: a key symbol and the tuple it
/// references — the allocation-free twin of [`SnmEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternedSnmEntry {
    /// The key symbol (resolve against the issuing
    /// [`KeyPool`](probdedup_model::intern::KeyPool) for display).
    pub key: KeySymbol,
    /// Index of the referenced tuple.
    pub tuple: usize,
}

impl InternedSnmEntry {
    /// A new entry.
    pub fn new(key: KeySymbol, tuple: usize) -> Self {
        Self { key, tuple }
    }
}

/// [`sorted_neighborhood`] over interned entries: sort by `(rank(key),
/// tuple)` — byte-identical order to the string path, since `ranks` agrees
/// with the key strings' lexicographic order — then window identically.
/// No string is touched.
pub fn sorted_neighborhood_interned(
    mut entries: Vec<InternedSnmEntry>,
    ranks: &KeyRanks,
    window: usize,
    n_tuples: usize,
    skip_adjacent_same_tuple: bool,
) -> (CandidatePairs, Vec<InternedSnmEntry>) {
    entries.sort_by(|a, b| {
        ranks
            .rank(a.key)
            .cmp(&ranks.rank(b.key))
            .then(a.tuple.cmp(&b.tuple))
    });
    if skip_adjacent_same_tuple {
        entries.dedup_by(|next, prev| next.tuple == prev.tuple);
    }
    let mut pairs = CandidatePairs::new(n_tuples);
    emit_window_pairs(&entries, window, &mut pairs);
    (pairs, entries)
}

/// The window scan over an **already sorted** entry list — the shared back
/// half of [`sorted_neighborhood_interned`] and the incremental SNM state
/// (which keeps its entry list resident and rank-**inserts** new entries
/// instead of re-sorting). Emits every pair of tuples whose entries fall
/// within `window` consecutive entries, in window order, deduplicated.
pub fn windowed_pairs(
    entries: &[InternedSnmEntry],
    window: usize,
    n_tuples: usize,
    skip_adjacent_same_tuple: bool,
) -> CandidatePairs {
    let mut pairs = CandidatePairs::new(n_tuples);
    if skip_adjacent_same_tuple {
        let mut collapsed = entries.to_vec();
        collapsed.dedup_by(|next, prev| next.tuple == prev.tuple);
        emit_window_pairs(&collapsed, window, &mut pairs);
    } else {
        emit_window_pairs(entries, window, &mut pairs);
    }
    pairs
}

/// Emit all window pairs of a sorted entry list into `pairs` (`window`
/// clamped to ≥ 2; self-pairs and repeats suppressed by the pair set).
fn emit_window_pairs(entries: &[InternedSnmEntry], window: usize, pairs: &mut CandidatePairs) {
    let window = window.max(2);
    for (i, e) in entries.iter().enumerate() {
        for f in entries.iter().skip(i + 1).take(window - 1) {
            pairs.insert(e.tuple, f.tuple);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(list: &[(&str, usize)]) -> Vec<SnmEntry> {
        list.iter().map(|&(k, t)| SnmEntry::new(k, t)).collect()
    }

    /// Fig. 9 (left): the sorted order of world I1's key values.
    #[test]
    fn fig9_world_i1_order() {
        // I1: t31 (John, pilot), t32 (Tim, mechanic), t41 (Johan, pianist),
        //     t42 (Tom, mechanic), t43 (Sean, pilot).
        // Keys: Johpi, Timme, Johpi, Tomme, Seapi → sorted:
        //   Johpi(t31), Johpi(t41), Seapi(t43), Timme(t32), Tomme(t42).
        let input = entries(&[
            ("Johpi", 0), // t31
            ("Timme", 1), // t32
            ("Johpi", 2), // t41
            ("Tomme", 3), // t42
            ("Seapi", 4), // t43
        ]);
        let (pairs, order) = sorted_neighborhood(input, 2, 5, false);
        let sorted: Vec<(String, usize)> = order.iter().map(|e| (e.key.clone(), e.tuple)).collect();
        assert_eq!(
            sorted,
            vec![
                ("Johpi".into(), 0),
                ("Johpi".into(), 2),
                ("Seapi".into(), 4),
                ("Timme".into(), 1),
                ("Tomme".into(), 3),
            ]
        );
        // Window 2 pairs: (t31,t41), (t41,t43), (t43,t32), (t32,t42).
        assert_eq!(pairs.pairs(), &[(0, 2), (2, 4), (1, 4), (1, 3)]);
    }

    #[test]
    fn window_three_pairs_more() {
        let input = entries(&[("a", 0), ("b", 1), ("c", 2), ("d", 3)]);
        let (w2, _) = sorted_neighborhood(input.clone(), 2, 4, false);
        let (w3, _) = sorted_neighborhood(input, 3, 4, false);
        assert_eq!(w2.len(), 3);
        assert_eq!(w3.len(), 5); // (0,1),(0,2),(1,2),(1,3),(2,3)
        for &p in w2.pairs() {
            assert!(
                w3.contains(p.0, p.1),
                "window-3 must contain window-2 pairs"
            );
        }
    }

    #[test]
    fn self_pairs_skipped() {
        let input = entries(&[("a", 0), ("b", 0), ("c", 1)]);
        let (pairs, _) = sorted_neighborhood(input, 2, 2, false);
        assert_eq!(pairs.pairs(), &[(0, 1)]);
    }

    #[test]
    fn adjacent_same_tuple_collapsed() {
        // Fig. 11's rule: adjacent entries of the same tuple collapse, so
        // tuple 0's second entry is removed and "c"(1) pairs with "a"(0).
        let input = entries(&[("a", 0), ("b", 0), ("c", 1)]);
        let (pairs, order) = sorted_neighborhood(input, 2, 2, true);
        assert_eq!(order.len(), 2);
        assert_eq!(pairs.pairs(), &[(0, 1)]);
    }

    #[test]
    fn duplicate_pairs_suppressed_across_windows() {
        // Tuples 0 and 1 are neighbors twice; the matching executes once.
        let input = entries(&[("a", 0), ("b", 1), ("c", 0), ("d", 1)]);
        let (pairs, _) = sorted_neighborhood(input, 2, 2, false);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn window_clamped_to_two() {
        let input = entries(&[("a", 0), ("b", 1)]);
        let (pairs, _) = sorted_neighborhood(input, 0, 2, false);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_and_single_entry() {
        let (pairs, order) = sorted_neighborhood(Vec::new(), 2, 0, false);
        assert!(pairs.is_empty());
        assert!(order.is_empty());
        let (pairs, _) = sorted_neighborhood(entries(&[("a", 0)]), 2, 1, false);
        assert!(pairs.is_empty());
    }

    #[test]
    fn interned_windowing_matches_string_path() {
        use probdedup_model::intern::KeyPool;
        let list: &[(&str, usize)] = &[
            ("Johpi", 0),
            ("Timme", 1),
            ("Johpi", 2),
            ("", 3), // empty key sorts first
            ("Łukme", 4),
            ("Johpi", 0), // duplicate entry of tuple 0
        ];
        let mut kp = KeyPool::new();
        let interned: Vec<InternedSnmEntry> = list
            .iter()
            .map(|&(k, t)| InternedSnmEntry::new(kp.intern_str(k), t))
            .collect();
        let ranks = kp.lexicographic_ranks();
        for window in [2, 3, 4] {
            for skip in [false, true] {
                let (sp, so) = sorted_neighborhood(entries(list), window, 5, skip);
                let (ip, io) =
                    sorted_neighborhood_interned(interned.clone(), &ranks, window, 5, skip);
                assert_eq!(sp.pairs(), ip.pairs(), "window {window} skip {skip}");
                let resolved: Vec<(String, usize)> = io
                    .iter()
                    .map(|e| (kp.resolve(e.key).to_string(), e.tuple))
                    .collect();
                let strings: Vec<(String, usize)> =
                    so.iter().map(|e| (e.key.clone(), e.tuple)).collect();
                assert_eq!(resolved, strings, "window {window} skip {skip}");
            }
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = entries(&[("k", 2), ("k", 0), ("k", 1)]);
        let b = entries(&[("k", 1), ("k", 2), ("k", 0)]);
        let (_, order_a) = sorted_neighborhood(a, 2, 3, false);
        let (_, order_b) = sorted_neighborhood(b, 2, 3, false);
        assert_eq!(order_a, order_b);
        assert_eq!(order_a[0].tuple, 0);
    }
}
