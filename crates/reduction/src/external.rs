//! Out-of-core sorted neighborhood: external merge sort of `(rank, tuple)`
//! entries with streaming re-windowing.
//!
//! [`sorted_neighborhood_interned`](crate::sorted_neighborhood_interned)
//! materializes and sorts the whole entry list — `O(entries)` resident
//! memory, which at 10⁶-class corpora with one entry per alternative is
//! exactly what an out-of-core run cannot afford. This module replaces the
//! in-memory sort with a classic external merge sort:
//!
//! 1. **Run formation** — entries are buffered up to a configurable
//!    [`run_entries`](ExternalSortConfig::run_entries) ceiling; each full
//!    buffer is sorted by `(rank, tuple)` and spilled to a temp file as
//!    fixed-width 12-byte little-endian records (`rank: u32`,
//!    `tuple: u64`).
//! 2. **K-way merge** — the spilled runs are merged through a binary heap
//!    (ties broken by run index; entries with equal `(rank, tuple)` are
//!    indistinguishable, so the merged sequence is byte-identical to the
//!    one-shot stable sort).
//! 3. **Streaming windowing** — [`StreamWindower`] replays
//!    `emit_window_pairs`' anchor-major order over the merged stream with
//!    only `window` entries resident, including the sorting-alternatives
//!    collapse rule (skip an entry whose tuple equals the last kept one).
//!
//! If nothing ever spills (`run_entries` ≥ corpus), the sorter degrades to
//! the plain in-memory sort and **no file is created**. Temp run files are
//! removed by RAII: each run's `Drop` deletes its file, so cleanup happens
//! on success, on early drop (a consumer abandoning a half-merged stream),
//! and on unwind alike.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use probdedup_model::intern::KeyRanks;
use probdedup_model::xtuple::XTuple;

use crate::conflict::{resolved_key_symbols, ConflictResolution};
use crate::key::KeySpec;
use crate::multipass::{select_worlds, WorldSelection};
use crate::pairs::CandidatePairs;
use crate::snm::InternedSnmEntry;

/// Bytes per spilled record: `rank: u32` + `tuple: u64`, little-endian.
const RECORD_BYTES: usize = 12;

/// Configuration of the external sort.
#[derive(Debug, Clone)]
pub struct ExternalSortConfig {
    /// Maximum entries buffered in memory before a sorted run is spilled.
    /// Clamped to ≥ 1. With `run_entries` ≥ the total entry count the sort
    /// never touches disk.
    pub run_entries: usize,
    /// Directory for spilled runs; `None` uses [`std::env::temp_dir`].
    pub dir: Option<PathBuf>,
}

impl Default for ExternalSortConfig {
    fn default() -> Self {
        Self {
            // 1 Mi entries ≈ 12 MiB per resident run buffer.
            run_entries: 1 << 20,
            dir: None,
        }
    }
}

impl ExternalSortConfig {
    fn dir(&self) -> PathBuf {
        self.dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

/// What the sort did — surfaced in bench output and asserted by the
/// spill-path tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExternalSortStats {
    /// Total entries pushed.
    pub entries: usize,
    /// Number of sorted runs spilled to disk (0 = pure in-memory sort).
    pub runs_spilled: usize,
    /// Total bytes written to spill files.
    pub spilled_bytes: u64,
}

/// Global counter making spill-file names unique within the process; the
/// pid in the name separates concurrent processes sharing a temp dir.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn run_path(dir: &Path) -> PathBuf {
    let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("probdedup-run-{}-{n}.spill", std::process::id()))
}

/// One spilled run: a sorted record file removed on `Drop` (RAII cleanup —
/// success, abandonment and unwind all go through here).
#[derive(Debug)]
struct SpilledRun {
    path: PathBuf,
    reader: BufReader<File>,
}

impl SpilledRun {
    /// Sort `buf` by `(rank, tuple)` and write it as a record file.
    fn write(dir: &Path, buf: &mut [(u32, u64)]) -> io::Result<(Self, u64)> {
        buf.sort_unstable();
        let path = run_path(dir);
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // From here the file exists: wrap it immediately so an I/O error
        // below still removes it.
        let mut run = Self {
            path,
            reader: BufReader::new(file),
        };
        let mut w = BufWriter::new(run.reader.get_mut());
        for &(rank, tuple) in buf.iter() {
            w.write_all(&rank.to_le_bytes())?;
            w.write_all(&tuple.to_le_bytes())?;
        }
        w.flush()?;
        drop(w);
        let bytes = (buf.len() * RECORD_BYTES) as u64;
        run.reader.get_mut().rewind()?;
        Ok((run, bytes))
    }

    /// The next record, or `None` at end of run.
    fn next_record(&mut self) -> io::Result<Option<(u32, u64)>> {
        let mut rec = [0u8; RECORD_BYTES];
        match self.reader.read_exact(&mut rec) {
            Ok(()) => {
                let rank = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                let tuple = u64::from_le_bytes(rec[4..12].try_into().unwrap());
                Ok(Some((rank, tuple)))
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An external merge sorter over `(rank, tuple)` entries. Push entries in
/// any order, then [`finish`](Self::finish) into a sorted
/// [`ExternalEntryStream`].
#[derive(Debug)]
pub struct ExternalSorter {
    cfg: ExternalSortConfig,
    buf: Vec<(u32, u64)>,
    runs: Vec<SpilledRun>,
    stats: ExternalSortStats,
}

impl ExternalSorter {
    /// A new sorter.
    pub fn new(cfg: ExternalSortConfig) -> Self {
        Self {
            cfg,
            buf: Vec::new(),
            runs: Vec::new(),
            stats: ExternalSortStats::default(),
        }
    }

    /// Add one entry; spills the buffer as a sorted run when it reaches
    /// the configured ceiling.
    pub fn push(&mut self, rank: u32, tuple: usize) -> io::Result<()> {
        self.stats.entries += 1;
        self.buf.push((rank, tuple as u64));
        if self.buf.len() >= self.cfg.run_entries.max(1) {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let (run, bytes) = SpilledRun::write(&self.cfg.dir(), &mut self.buf)?;
        self.buf.clear();
        self.runs.push(run);
        self.stats.runs_spilled += 1;
        self.stats.spilled_bytes += bytes;
        Ok(())
    }

    /// Seal the sorter into a globally sorted stream. If nothing was ever
    /// spilled the whole sort stays in memory (zero files); otherwise the
    /// final partial buffer is spilled too and a k-way merge drives the
    /// stream.
    pub fn finish(mut self) -> io::Result<(ExternalEntryStream, ExternalSortStats)> {
        if self.runs.is_empty() {
            self.buf.sort_unstable();
            let stats = self.stats;
            return Ok((
                ExternalEntryStream {
                    inner: StreamInner::InMemory {
                        entries: self.buf.into_iter(),
                    },
                },
                stats,
            ));
        }
        self.spill()?;
        let mut heap = BinaryHeap::with_capacity(self.runs.len());
        for (idx, run) in self.runs.iter_mut().enumerate() {
            if let Some((rank, tuple)) = run.next_record()? {
                heap.push(Reverse((rank, tuple, idx)));
            }
        }
        let stats = self.stats;
        Ok((
            ExternalEntryStream {
                inner: StreamInner::Merge {
                    runs: self.runs,
                    heap,
                },
            },
            stats,
        ))
    }
}

#[derive(Debug)]
enum StreamInner {
    InMemory {
        entries: std::vec::IntoIter<(u32, u64)>,
    },
    Merge {
        runs: Vec<SpilledRun>,
        // Min-heap of (rank, tuple, run index): the run index tie-break
        // is immaterial for order (equal-key records are identical) but
        // makes the merge fully deterministic.
        heap: BinaryHeap<Reverse<(u32, u64, usize)>>,
    },
}

/// The sorted `(rank, tuple)` stream produced by [`ExternalSorter::finish`].
/// Dropping the stream early removes every remaining spill file.
#[derive(Debug)]
pub struct ExternalEntryStream {
    inner: StreamInner,
}

impl Iterator for ExternalEntryStream {
    type Item = io::Result<(u32, usize)>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            StreamInner::InMemory { entries } => entries
                .next()
                .map(|(rank, tuple)| Ok((rank, tuple as usize))),
            StreamInner::Merge { runs, heap } => {
                let Reverse((rank, tuple, idx)) = heap.pop()?;
                match runs[idx].next_record() {
                    Ok(Some((r, t))) => heap.push(Reverse((r, t, idx))),
                    Ok(None) => {}
                    Err(e) => return Some(Err(e)),
                }
                Some(Ok((rank, tuple as usize)))
            }
        }
    }
}

/// Streaming replay of the in-memory window scan: feed the **sorted**
/// entry stream one `(rank, tuple)` at a time and receive every window
/// pair through the callback, in exactly the order
/// `emit_window_pairs` produces them (anchor-major: each kept entry pairs
/// with the `window − 1` kept entries after it). Only `window` entries are
/// ever resident.
///
/// The callback receives `(anchor, other)` as `(rank, tuple)` pairs —
/// ranks let a sharded consumer route an anchor's pairs by key-order
/// position without re-resolving anything.
#[derive(Debug)]
pub struct StreamWindower {
    window: usize,
    skip_adjacent_same_tuple: bool,
    last_kept: Option<usize>,
    buf: std::collections::VecDeque<(u32, usize)>,
}

impl StreamWindower {
    /// A new windower (`window` clamped to ≥ 2, matching the in-memory
    /// scan).
    pub fn new(window: usize, skip_adjacent_same_tuple: bool) -> Self {
        let window = window.max(2);
        Self {
            window,
            skip_adjacent_same_tuple,
            last_kept: None,
            buf: std::collections::VecDeque::with_capacity(window),
        }
    }

    /// Feed the next sorted entry.
    pub fn push(
        &mut self,
        rank: u32,
        tuple: usize,
        emit: &mut impl FnMut((u32, usize), (u32, usize)),
    ) {
        if self.skip_adjacent_same_tuple && self.last_kept == Some(tuple) {
            return;
        }
        self.last_kept = Some(tuple);
        self.buf.push_back((rank, tuple));
        if self.buf.len() == self.window {
            let anchor = self.buf.pop_front().expect("window ≥ 2");
            for &other in &self.buf {
                emit(anchor, other);
            }
        }
    }

    /// Flush the tail: anchors with fewer than `window − 1` followers.
    pub fn finish(mut self, emit: &mut impl FnMut((u32, usize), (u32, usize))) {
        while let Some(anchor) = self.buf.pop_front() {
            for &other in &self.buf {
                emit(anchor, other);
            }
        }
    }
}

/// Out-of-core twin of
/// [`sorted_neighborhood_interned`](crate::sorted_neighborhood_interned):
/// identical candidate pairs in identical order, but the sort runs through
/// [`ExternalSorter`] under `cfg`'s memory ceiling instead of
/// materializing the sorted entry list. (The sorted order itself is not
/// returned — not materializing it is the point.)
pub fn sorted_neighborhood_external(
    entries: &[InternedSnmEntry],
    ranks: &KeyRanks,
    window: usize,
    n_tuples: usize,
    skip_adjacent_same_tuple: bool,
    cfg: &ExternalSortConfig,
) -> io::Result<(CandidatePairs, ExternalSortStats)> {
    let mut sorter = ExternalSorter::new(cfg.clone());
    for e in entries {
        sorter.push(ranks.rank(e.key), e.tuple)?;
    }
    let (stream, stats) = sorter.finish()?;
    let mut pairs = CandidatePairs::new(n_tuples);
    let mut emit = |anchor: (u32, usize), other: (u32, usize)| {
        pairs.insert(anchor.1, other.1);
    };
    let mut windower = StreamWindower::new(window, skip_adjacent_same_tuple);
    for rec in stream {
        let (rank, tuple) = rec?;
        windower.push(rank, tuple, &mut emit);
    }
    windower.finish(&mut emit);
    Ok((pairs, stats))
}

/// Drain `sorter` through a [`StreamWindower`] into `emit`.
fn stream_windows(
    sorter: ExternalSorter,
    window: usize,
    skip_adjacent_same_tuple: bool,
    emit: &mut impl FnMut((u32, usize), (u32, usize)),
) -> io::Result<ExternalSortStats> {
    let (stream, stats) = sorter.finish()?;
    let mut windower = StreamWindower::new(window, skip_adjacent_same_tuple);
    for rec in stream {
        let (rank, tuple) = rec?;
        windower.push(rank, tuple, emit);
    }
    windower.finish(emit);
    Ok(stats)
}

/// Out-of-core scan of the **sorting-alternatives** SNM (Section V-A.3):
/// emits every window pair, self-pairs and repeats included, in exactly
/// the order [`sorting_alternatives`](crate::sorting_alternatives)
/// produces them — dedup through a pair set on the consumer side recovers
/// the one-shot candidate list byte-for-byte.
pub fn sorting_alternatives_external_scan(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    cfg: &ExternalSortConfig,
    emit: &mut impl FnMut((u32, usize), (u32, usize)),
) -> io::Result<ExternalSortStats> {
    let table = spec.key_table(tuples);
    let mut sorter = ExternalSorter::new(cfg.clone());
    for i in 0..table.len() {
        for &key in table.alternative_keys(i) {
            sorter.push(table.rank(key), i)?;
        }
    }
    stream_windows(sorter, window, true, emit)
}

/// Out-of-core scan of the **conflict-resolved** SNM (Section V-A.2):
/// window pairs in exactly
/// [`conflict_resolved_snm`](crate::conflict_resolved_snm)'s order.
pub fn conflict_resolved_snm_external_scan(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    strategy: ConflictResolution,
    cfg: &ExternalSortConfig,
    emit: &mut impl FnMut((u32, usize), (u32, usize)),
) -> io::Result<ExternalSortStats> {
    let (keys, syms) = resolved_key_symbols(tuples, spec, strategy);
    let ranks = keys.lexicographic_ranks();
    let mut sorter = ExternalSorter::new(cfg.clone());
    for (i, &key) in syms.iter().enumerate() {
        sorter.push(ranks.rank(key), i)?;
    }
    stream_windows(sorter, window, false, emit)
}

/// Out-of-core scan of the **multi-pass worlds** SNM (Section V-A.1): one
/// external sort per selected world, window pairs emitted per pass in
/// exactly [`multipass_snm_pairs`](crate::multipass_snm_pairs)'s pass
/// order (consumer-side dedup unions the passes). Stats are summed across
/// passes.
pub fn multipass_snm_external_scan(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    selection: WorldSelection,
    cfg: &ExternalSortConfig,
    emit: &mut impl FnMut((u32, usize), (u32, usize)),
) -> io::Result<ExternalSortStats> {
    let worlds = select_worlds(tuples, selection);
    let table = spec.key_table(tuples);
    let mut total = ExternalSortStats::default();
    for world in worlds {
        let mut sorter = ExternalSorter::new(cfg.clone());
        for i in 0..table.len() {
            let alt = world.choices[i].expect("full world");
            sorter.push(table.rank(table.alternative_keys(i)[alt]), i)?;
        }
        let stats = stream_windows(sorter, window, false, emit)?;
        total.entries += stats.entries;
        total.runs_spilled += stats.runs_spilled;
        total.spilled_bytes += stats.spilled_bytes;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snm::sorted_neighborhood_interned;
    use probdedup_model::intern::KeyPool;

    fn sample() -> (KeyPool, Vec<InternedSnmEntry>) {
        let mut kp = KeyPool::new();
        let keys = [
            "Johpi", "Timme", "Johpi", "Tomme", "Seapi", "Johmu", "Timme",
        ];
        let entries = keys
            .iter()
            .enumerate()
            .map(|(i, k)| InternedSnmEntry::new(kp.intern_str(k), i % 5))
            .collect();
        (kp, entries)
    }

    #[test]
    fn external_matches_in_memory_across_run_sizes() {
        let (kp, entries) = sample();
        let ranks = kp.lexicographic_ranks();
        let dir = std::env::temp_dir().join(format!("pd-ext-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for window in [2, 3, 5] {
            for skip in [false, true] {
                let (expected, _) =
                    sorted_neighborhood_interned(entries.clone(), &ranks, window, 5, skip);
                for run_entries in [1, 2, 3, 100] {
                    let cfg = ExternalSortConfig {
                        run_entries,
                        dir: Some(dir.clone()),
                    };
                    let (got, stats) =
                        sorted_neighborhood_external(&entries, &ranks, window, 5, skip, &cfg)
                            .unwrap();
                    assert_eq!(
                        got.pairs(),
                        expected.pairs(),
                        "window {window} skip {skip} run {run_entries}"
                    );
                    assert_eq!(stats.entries, entries.len());
                    if run_entries > entries.len() {
                        assert_eq!(stats.runs_spilled, 0, "oversized runs must not spill");
                    } else {
                        assert!(stats.runs_spilled >= 2, "run {run_entries} should spill");
                    }
                }
            }
        }
        // Every spill file was removed on success.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn early_drop_removes_spill_files() {
        let (kp, entries) = sample();
        let ranks = kp.lexicographic_ranks();
        let dir = std::env::temp_dir().join(format!("pd-ext-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ExternalSortConfig {
            run_entries: 1,
            dir: Some(dir.clone()),
        };
        let mut sorter = ExternalSorter::new(cfg);
        for e in &entries {
            sorter.push(ranks.rank(e.key), e.tuple).unwrap();
        }
        let (mut stream, stats) = sorter.finish().unwrap();
        assert_eq!(stats.runs_spilled, entries.len());
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0);
        // Simulated mid-merge failure: consume a couple of records, then
        // abandon the stream.
        stream.next().unwrap().unwrap();
        stream.next().unwrap().unwrap();
        drop(stream);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn empty_input() {
        let kp = KeyPool::new();
        let ranks = kp.lexicographic_ranks();
        let cfg = ExternalSortConfig::default();
        let (pairs, stats) = sorted_neighborhood_external(&[], &ranks, 4, 0, false, &cfg).unwrap();
        assert!(pairs.is_empty());
        assert_eq!(stats, ExternalSortStats::default());
    }

    /// ℛ34 (Fig. 11), the corpus every in-memory SNM test runs over.
    fn r34() -> Vec<XTuple> {
        use probdedup_model::pvalue::PValue;
        use probdedup_model::schema::Schema;
        use probdedup_model::value::Value;
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ]
    }

    /// Replay a raw emission stream through [`CandidatePairs`] dedup.
    fn collect_scan(
        n: usize,
        scan: impl FnOnce(&mut dyn FnMut((u32, usize), (u32, usize))) -> io::Result<ExternalSortStats>,
    ) -> (CandidatePairs, ExternalSortStats) {
        let mut pairs = CandidatePairs::new(n);
        let stats = scan(&mut |a, b| {
            pairs.insert(a.1, b.1);
        })
        .unwrap();
        (pairs, stats)
    }

    #[test]
    fn strategy_scans_match_in_memory_counterparts() {
        use crate::alternatives::sorting_alternatives;
        use crate::conflict::conflict_resolved_snm;
        use crate::multipass::multipass_snm_pairs;

        let tuples = r34();
        let spec = KeySpec::paper_example(0, 1);
        let n = tuples.len();
        for run_entries in [1, 3, 100] {
            let cfg = ExternalSortConfig {
                run_entries,
                dir: None,
            };
            for window in [2, 4] {
                let expected = sorting_alternatives(&tuples, &spec, window).pairs;
                let (got, stats) = collect_scan(n, |emit| {
                    sorting_alternatives_external_scan(&tuples, &spec, window, &cfg, &mut |a, b| {
                        emit(a, b)
                    })
                });
                assert_eq!(
                    got.pairs(),
                    expected.pairs(),
                    "alts w{window} r{run_entries}"
                );
                assert_eq!(stats.entries, 10);

                for strategy in [
                    ConflictResolution::MostProbableAlternative,
                    ConflictResolution::MostProbableKey,
                    ConflictResolution::FirstAlternative,
                ] {
                    let (expected, _) = conflict_resolved_snm(&tuples, &spec, window, strategy);
                    let (got, stats) = collect_scan(n, |emit| {
                        conflict_resolved_snm_external_scan(
                            &tuples,
                            &spec,
                            window,
                            strategy,
                            &cfg,
                            &mut |a, b| emit(a, b),
                        )
                    });
                    assert_eq!(
                        got.pairs(),
                        expected.pairs(),
                        "conflict {strategy:?} w{window} r{run_entries}"
                    );
                    assert_eq!(stats.entries, n);
                }

                for selection in [WorldSelection::TopK(3), WorldSelection::All { limit: 64 }] {
                    let expected = multipass_snm_pairs(&tuples, &spec, window, selection);
                    let (got, stats) = collect_scan(n, |emit| {
                        multipass_snm_external_scan(
                            &tuples,
                            &spec,
                            window,
                            selection,
                            &cfg,
                            &mut |a, b| emit(a, b),
                        )
                    });
                    assert_eq!(
                        got.pairs(),
                        expected.pairs(),
                        "multipass {selection:?} w{window} r{run_entries}"
                    );
                    assert!(stats.entries >= n, "one entry per tuple per world");
                }
            }
        }
    }
}
