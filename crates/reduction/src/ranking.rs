//! Sorting with uncertain key values (Section V-A.4 / Fig. 13): keep the
//! key *distributions* and order the tuples with a probabilistic ranking
//! function, in `O(n log n)` like certain-data sorting.
//!
//! The paper defers to the ranking literature it cites (\[34\]–\[37\]); we
//! implement two concrete ranking semantics:
//!
//! * [`RankingFunction::MostProbableKey`] — rank by each tuple's most
//!   probable key value; reproduces the ranked order printed in Fig. 13;
//! * [`RankingFunction::ExpectedScore`] — rank by the expectation of a
//!   lexicographic score of the key (the expected-rank flavour of Cormode
//!   et al. \[35\]): uncertainty is *averaged* rather than argmax'd, so a
//!   tuple with two very different likely keys sorts between them.

use probdedup_model::xtuple::XTuple;

use crate::key::KeySpec;
use crate::pairs::CandidatePairs;

/// Probabilistic ranking semantics for uncertain keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingFunction {
    /// Order by the most probable key (ties: lexicographic, then index).
    #[default]
    MostProbableKey,
    /// Order by the expected lexicographic score of the key distribution.
    ExpectedScore,
}

/// Map a key string to a lexicographic score in `[0, 1)`: the first
/// `DEPTH` characters are read as base-96 digits (printable ASCII run;
/// characters outside clamp to the run's ends). Order-preserving on that
/// prefix: `a < b ⟹ score(a) ≤ score(b)`.
pub fn lexicographic_score(key: &str) -> f64 {
    const DEPTH: usize = 8;
    const BASE: f64 = 96.0;
    let mut score = 0.0;
    let mut scale = 1.0 / BASE;
    for c in key.chars().take(DEPTH) {
        let digit = ((c as u32).clamp(32, 127) - 32) as f64;
        score += digit * scale;
        scale /= BASE;
    }
    score
}

/// The rank score of one x-tuple's key distribution: the sort score plus
/// the display key the ranked order carries. Per-tuple and
/// corpus-independent, which is what lets the incremental SNM state
/// ([`crate::incremental`]) rank-insert newly ingested tuples into a
/// resident order.
pub fn rank_score(t: &XTuple, spec: &KeySpec, f: RankingFunction) -> (f64, String) {
    match f {
        RankingFunction::MostProbableKey => {
            let key = spec.most_probable_key(t);
            (lexicographic_score(&key), key)
        }
        RankingFunction::ExpectedScore => {
            let keys = spec.xtuple_keys(t);
            let total: f64 = keys.iter().map(|(_, p)| p).sum();
            let expected = if total > 0.0 {
                keys.iter()
                    .map(|(k, p)| p * lexicographic_score(k))
                    .sum::<f64>()
                    / total
            } else {
                0.0
            };
            // Carry the most probable key for display purposes.
            let mut sorted = keys;
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
            (
                expected,
                sorted
                    .into_iter()
                    .next()
                    .map(|(k, _)| k)
                    .unwrap_or_default(),
            )
        }
    }
}

/// Rank the x-tuples by their uncertain keys; returns tuple indices in rank
/// order. `O(n · keys + n log n)`, matching the complexity the paper cites
/// for probabilistic ranking functions.
pub fn rank_tuples(tuples: &[XTuple], spec: &KeySpec, f: RankingFunction) -> Vec<usize> {
    let mut scored: Vec<(usize, f64, String)> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let (score, key) = rank_score(t, spec, f);
            (i, score, key)
        })
        .collect();
    scored.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite scores")
            .then(a.2.cmp(&b.2))
            .then(a.0.cmp(&b.0))
    });
    scored.into_iter().map(|(i, _, _)| i).collect()
}

/// SNM over the ranked tuple order: window over **tuples** (each tuple
/// appears exactly once, unlike sorting-alternatives).
pub fn ranked_snm(
    tuples: &[XTuple],
    spec: &KeySpec,
    window: usize,
    f: RankingFunction,
) -> (CandidatePairs, Vec<usize>) {
    let order = rank_tuples(tuples, spec, f);
    let window = window.max(2);
    let mut pairs = CandidatePairs::new(tuples.len());
    for (i, &a) in order.iter().enumerate() {
        for &b in order.iter().skip(i + 1).take(window - 1) {
            pairs.insert(a, b);
        }
    }
    (pairs, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;

    /// ℛ34 with indices 0=t31, 1=t32, 2=t41, 3=t42, 4=t43.
    fn r34() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        vec![
            XTuple::builder(&s)
                .alt(0.7, ["John", "pilot"])
                .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["John", "pilot"])
                .alt(0.2, ["Johan", "pianist"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        ]
    }

    fn spec() -> KeySpec {
        KeySpec::paper_example(0, 1)
    }

    /// Fig. 13 (right): the ranked order t32, t31, t41, t43, t42.
    #[test]
    fn fig13_ranked_order() {
        let tuples = r34();
        let order = rank_tuples(&tuples, &spec(), RankingFunction::MostProbableKey);
        // Most probable keys: t31 → Johpi (.7), t32 → Jimba (.4),
        // t41 → Johpi (1.0), t42 → Tomme (.8), t43 → Seapi (.6).
        // Sorted: Jimba(t32), Johpi(t31), Johpi(t41), Seapi(t43), Tomme(t42).
        assert_eq!(order, vec![1, 0, 2, 4, 3]);
    }

    #[test]
    fn lexicographic_score_is_order_preserving() {
        let keys = ["Jimba", "Joh", "Johmu", "Johpi", "Seapi", "Timme", "Tomme"];
        for w in keys.windows(2) {
            assert!(
                lexicographic_score(w[0]) <= lexicographic_score(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        assert!(lexicographic_score("") < lexicographic_score("a"));
        assert!((0.0..1.0).contains(&lexicographic_score("zzzzzzzzzz")));
    }

    #[test]
    fn expected_score_averages_between_keys() {
        let s = Schema::new(["name", "job"]);
        let spec = spec();
        // A tuple torn between "Aaa.." and "Zzz..": its expected score lies
        // strictly between tuples certainly keyed near "Aaa" and "Zzz".
        let torn = XTuple::builder(&s)
            .alt(0.5, ["Aaa", "aa"])
            .alt(0.5, ["Zzz", "zz"])
            .build()
            .unwrap();
        let low = XTuple::builder(&s).alt(1.0, ["Abb", "bb"]).build().unwrap();
        let high = XTuple::builder(&s).alt(1.0, ["Zaa", "aa"]).build().unwrap();
        let order = rank_tuples(
            &[torn.clone(), low.clone(), high.clone()],
            &spec,
            RankingFunction::ExpectedScore,
        );
        assert_eq!(order, vec![1, 0, 2], "torn tuple ranks between the two");
        // Under most-probable-key ranking, the torn tuple commits to "Aaaaa"
        // (lexicographically smaller tie-break) and ranks first.
        let order_mp = rank_tuples(&[torn, low, high], &spec, RankingFunction::MostProbableKey);
        assert_eq!(order_mp, vec![0, 1, 2]);
    }

    #[test]
    fn ranked_snm_window_pairs() {
        let tuples = r34();
        let (pairs, order) = ranked_snm(&tuples, &spec(), 2, RankingFunction::MostProbableKey);
        assert_eq!(order, vec![1, 0, 2, 4, 3]);
        // Window 2 over (t32, t31, t41, t43, t42):
        assert_eq!(pairs.pairs(), &[(0, 1), (0, 2), (2, 4), (3, 4)]);
    }

    #[test]
    fn empty_input() {
        let (pairs, order) = ranked_snm(&[], &spec(), 2, RankingFunction::ExpectedScore);
        assert!(pairs.is_empty());
        assert!(order.is_empty());
    }
}
