//! Search-space reduction for probabilistic data (Section V of Panse et
//! al., ICDE 2010).
//!
//! Comparing all `n·(n−1)/2` tuple pairs is quadratic and quickly
//! prohibitive; classical remedies are the **sorted neighborhood method**
//! (SNM: sort by a key, compare within a sliding window) and **blocking**
//! (partition by a key, compare within partitions). Both need a *key* —
//! and in probabilistic data the key attributes may be uncertain. The paper
//! proposes four SNM adaptations and three blocking adaptations, all
//! implemented here:
//!
//! | Paper section | Method | Module |
//! |---------------|--------|--------|
//! | V-A.1 | multi-pass over possible worlds (with careful world selection) | [`multipass`] |
//! | V-A.2 | certain keys via conflict resolution (most probable alternative) | [`conflict`] |
//! | V-A.3 | sorting alternatives (one key per alternative, executed-matching matrix) | [`alternatives`] |
//! | V-A.4 | uncertain keys + probabilistic ranking | [`ranking`] |
//! | V-B   | blocking: multi-pass / conflict-resolved / per-alternative keys / clustering | [`blocking`], [`cluster`] |
//!
//! All methods emit deterministic, deduplicated [`CandidatePairs`] over
//! tuple indices of one (combined) x-relation, ready for the matching and
//! decision layers.

pub mod alternatives;
pub mod blocking;
pub mod cluster;
pub mod conflict;
pub mod key;
pub mod multipass;
pub mod pairs;
pub mod ranking;
pub mod snm;

pub use alternatives::{sorting_alternatives, SortingAlternativesResult};
pub use blocking::{block_alternatives, block_conflict_resolved, block_multipass, BlockingResult};
pub use cluster::{cluster_blocking, ClusterBlockingConfig};
pub use conflict::{conflict_resolved_snm, ConflictResolution};
pub use key::{KeyPart, KeySpec};
pub use multipass::{multipass_snm, MultipassResult, WorldSelection};
pub use pairs::{CandidatePairs, PairMatrix};
pub use ranking::{ranked_snm, RankingFunction};
pub use snm::{sorted_neighborhood, SnmEntry};
