//! Search-space reduction for probabilistic data (Section V of Panse et
//! al., ICDE 2010).
//!
//! Comparing all `n·(n−1)/2` tuple pairs is quadratic and quickly
//! prohibitive; classical remedies are the **sorted neighborhood method**
//! (SNM: sort by a key, compare within a sliding window) and **blocking**
//! (partition by a key, compare within partitions). Both need a *key* —
//! and in probabilistic data the key attributes may be uncertain. The paper
//! proposes four SNM adaptations and three blocking adaptations, all
//! implemented here:
//!
//! | Paper section | Method | Module |
//! |---------------|--------|--------|
//! | V-A.1 | multi-pass over possible worlds (with careful world selection) | [`multipass`] |
//! | V-A.2 | certain keys via conflict resolution (most probable alternative) | [`conflict`] |
//! | V-A.3 | sorting alternatives (one key per alternative, executed-matching matrix) | [`alternatives`] |
//! | V-A.4 | uncertain keys + probabilistic ranking | [`ranking`] |
//! | V-B   | blocking: multi-pass / conflict-resolved / per-alternative keys / clustering | [`blocking`], [`cluster`] |
//!
//! All methods emit deterministic, deduplicated [`CandidatePairs`] over
//! tuple indices of one (combined) x-relation, ready for the matching and
//! decision layers.
//!
//! # Interned keys
//!
//! Every SNM/blocking entry point runs over **interned keys**: a
//! [`key::KeyTable`] built once per call renders each distinct
//! `(value, prefix length)` exactly once into a
//! [`KeyPool`](probdedup_model::intern::KeyPool), and from there blocking
//! buckets on dense [`KeySymbol`](probdedup_model::intern::KeySymbol)s
//! while SNM sorts by precomputed lexicographic rank — so multi-pass
//! methods are sort-only from pass 2 on (zero renders, asserted by the
//! property tests). The string-rendering implementations are retained as
//! `*_oracle` functions and property-tested to produce identical
//! candidate-pair sets and inspection views.
//!
//! # Example
//!
//! The paper's running key over an uncertain tuple (Fig. 13):
//!
//! ```
//! use probdedup_model::pvalue::PValue;
//! use probdedup_model::schema::Schema;
//! use probdedup_model::xtuple::XTuple;
//! use probdedup_reduction::KeySpec;
//!
//! let schema = Schema::new(["name", "job"]);
//! // t31: (John, pilot) with p=0.7 | (Johan, mu*) with p=0.3.
//! let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
//! let t31 = XTuple::builder(&schema)
//!     .alt(0.7, ["John", "pilot"])
//!     .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
//!     .build()
//!     .unwrap();
//!
//! // First 3 characters of the name + first 2 of the job.
//! let spec = KeySpec::paper_example(0, 1);
//! let mut keys = spec.xtuple_keys(&t31);
//! keys.sort_by(|a, b| a.0.cmp(&b.0));
//! assert_eq!(keys[0].0, "Johmu"); // both mu* outcomes render "mu"
//! assert_eq!(keys[1].0, "Johpi");
//! ```

pub mod alternatives;
pub mod blocking;
pub mod cluster;
pub mod conflict;
pub mod external;
pub mod incremental;
pub mod key;
pub mod multipass;
pub mod pairs;
pub mod ranking;
pub mod snm;

pub use alternatives::{
    sorting_alternatives, sorting_alternatives_oracle, SortingAlternativesResult,
};
pub use blocking::{
    block_alternatives, block_alternatives_interned, block_alternatives_oracle,
    block_conflict_resolved, block_conflict_resolved_oracle, block_multipass,
    block_multipass_oracle, block_multipass_with_table, scan_alternative_blocks,
    scan_conflict_resolved_blocks, scan_multipass_blocks, BlockScanConfig, BlockScanStats,
    BlockingResult, SpillableBlockMap,
};
pub use cluster::{cluster_blocking, ClusterBlockingConfig};
pub use conflict::{
    conflict_resolved_snm, conflict_resolved_snm_oracle, resolve_key, resolve_key_symbol,
    ConflictResolution,
};
pub use external::{
    conflict_resolved_snm_external_scan, multipass_snm_external_scan, sorted_neighborhood_external,
    sorting_alternatives_external_scan, ExternalEntryStream, ExternalSortConfig, ExternalSortStats,
    ExternalSorter, StreamWindower,
};
pub use incremental::{
    BlockKeying, IncrementalBlocks, IncrementalRankedSnm, IncrementalSnm, SnmKeying,
};
pub use key::{KeyPart, KeySpec, KeyTable};
pub use multipass::{
    multipass_snm, multipass_snm_oracle, multipass_snm_pairs, multipass_snm_with_table,
    MultipassResult, WorldSelection,
};
pub use pairs::{CandidatePairs, PairMatrix, SparsePairSet};
pub use ranking::{rank_score, rank_tuples, ranked_snm, RankingFunction};
pub use snm::{
    sorted_neighborhood, sorted_neighborhood_interned, windowed_pairs, InternedSnmEntry, SnmEntry,
};
