//! Clustering-based blocking for uncertain keys (Section V-B: "handlings
//! for uncertain key values can be based on clustering techniques for
//! uncertain data", citing UK-means-style work \[38\]–\[40\]).
//!
//! Each x-tuple's key distribution is embedded as its **expected key
//! vector** (per-position expected character codes, the uncertain-data
//! analogue of UK-means' expected distance to certain centroids), and a
//! seeded k-means over those vectors forms the blocks.

use probdedup_model::xtuple::XTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::key::KeySpec;
use crate::pairs::CandidatePairs;

/// Configuration for [`cluster_blocking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterBlockingConfig {
    /// Number of clusters (blocks). Clamped to ≥ 1 and ≤ n.
    pub k: usize,
    /// Embedding dimensionality: the number of leading key characters used.
    pub dims: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for ClusterBlockingConfig {
    fn default() -> Self {
        Self {
            k: 8,
            dims: 5,
            iterations: 20,
            seed: 42,
        }
    }
}

/// Expected key vector of an x-tuple: per position, the probability-weighted
/// character code (normalized into `[0, 1]`; missing positions count as 0).
fn embed(t: &XTuple, spec: &KeySpec, dims: usize) -> Vec<f64> {
    let keys = spec.xtuple_keys(t);
    let total: f64 = keys.iter().map(|(_, p)| p).sum();
    let mut v = vec![0.0; dims];
    if total <= 0.0 {
        return v;
    }
    for (key, p) in &keys {
        let w = p / total;
        for (d, c) in key.chars().take(dims).enumerate() {
            let code = ((c as u32).clamp(32, 127) - 32) as f64 / 95.0;
            v[d] += w * code;
        }
    }
    v
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cluster the x-tuples by expected key vector and emit within-cluster
/// candidate pairs. Deterministic under a fixed seed.
pub fn cluster_blocking(
    tuples: &[XTuple],
    spec: &KeySpec,
    config: &ClusterBlockingConfig,
) -> (CandidatePairs, Vec<Vec<usize>>) {
    let n = tuples.len();
    let mut pairs = CandidatePairs::new(n);
    if n == 0 {
        return (pairs, Vec::new());
    }
    let k = config.k.clamp(1, n);
    let dims = config.dims.max(1);
    let points: Vec<Vec<f64>> = tuples.iter().map(|t| embed(t, spec, dims)).collect();

    // k-means++-style seeding (deterministic RNG).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..n)].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; n];
    for _ in 0..config.iterations {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .expect("finite distances")
                        .then(a.cmp(&b))
                })
                .expect("k ≥ 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = points
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue; // keep the old centroid for empty clusters
            }
            for d in 0..dims {
                centroid[d] = members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64;
            }
        }
    }

    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    for cluster in &clusters {
        for (a, &i) in cluster.iter().enumerate() {
            for &j in cluster.iter().skip(a + 1) {
                pairs.insert(i, j);
            }
        }
    }
    (pairs, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::schema::Schema;

    fn spec() -> KeySpec {
        KeySpec::paper_example(0, 1)
    }

    fn tuple(name: &str, job: &str, p: f64) -> XTuple {
        let s = Schema::new(["name", "job"]);
        XTuple::builder(&s).alt(p, [name, job]).build().unwrap()
    }

    #[test]
    fn similar_keys_cluster_together() {
        let tuples = vec![
            tuple("John", "pilot", 1.0),
            tuple("Johan", "pilot", 1.0),
            tuple("Tim", "mechanic", 1.0),
            tuple("Tom", "mechanic", 1.0),
        ];
        let cfg = ClusterBlockingConfig {
            k: 2,
            ..Default::default()
        };
        let (pairs, clusters) = cluster_blocking(&tuples, &spec(), &cfg);
        assert_eq!(clusters.len(), 2);
        // The two Joh* tuples share a cluster, as do the T*m* tuples.
        assert!(pairs.contains(0, 1), "Joh* tuples must pair");
        assert!(pairs.contains(2, 3), "T*me tuples must pair");
        assert!(!pairs.contains(0, 2), "cross-cluster pair must not appear");
    }

    #[test]
    fn deterministic_under_seed() {
        let tuples: Vec<XTuple> = (0..12)
            .map(|i| tuple(&format!("Name{i}"), "job", 1.0))
            .collect();
        let cfg = ClusterBlockingConfig::default();
        let (p1, c1) = cluster_blocking(&tuples, &spec(), &cfg);
        let (p2, c2) = cluster_blocking(&tuples, &spec(), &cfg);
        assert_eq!(p1.pairs(), p2.pairs());
        assert_eq!(c1, c2);
    }

    #[test]
    fn k_clamped_to_population() {
        let tuples = vec![tuple("A", "x", 1.0), tuple("B", "y", 1.0)];
        let cfg = ClusterBlockingConfig {
            k: 50,
            ..Default::default()
        };
        let (_, clusters) = cluster_blocking(&tuples, &spec(), &cfg);
        assert!(clusters.len() <= 2);
    }

    #[test]
    fn k_one_yields_all_pairs() {
        let tuples = vec![
            tuple("A", "x", 1.0),
            tuple("B", "y", 1.0),
            tuple("C", "z", 1.0),
        ];
        let cfg = ClusterBlockingConfig {
            k: 1,
            ..Default::default()
        };
        let (pairs, _) = cluster_blocking(&tuples, &spec(), &cfg);
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn uncertain_keys_embed_as_expectation() {
        let s = Schema::new(["name", "job"]);
        // A tuple torn between A-keys and Z-keys embeds mid-range and may
        // cluster with mid-alphabet tuples.
        let torn = XTuple::builder(&s)
            .alt(0.5, ["Aaa", "aa"])
            .alt(0.5, ["Zzz", "zz"])
            .build()
            .unwrap();
        let e = embed(&torn, &spec(), 3);
        let low = embed(&tuple("Aaa", "aa", 1.0), &spec(), 3);
        let high = embed(&tuple("Zzz", "zz", 1.0), &spec(), 3);
        for d in 0..3 {
            assert!(e[d] > low[d] && e[d] < high[d], "dim {d}: {e:?}");
        }
    }

    #[test]
    fn empty_input() {
        let (pairs, clusters) = cluster_blocking(&[], &spec(), &ClusterBlockingConfig::default());
        assert!(pairs.is_empty());
        assert!(clusters.is_empty());
    }
}
