//! Property tests for search-space reduction: containment laws, dedup
//! invariants and window monotonicity.

use proptest::prelude::*;

use probdedup_model::schema::Schema;
use probdedup_model::xtuple::XTuple;
use probdedup_reduction::{
    block_alternatives, block_conflict_resolved, conflict_resolved_snm, multipass_snm, ranked_snm,
    sorted_neighborhood, sorting_alternatives, CandidatePairs, ConflictResolution, KeySpec,
    RankingFunction, SnmEntry, WorldSelection,
};

/// Strategy: a small x-relation (as a Vec of x-tuples) over (name, job).
fn arb_xtuples() -> impl Strategy<Value = Vec<XTuple>> {
    proptest::collection::vec(
        proptest::collection::vec(("[A-D][a-c]{1,3}", "[w-z]{1,3}", 1u32..50), 1..3),
        0..7,
    )
    .prop_map(|tuples| {
        let s = Schema::new(["name", "job"]);
        tuples
            .into_iter()
            .map(|alts| {
                let total: u32 = alts.iter().map(|(_, _, w)| *w).sum();
                let denom = f64::from(total) * 1.2;
                let mut b = XTuple::builder(&s);
                for (n, j, w) in alts {
                    b = b.alt(f64::from(w) / denom, [n, j]);
                }
                b.build().unwrap()
            })
            .collect()
    })
}

fn spec() -> KeySpec {
    KeySpec::paper_example(0, 1)
}

/// All pairs are canonical (lo < hi), in range, and unique.
fn check_pairs_wellformed(pairs: &CandidatePairs, n: usize) -> Result<(), TestCaseError> {
    let mut seen = std::collections::HashSet::new();
    for &(i, j) in pairs.pairs() {
        prop_assert!(i < j, "non-canonical pair ({i},{j})");
        prop_assert!(j < n, "out of range pair ({i},{j})");
        prop_assert!(seen.insert((i, j)), "duplicate pair ({i},{j})");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every reduction method yields well-formed pair sets.
    #[test]
    fn all_methods_wellformed(tuples in arb_xtuples()) {
        let n = tuples.len();
        let s = spec();
        check_pairs_wellformed(&multipass_snm(&tuples, &s, 2, WorldSelection::TopK(3)).pairs, n)?;
        check_pairs_wellformed(&conflict_resolved_snm(&tuples, &s, 2, ConflictResolution::MostProbableAlternative).0, n)?;
        check_pairs_wellformed(&sorting_alternatives(&tuples, &s, 2).pairs, n)?;
        check_pairs_wellformed(&ranked_snm(&tuples, &s, 2, RankingFunction::ExpectedScore).0, n)?;
        check_pairs_wellformed(&block_alternatives(&tuples, &s).pairs, n)?;
    }

    /// The paper's subset claim (Section V-A.2): conflict-resolved (most
    /// probable alternative) matchings ⊆ all-worlds multi-pass matchings.
    #[test]
    fn conflict_resolved_subset_of_multipass(tuples in arb_xtuples()) {
        prop_assume!(tuples.len() >= 2);
        let s = spec();
        let (resolved, _) = conflict_resolved_snm(&tuples, &s, 3, ConflictResolution::MostProbableAlternative);
        let multi = multipass_snm(&tuples, &s, 3, WorldSelection::All { limit: 100_000 });
        for &(i, j) in resolved.pairs() {
            prop_assert!(multi.pairs.contains(i, j), "({i},{j}) escaped the multipass");
        }
    }

    /// Conflict-resolved blocking ⊆ per-alternative blocking (an x-tuple's
    /// most probable key is one of its alternative keys).
    #[test]
    fn blocking_containment(tuples in arb_xtuples()) {
        let s = spec();
        let resolved = block_conflict_resolved(&tuples, &s, ConflictResolution::MostProbableAlternative);
        let alts = block_alternatives(&tuples, &s);
        for &(i, j) in resolved.pairs.pairs() {
            prop_assert!(alts.pairs.contains(i, j));
        }
    }

    /// SNM candidate sets grow monotonically with the window size.
    #[test]
    fn window_monotonicity(tuples in arb_xtuples(), w in 2usize..5) {
        let s = spec();
        let small = sorting_alternatives(&tuples, &s, w);
        let large = sorting_alternatives(&tuples, &s, w + 1);
        for &(i, j) in small.pairs.pairs() {
            prop_assert!(large.pairs.contains(i, j));
        }
    }

    /// Multipass with more worlds can only add pairs.
    #[test]
    fn world_budget_monotonicity(tuples in arb_xtuples(), k in 1usize..4) {
        let s = spec();
        let few = multipass_snm(&tuples, &s, 2, WorldSelection::TopK(k));
        let many = multipass_snm(&tuples, &s, 2, WorldSelection::TopK(k + 2));
        for &(i, j) in few.pairs.pairs() {
            prop_assert!(many.pairs.contains(i, j));
        }
    }

    /// The generic SNM never exceeds `entries · (window − 1)` pairs and is
    /// permutation-invariant in its input order.
    #[test]
    fn snm_bounds_and_determinism(
        keys in proptest::collection::vec(("[a-c]{1,2}", 0usize..6), 0..12),
        w in 2usize..4,
    ) {
        let n = 6;
        let entries: Vec<SnmEntry> = keys.iter().map(|(k, t)| SnmEntry::new(k.clone(), *t)).collect();
        let (pairs, _) = sorted_neighborhood(entries.clone(), w, n, false);
        prop_assert!(pairs.len() <= entries.len().saturating_mul(w - 1));
        let mut reversed = entries;
        reversed.reverse();
        let (pairs_rev, _) = sorted_neighborhood(reversed, w, n, false);
        // Same *set* of pairs regardless of input order.
        prop_assert_eq!(pairs.len(), pairs_rev.len());
        for &(i, j) in pairs.pairs() {
            prop_assert!(pairs_rev.contains(i, j));
        }
    }

    /// Ranked SNM orders every tuple exactly once.
    #[test]
    fn ranking_is_a_permutation(tuples in arb_xtuples()) {
        let s = spec();
        for f in [RankingFunction::MostProbableKey, RankingFunction::ExpectedScore] {
            let (_, order) = ranked_snm(&tuples, &s, 2, f);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..tuples.len()).collect::<Vec<_>>());
        }
    }
}
