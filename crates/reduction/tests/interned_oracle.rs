//! Interned-key reduction vs the string-key oracle.
//!
//! Every SNM/blocking entry point now runs over interned
//! [`KeySymbol`](probdedup_model::intern::KeySymbol)s; the string-rendering
//! implementations are retained as `*_oracle` functions. These property
//! tests assert the two paths produce **identical** candidate-pair sets,
//! sorted orders and block views across generated schemas — prefix lengths
//! 0 (whole value) through 8, multi-byte UTF-8 values, empty strings,
//! explicit ⊥ mass, and uncertain values inside alternatives — plus the
//! headline multi-pass guarantee: passes ≥ 2 perform **zero** key renders
//! (observed through the `KeyPool` render counter, the only place key text
//! is ever rendered).

use proptest::prelude::*;

use probdedup_model::pvalue::PValue;
use probdedup_model::schema::Schema;
use probdedup_model::value::Value;
use probdedup_model::xtuple::XTuple;
use probdedup_reduction::{
    block_alternatives, block_alternatives_oracle, block_conflict_resolved,
    block_conflict_resolved_oracle, block_multipass, block_multipass_oracle, conflict_resolved_snm,
    conflict_resolved_snm_oracle, multipass_snm, multipass_snm_oracle, multipass_snm_pairs,
    multipass_snm_with_table, sorting_alternatives, sorting_alternatives_oracle,
    ConflictResolution, KeyPart, KeySpec, WorldSelection,
};

/// Value vocabulary: ASCII, multi-byte UTF-8 (2- and 3-byte sequences,
/// combining-free), empty strings, shared prefixes, and a ⊥ marker (`None`
/// renders through the explicit null branch below).
const VOCAB: &[&str] = &[
    "",
    "J",
    "Jo",
    "John",
    "Johan",
    "Johannes",
    "pilot",
    "pianist",
    "mechanic",
    "müller",
    "Łukasz",
    "Łuk",
    "东京都",
    "José",
    "ñ",
    "zzz",
];

/// The non-text outcomes mixed into the vocabulary: integers and reals,
/// including the `0.0`/`-0.0` pair (Eq-unified, must render identically
/// so interned and string keys agree on the shared symbol).
fn numeric_value(i: usize) -> Value {
    match i {
        0 => Value::Int(7),
        1 => Value::Int(-3),
        2 => Value::Real(0.0),
        3 => Value::Real(-0.0),
        _ => Value::Real(2.5),
    }
}
const NUMERICS: usize = 5;

/// One uncertain value: 1–3 outcomes drawn from the text vocabulary plus
/// the numeric extras (weights normalized to a total below 1 about half
/// the time, leaving explicit ⊥ mass), or a pure ⊥ value.
fn arb_pvalue() -> impl Strategy<Value = PValue> {
    (
        proptest::collection::vec((0..VOCAB.len() + NUMERICS, 1u32..20), 1..4),
        0u32..4,
    )
        .prop_map(|(outcomes, null_weight)| {
            let total: u32 = outcomes.iter().map(|(_, w)| w).sum::<u32>() + null_weight * 5;
            let denom = f64::from(total.max(1));
            let entries: Vec<(Value, f64)> = outcomes
                .iter()
                .map(|&(i, w)| {
                    let v = match VOCAB.get(i) {
                        Some(s) => Value::from(*s),
                        None => numeric_value(i - VOCAB.len()),
                    };
                    (v, f64::from(w) / denom)
                })
                .collect();
            PValue::categorical(entries).expect("weights sum below 1")
        })
}

/// A small x-relation over `n_attrs` attributes: 0–6 x-tuples of 1–3
/// alternatives each, with uncertain values inside alternatives.
fn arb_tuples(n_attrs: usize) -> impl Strategy<Value = Vec<XTuple>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                proptest::collection::vec(arb_pvalue(), n_attrs..=n_attrs),
                1u32..20,
            ),
            1..4,
        ),
        0..7,
    )
    .prop_map(move |tuples| {
        let names: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
        let s = Schema::new(names);
        tuples
            .into_iter()
            .map(|alts| {
                let total: u32 = alts.iter().map(|(_, w)| *w).sum();
                let denom = f64::from(total) * 1.2;
                let mut b = XTuple::builder(&s);
                for (pvs, w) in alts {
                    b = b.alt_pvalues(f64::from(w) / denom, pvs);
                }
                b.build().expect("alternative masses below 1")
            })
            .collect()
    })
}

/// A key spec over `n_attrs` attributes: 1–3 parts, prefix lengths 0
/// (whole value) through 8.
fn arb_spec(n_attrs: usize) -> impl Strategy<Value = KeySpec> {
    proptest::collection::vec((0..n_attrs, 0usize..=8), 1..4).prop_map(|parts| {
        KeySpec::new(
            parts
                .into_iter()
                .map(|(a, l)| KeyPart::prefix(a, l))
                .collect(),
        )
    })
}

/// Schema width + tuples + spec in one strategy.
fn arb_case() -> impl Strategy<Value = (Vec<XTuple>, KeySpec)> {
    (1usize..4).prop_flat_map(|n_attrs| (arb_tuples(n_attrs), arb_spec(n_attrs)))
}

const SELECTIONS: [WorldSelection; 3] = [
    WorldSelection::All { limit: 48 },
    WorldSelection::TopK(3),
    WorldSelection::DiverseTopK { k: 3, pool: 16 },
];

const STRATEGIES: [ConflictResolution; 3] = [
    ConflictResolution::MostProbableAlternative,
    ConflictResolution::MostProbableKey,
    ConflictResolution::FirstAlternative,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sorting-alternatives: identical pairs, order and raw entry count.
    #[test]
    fn sorting_alternatives_matches_oracle((tuples, spec) in arb_case()) {
        for window in [2usize, 3, 5] {
            let a = sorting_alternatives(&tuples, &spec, window);
            let b = sorting_alternatives_oracle(&tuples, &spec, window);
            prop_assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "window {}", window);
            prop_assert_eq!(&a.order, &b.order, "window {}", window);
            prop_assert_eq!(a.raw_entries, b.raw_entries);
        }
    }

    /// Multi-pass SNM: identical pairs and identical per-pass sorted
    /// orders under every world-selection policy; the lean pairs-only
    /// entry point agrees too.
    #[test]
    fn multipass_snm_matches_oracle((tuples, spec) in arb_case()) {
        for selection in SELECTIONS {
            let a = multipass_snm(&tuples, &spec, 3, selection);
            let b = multipass_snm_oracle(&tuples, &spec, 3, selection);
            prop_assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{:?}", selection);
            prop_assert_eq!(a.passes.len(), b.passes.len(), "{:?}", selection);
            for ((wa, oa), (wb, ob)) in a.passes.iter().zip(&b.passes) {
                prop_assert_eq!(&wa.choices, &wb.choices);
                prop_assert_eq!(oa, ob, "{:?}", selection);
            }
            let lean = multipass_snm_pairs(&tuples, &spec, 3, selection);
            prop_assert_eq!(lean.pairs(), b.pairs.pairs(), "{:?}", selection);
        }
    }

    /// Conflict-resolved SNM: identical pairs and sorted key lists under
    /// all three resolution strategies.
    #[test]
    fn conflict_resolved_snm_matches_oracle((tuples, spec) in arb_case()) {
        for strategy in STRATEGIES {
            let (ap, ao) = conflict_resolved_snm(&tuples, &spec, 3, strategy);
            let (bp, bo) = conflict_resolved_snm_oracle(&tuples, &spec, 3, strategy);
            prop_assert_eq!(ap.pairs(), bp.pairs(), "{:?}", strategy);
            prop_assert_eq!(&ao, &bo, "{:?}", strategy);
        }
    }

    /// Blocking (all three adaptations): identical pairs and identical
    /// sorted block views.
    #[test]
    fn blocking_matches_oracle((tuples, spec) in arb_case()) {
        let a = block_alternatives(&tuples, &spec);
        let b = block_alternatives_oracle(&tuples, &spec);
        prop_assert_eq!(a.pairs.pairs(), b.pairs.pairs());
        prop_assert_eq!(&a.blocks, &b.blocks);
        // The hash-dedup'd direct path, the string oracle and the
        // interner-backed variant must be three spellings of one function.
        let c = probdedup_reduction::block_alternatives_interned(&tuples, &spec);
        prop_assert_eq!(a.pairs.pairs(), c.pairs.pairs());
        prop_assert_eq!(&a.blocks, &c.blocks);
        for strategy in STRATEGIES {
            let a = block_conflict_resolved(&tuples, &spec, strategy);
            let b = block_conflict_resolved_oracle(&tuples, &spec, strategy);
            prop_assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{:?}", strategy);
            prop_assert_eq!(&a.blocks, &b.blocks, "{:?}", strategy);
        }
        for selection in SELECTIONS {
            let a = block_multipass(&tuples, &spec, selection);
            let b = block_multipass_oracle(&tuples, &spec, selection);
            prop_assert_eq!(a.pairs.pairs(), b.pairs.pairs(), "{:?}", selection);
            prop_assert_eq!(&a.blocks, &b.blocks, "{:?}", selection);
        }
    }

    /// The interned key table resolves to exactly the string path's
    /// per-alternative keys, and renders only at build time.
    #[test]
    fn key_table_resolves_to_string_keys((tuples, spec) in arb_case()) {
        let table = spec.key_table(&tuples);
        for (i, t) in tuples.iter().enumerate() {
            let strings = spec.alternative_keys(t);
            let resolved: Vec<&str> = table
                .alternative_keys(i)
                .iter()
                .map(|&k| table.resolve(k))
                .collect();
            prop_assert_eq!(resolved, strings);
        }
        let frozen = table.render_count();
        for i in 0..tuples.len() {
            for &k in table.alternative_keys(i) {
                let _ = table.rank(k);
                let _ = table.resolve(k);
            }
        }
        prop_assert_eq!(table.render_count(), frozen, "reads must not render");
    }
}

/// Eq-unified values that could render differently (`0.0` vs `-0.0`) must
/// produce one shared key on both paths: the interned path resolves both
/// to one `Symbol`, and `Value::render` canonicalizes through the same
/// equality class, so the string oracle agrees.
#[test]
fn unified_float_values_share_one_key_on_both_paths() {
    let s = Schema::new(["x"]);
    let tuples: Vec<XTuple> = [Value::Real(0.0), Value::Real(-0.0)]
        .into_iter()
        .map(|v| XTuple::builder(&s).alt(1.0, [v]).build().unwrap())
        .collect();
    let spec = KeySpec::new(vec![KeyPart::full(0)]);
    let interned = block_alternatives(&tuples, &spec);
    let oracle = block_alternatives_oracle(&tuples, &spec);
    assert_eq!(interned.pairs.pairs(), &[(0, 1)], "one block, one pair");
    assert_eq!(interned.pairs.pairs(), oracle.pairs.pairs());
    assert_eq!(interned.blocks, oracle.blocks);
    assert_eq!(interned.blocks.keys().collect::<Vec<_>>(), vec!["0"]);
}

/// The headline multi-pass guarantee: all key rendering happens while the
/// [`KeySpec::key_table`] is built; running one pass and then seven more
/// over the same table adds **zero** renders — the second and later passes
/// are sort-only.
#[test]
fn multipass_passes_after_first_render_nothing() {
    let s = Schema::new(["name", "job"]);
    let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
    let tuples: Vec<XTuple> = vec![
        XTuple::builder(&s)
            .alt(0.7, ["John", "pilot"])
            .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
            .build()
            .unwrap(),
        XTuple::builder(&s)
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .build()
            .unwrap(),
        XTuple::builder(&s)
            .alt(0.8, ["John", "pilot"])
            .alt(0.2, ["Johan", "pianist"])
            .build()
            .unwrap(),
        XTuple::builder(&s)
            .alt(0.2, [Value::from("John"), Value::Null])
            .alt(0.6, ["Sean", "pilot"])
            .build()
            .unwrap(),
    ];
    let spec = KeySpec::paper_example(0, 1);
    let table = spec.key_table(&tuples);
    let after_build = table.render_count();
    assert!(
        after_build > 0,
        "building the table renders each prefix once"
    );

    // Pass 1.
    let first = multipass_snm_with_table(&tuples, &table, 2, WorldSelection::TopK(1));
    assert_eq!(
        table.render_count(),
        after_build,
        "pass 1 reuses the table's rendered keys"
    );

    // Passes 1..=8 over the same table: still zero additional renders, and
    // the union contains pass 1.
    let eight = multipass_snm_with_table(&tuples, &table, 2, WorldSelection::TopK(8));
    assert_eq!(
        table.render_count(),
        after_build,
        "passes ≥ 2 are sort-only: zero key renders"
    );
    for &(i, j) in first.pairs() {
        assert!(eight.contains(i, j));
    }

    // The string-key oracle, by contrast, renders for every pass: its cost
    // is what the counter would show without the table (sanity-check the
    // counter is actually measuring the rendering path).
    let oracle = multipass_snm_oracle(&tuples, &spec, 2, WorldSelection::TopK(8));
    assert_eq!(oracle.pairs.pairs(), eight.pairs());
}
