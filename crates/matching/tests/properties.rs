//! Property tests for attribute value matching: Eq. 5 laws and the Eq. 4
//! reduction.

use proptest::prelude::*;

use probdedup_matching::{
    compare_tuples, pvalue_similarity, AttributeComparators, ValueComparator,
};
use probdedup_model::pvalue::PValue;
use probdedup_model::schema::Schema;
use probdedup_model::tuple::ProbTuple;
use probdedup_model::value::Value;
use probdedup_textsim::{Exact, NormalizedHamming};

fn arb_pvalue() -> impl Strategy<Value = PValue> {
    proptest::collection::vec(("[a-d]{1,4}", 1u32..100), 0..4).prop_map(|entries| {
        let total: u32 = entries.iter().map(|(_, w)| *w).sum();
        let denom = f64::from(total.max(1)) * 1.25;
        PValue::categorical(
            entries
                .into_iter()
                .map(|(v, w)| (Value::from(v), f64::from(w) / denom)),
        )
        .expect("mass ≤ 1")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 5 output is in [0, 1] and symmetric for any kernel satisfying the
    /// comparator laws.
    #[test]
    fn similarity_laws(a in arb_pvalue(), b in arb_pvalue()) {
        let cmp = ValueComparator::text(NormalizedHamming::new());
        let ab = pvalue_similarity(&a, &b, &cmp);
        let ba = pvalue_similarity(&b, &a, &cmp);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    /// Reflexivity on certain values: sim(v, v) = 1. (Uncertain values
    /// compared with themselves score < 1 — they may disagree across
    /// outcomes — so reflexivity holds only for certain ones.)
    #[test]
    fn certain_reflexivity(s in "[a-z]{1,8}") {
        let v = PValue::certain(s);
        let cmp = ValueComparator::text(NormalizedHamming::new());
        prop_assert!((pvalue_similarity(&v, &v, &cmp) - 1.0).abs() < 1e-12);
    }

    /// With the exact kernel, Eq. 5 collapses to Eq. 4 (equality
    /// probability) — the reduction stated in Section IV-A.
    #[test]
    fn eq5_reduces_to_eq4(a in arb_pvalue(), b in arb_pvalue()) {
        let exact = ValueComparator::text(Exact);
        let via_eq5 = pvalue_similarity(&a, &b, &exact);
        let via_eq4 = a.equality_prob(&b);
        prop_assert!((via_eq5 - via_eq4).abs() < 1e-12);
    }

    /// Eq. 5 under any kernel dominates Eq. 4 (a kernel only adds partial
    /// credit for unequal pairs).
    #[test]
    fn kernel_dominates_equality(a in arb_pvalue(), b in arb_pvalue()) {
        let cmp = ValueComparator::text(NormalizedHamming::new());
        prop_assert!(pvalue_similarity(&a, &b, &cmp) >= a.equality_prob(&b) - 1e-12);
    }

    /// Mixing mass toward ⊥ on one side only can never increase similarity
    /// against a certain existing value.
    #[test]
    fn null_mass_monotonicity(s in "[a-z]{1,6}", keep in 1u32..=100) {
        let certain = PValue::certain(s.clone());
        let partial = PValue::categorical([(Value::from(s.clone()), f64::from(keep) / 100.0)]).unwrap();
        let target = PValue::certain(s);
        let cmp = ValueComparator::text(NormalizedHamming::new());
        prop_assert!(
            pvalue_similarity(&partial, &target, &cmp)
                <= pvalue_similarity(&certain, &target, &cmp) + 1e-12
        );
    }

    /// Comparison vectors ignore membership probability entirely.
    #[test]
    fn membership_invariance(a in arb_pvalue(), b in arb_pvalue(), p in 1u32..=100, q in 1u32..=100) {
        let s = Schema::new(["x"]);
        let mk = |v: &PValue, prob: f64| {
            ProbTuple::builder(&s).pvalue("x", v.clone()).probability(prob).build().unwrap()
        };
        let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
        let c1 = compare_tuples(&mk(&a, f64::from(p) / 100.0), &mk(&b, 1.0), &cmp);
        let c2 = compare_tuples(&mk(&a, f64::from(q) / 100.0), &mk(&b, 0.5), &cmp);
        prop_assert_eq!(c1, c2);
    }

    /// Upper-bound pruning (descending-probability traversal + early
    /// break) never moves Eq. 5 by more than 1e-12.
    #[test]
    fn pruned_agrees_with_unpruned(a in arb_pvalue(), b in arb_pvalue()) {
        use probdedup_matching::pvalue_similarity_pruned;
        let cmp = ValueComparator::text(NormalizedHamming::new());
        let slow = pvalue_similarity(&a, &b, &cmp);
        let fast = pvalue_similarity_pruned(&a, &b, &cmp);
        prop_assert!((slow - fast).abs() < 1e-12, "unpruned {slow} vs pruned {fast}");
    }

    /// The interned hot path (symbol pool + sharded similarity cache +
    /// pruning) agrees with the uncached reference to 1e-12 — including on
    /// repeat comparisons, where every kernel evaluation is a cache hit.
    #[test]
    fn interned_cached_agrees_with_uncached(
        rows in proptest::collection::vec((arb_pvalue(), arb_pvalue()), 1..5)
    ) {
        use probdedup_matching::interned::{
            compare_xtuples_interned, intern_tuples, InternedComparators,
        };
        use probdedup_model::xtuple::XTuple;

        let s = Schema::new(["x", "y"]);
        let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
        let tuples: Vec<XTuple> = rows
            .iter()
            .map(|(x, y)| {
                XTuple::builder(&s)
                    .alt_pvalues(1.0, [x.clone(), y.clone()])
                    .build()
                    .unwrap()
            })
            .collect();
        let (pool, interned) = intern_tuples(&tuples);
        let icmps = InternedComparators::new(&pool, &cmp);
        for round in 0..2 {
            for i in 0..tuples.len() {
                for j in 0..tuples.len() {
                    let reference =
                        probdedup_matching::compare_xtuples(&tuples[i], &tuples[j], &cmp);
                    let fast = compare_xtuples_interned(&interned[i], &interned[j], &icmps);
                    for (ii, jj, v) in reference.iter() {
                        let w = fast.vector(ii, jj);
                        for (x, y) in v.iter().zip(w) {
                            prop_assert!(
                                (x - y).abs() < 1e-12,
                                "round {round}, pair ({i},{j}): {x} vs {y}"
                            );
                        }
                    }
                }
            }
        }
    }
}
