//! Comparison matrices for x-tuple pairs (Section IV-B, Fig. 6 input).
//!
//! When comparing two x-tuples `t₁ = {t₁¹…t₁ᵏ}` and `t₂ = {t₂¹…t₂ˡ}`, all
//! alternative tuples are compared pairwise, producing `k × l` comparison
//! vectors instead of one: the comparison matrix `c⃗(t₁,t₂) = [c⃗¹¹ … c⃗ᵏˡ]`.

use probdedup_model::xtuple::XTuple;

use crate::pvalue_sim::pvalue_similarity;
use crate::vector::{AttributeComparators, ComparisonVector};

/// A `k × l` matrix of comparison vectors for an x-tuple pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonMatrix {
    k: usize,
    l: usize,
    /// Row-major: entry `(i, j)` at index `i * l + j`.
    vectors: Vec<ComparisonVector>,
}

impl ComparisonMatrix {
    /// Assemble a matrix from row-major vectors (used by the interned
    /// comparison path; `vectors.len()` must equal `k · l`).
    pub(crate) fn from_vectors(k: usize, l: usize, vectors: Vec<ComparisonVector>) -> Self {
        debug_assert_eq!(vectors.len(), k * l);
        Self { k, l, vectors }
    }

    /// Number of alternatives of the first x-tuple.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of alternatives of the second x-tuple.
    pub fn l(&self) -> usize {
        self.l
    }

    /// The comparison vector of alternative pair `(i, j)`.
    pub fn vector(&self, i: usize, j: usize) -> &ComparisonVector {
        assert!(
            i < self.k && j < self.l,
            "({i},{j}) out of {0}×{1}",
            self.k,
            self.l
        );
        &self.vectors[i * self.l + j]
    }

    /// Iterate `(i, j, c⃗ᵢⱼ)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &ComparisonVector)> {
        self.vectors
            .iter()
            .enumerate()
            .map(move |(idx, v)| (idx / self.l, idx % self.l, v))
    }

    /// Total number of alternative pairs (`k · l`).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the matrix is empty (never true for valid x-tuples).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Compare all alternative pairs of two x-tuples: attribute values of the
/// alternatives are compared with Eq. 5 (they may themselves be uncertain,
/// e.g. the paper's `mu*` value), yielding the comparison matrix.
pub fn compare_xtuples(
    t1: &XTuple,
    t2: &XTuple,
    comparators: &AttributeComparators,
) -> ComparisonMatrix {
    let k = t1.len();
    let l = t2.len();
    let mut vectors = Vec::with_capacity(k * l);
    for a1 in t1.alternatives() {
        for a2 in t2.alternatives() {
            let v: ComparisonVector = (0..comparators.arity())
                .map(|i| pvalue_similarity(a1.value(i), a2.value(i), comparators.get(i)))
                .collect();
            vectors.push(v);
        }
    }
    ComparisonMatrix { k, l, vectors }
}

/// [`compare_xtuples`] through per-attribute memoizing kernels (see
/// [`CachedComparator`](crate::cache::CachedComparator)): across a whole
/// relation the same value pairs recur constantly, so the cache turns most
/// kernel evaluations into hash lookups. Same results as the uncached path
/// (asserted by tests).
pub fn compare_xtuples_cached(
    t1: &XTuple,
    t2: &XTuple,
    comparators: &[crate::cache::CachedComparator],
) -> ComparisonMatrix {
    let k = t1.len();
    let l = t2.len();
    let mut vectors = Vec::with_capacity(k * l);
    for a1 in t1.alternatives() {
        for a2 in t2.alternatives() {
            let v: ComparisonVector = comparators
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    crate::pvalue_sim::pvalue_similarity_cached(a1.value(i), a2.value(i), c)
                })
                .collect();
            vectors.push(v);
        }
    }
    ComparisonMatrix { k, l, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::pvalue::PValue;
    use probdedup_model::schema::Schema;
    use probdedup_textsim::{NormalizedHamming, StringComparator};

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn comparators() -> AttributeComparators {
        AttributeComparators::uniform(&schema(), NormalizedHamming::new())
    }

    /// Fig. 7's pair (t32, t42): the 3×1 comparison matrix underlying
    /// sim(t32, t42) = 7/15.
    #[test]
    fn fig7_comparison_matrix() {
        let s = schema();
        let t32 = XTuple::builder(&s)
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .build()
            .unwrap();
        let t42 = XTuple::builder(&s)
            .alt(0.8, ["Tom", "mechanic"])
            .build()
            .unwrap();
        let m = compare_xtuples(&t32, &t42, &comparators());
        assert_eq!((m.k(), m.l()), (3, 1));
        assert_eq!(m.len(), 3);
        // (Tim, mechanic) vs (Tom, mechanic): c = [2/3, 1].
        assert!((m.vector(0, 0)[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.vector(0, 0)[1] - 1.0).abs() < 1e-12);
        // (Jim, mechanic) vs (Tom, mechanic): c = [1/3, 1].
        assert!((m.vector(1, 0)[0] - 1.0 / 3.0).abs() < 1e-12);
        // (Jim, baker) vs (Tom, mechanic): c = [1/3, 0].
        assert!((m.vector(2, 0)[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.vector(2, 0)[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_values_inside_alternatives_use_eq5() {
        let s = schema();
        let mu = PValue::uniform(["mud logger", "musician"]).unwrap();
        let t = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::certain("Johan"), mu])
            .build()
            .unwrap();
        let u = XTuple::builder(&s)
            .alt(1.0, ["Johan", "musician"])
            .build()
            .unwrap();
        let m = compare_xtuples(&t, &u, &comparators());
        // job: .5·sim(mud logger, musician) + .5·1.
        let expected = 0.5 * NormalizedHamming::new().similarity("mud logger", "musician") + 0.5;
        assert!((m.vector(0, 0)[1] - expected).abs() < 1e-12);
    }

    #[test]
    fn iter_is_row_major() {
        let s = schema();
        let t = XTuple::builder(&s)
            .alt(0.5, ["a", "x"])
            .alt(0.5, ["b", "y"])
            .build()
            .unwrap();
        let u = XTuple::builder(&s)
            .alt(0.4, ["a", "x"])
            .alt(0.6, ["b", "y"])
            .build()
            .unwrap();
        let m = compare_xtuples(&t, &u, &comparators());
        let coords: Vec<(usize, usize)> = m.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(!m.is_empty());
        // Diagonal pairs are identical: c = [1, 1].
        assert_eq!(m.vector(0, 0), &vec![1.0, 1.0]);
        assert_eq!(m.vector(1, 1), &vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_access_panics() {
        let s = schema();
        let t = XTuple::builder(&s).alt(1.0, ["a", "b"]).build().unwrap();
        let m = compare_xtuples(&t, &t, &comparators());
        let _ = m.vector(1, 0);
    }

    #[test]
    fn cached_path_matches_uncached() {
        use crate::cache::CachedComparator;
        use crate::value_cmp::ValueComparator;
        let s = schema();
        let t32 = XTuple::builder(&s)
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .build()
            .unwrap();
        let t42 = XTuple::builder(&s)
            .alt(0.8, ["Tom", "mechanic"])
            .build()
            .unwrap();
        let caches: Vec<CachedComparator> = (0..2)
            .map(|_| CachedComparator::new(ValueComparator::text(NormalizedHamming::new())))
            .collect();
        let plain = compare_xtuples(&t32, &t42, &comparators());
        let cached = compare_xtuples_cached(&t32, &t42, &caches);
        assert_eq!(plain, cached);
        // Second run hits the cache and still agrees.
        let cached2 = compare_xtuples_cached(&t32, &t42, &caches);
        assert_eq!(plain, cached2);
        let (hits, _) = caches[0].stats();
        assert!(hits > 0, "repeat comparison must hit the cache");
    }
}
