//! The interned matching hot path: Eq. 5 over [`Symbol`]s instead of
//! [`Value`](probdedup_model::value::Value)s.
//!
//! The pipeline interns every distinct attribute value of the (prepared)
//! relation once into a [`ValuePool`], converting each x-tuple into an
//! [`InternedXTuple`] whose supports are `(Symbol, probability)` pairs held
//! in **descending probability order**. From then on the quadratic matching
//! stage touches no strings:
//!
//! * similarity-cache keys are one packed `u64` per symbol pair
//!   ([`SymbolCache`]), probed through a sharded read-mostly table;
//! * the ⊥ conventions are integer tests on [`Symbol::NULL`];
//! * the original [`Value`](probdedup_model::value::Value) is resolved
//!   only on a cache miss, when the
//!   kernel genuinely has to run.
//!
//! The descending-probability layout also enables the **upper-bound
//! pruning** of [`interned_pvalue_similarity`]: because every kernel value
//! is ≤ 1, the contribution of all unvisited terms is bounded by the
//! remaining probability mass, and iteration stops as soon as that bound
//! cannot move the accumulated sum by more than [`PRUNE_EPS`] (or the sum
//! has already saturated at 1, where clamping makes further terms exactly
//! irrelevant). The result differs from the exhaustive sum by less than
//! `(|supp(a₁)| + 1) · PRUNE_EPS` — far below every tolerance the paper's
//! figures are checked against (property-tested at 1e-12).

use std::sync::Arc;

use probdedup_model::intern::{Symbol, SymbolMap, ValuePool};
use probdedup_model::pvalue::PValue;
use probdedup_model::xtuple::XTuple;

use crate::cache::SymbolCache;
use crate::matrix::ComparisonMatrix;
use crate::value_cmp::{PreparedValue, ValueComparator};
use crate::vector::{AttributeComparators, ComparisonVector};

/// Mass threshold below which remaining Eq. 5 terms are pruned: their total
/// contribution is bounded by this value, three orders of magnitude below
/// the tightest tolerance (1e-12) any test or figure check uses.
pub const PRUNE_EPS: f64 = 1e-15;

/// An interned probabilistic attribute value: the support as symbols with
/// probabilities in **descending probability order**, plus the precomputed
/// ⊥ mass and existence mass Eq. 5's pruning bound needs.
#[derive(Debug, Clone)]
pub struct InternedPValue {
    /// `(symbol, probability)`, sorted by descending probability (ties
    /// broken by symbol for determinism).
    alts: Vec<(Symbol, f64)>,
    /// Implicit ⊥ mass (`1 − Σp`, clamped at 0).
    null_prob: f64,
    /// **Uncapped** probability sum `Σp` — the pruning budget (see
    /// `pruned_expected_similarity`; a support may sum to `1 + ε` within
    /// the model's tolerance and the budget must cover all of it).
    mass: f64,
}

impl InternedPValue {
    /// Intern one [`PValue`]'s support into `pool`.
    pub fn from_pvalue(pool: &mut ValuePool, pv: &PValue) -> Self {
        let mut alts: Vec<(Symbol, f64)> = pv
            .alternatives()
            .iter()
            .map(|(v, p)| (pool.intern(v), *p))
            .collect();
        alts.sort_by(|(sa, pa), (sb, pb)| {
            pb.partial_cmp(pa)
                .expect("finite probabilities")
                .then(sa.cmp(sb))
        });
        let mass = crate::pvalue_sim::support_mass(&alts);
        Self {
            alts,
            null_prob: pv.null_prob(),
            mass,
        }
    }

    /// The support, descending by probability.
    pub fn alternatives(&self) -> &[(Symbol, f64)] {
        &self.alts
    }

    /// The ⊥ mass.
    pub fn null_prob(&self) -> f64 {
        self.null_prob
    }
}

/// One interned x-tuple alternative: a full row of interned values with the
/// alternative's probability.
#[derive(Debug, Clone)]
pub struct InternedRow {
    values: Vec<InternedPValue>,
    probability: f64,
}

impl InternedRow {
    /// The interned value of attribute `i`.
    pub fn value(&self, i: usize) -> &InternedPValue {
        &self.values[i]
    }

    /// The alternative's probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

/// An interned x-tuple: the symbol-level mirror of [`XTuple`] the matching
/// stage iterates instead of the original.
#[derive(Debug, Clone)]
pub struct InternedXTuple {
    alternatives: Vec<InternedRow>,
}

impl InternedXTuple {
    /// Intern every alternative of `t` into `pool`.
    pub fn from_xtuple(pool: &mut ValuePool, t: &XTuple) -> Self {
        Self {
            alternatives: t
                .alternatives()
                .iter()
                .map(|alt| InternedRow {
                    values: alt
                        .values()
                        .iter()
                        .map(|pv| InternedPValue::from_pvalue(pool, pv))
                        .collect(),
                    probability: alt.probability(),
                })
                .collect(),
        }
    }

    /// The interned alternatives.
    pub fn alternatives(&self) -> &[InternedRow] {
        &self.alternatives
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// Whether the x-tuple has no alternatives (never true for valid input).
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }
}

/// Intern a whole relation; returns the frozen pool and the interned
/// mirror of `tuples` (index-aligned).
pub fn intern_tuples(tuples: &[XTuple]) -> (ValuePool, Vec<InternedXTuple>) {
    let mut pool = ValuePool::new();
    let interned = tuples
        .iter()
        .map(|t| InternedXTuple::from_xtuple(&mut pool, t))
        .collect();
    (pool, interned)
}

/// Per-attribute kernels + sharded symbol caches over a frozen pool: the
/// read-only context worker threads share during interned matching.
///
/// Alongside the caches, a per-symbol sidecar ([`SymbolMap`]) holds each
/// distinct value's prepared comparison state ([`PreparedValue`]: ASCII
/// class, character length, and — when a kernel asks for it — the Myers
/// `Peq` pattern bitmasks). The cache-miss kernel evaluation therefore
/// never re-scans a string it has seen before: interning pays a second
/// time by hanging the precomputation off the dense symbol index.
pub struct InternedComparators {
    pool: Arc<ValuePool>,
    per_attr: Vec<ValueComparator>,
    caches: Vec<SymbolCache>,
    prepared: SymbolMap<PreparedValue>,
}

impl InternedComparators {
    /// Bind `comparators` to a frozen `pool`, with one fresh cache per
    /// attribute (per-attribute caches keep entries disjoint when different
    /// attributes use different kernels), and precompute every symbol's
    /// [`PreparedValue`] — including pattern bitmasks iff some attribute's
    /// kernel exploits them.
    pub fn new(pool: Arc<ValuePool>, comparators: &AttributeComparators) -> Self {
        let per_attr: Vec<ValueComparator> = (0..comparators.arity())
            .map(|i| comparators.get(i).clone())
            .collect();
        let caches = (0..per_attr.len()).map(|_| SymbolCache::new()).collect();
        let with_bits = per_attr.iter().any(ValueComparator::wants_pattern_bits);
        let prepared = SymbolMap::build(&pool, |(_, v)| PreparedValue::of(v, with_bits));
        Self {
            pool,
            per_attr,
            caches,
            prepared,
        }
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }

    /// The shared value pool.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Aggregate `(hits, misses)` over all attribute caches.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.caches
            .iter()
            .map(SymbolCache::stats)
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }

    /// Total number of memoized symbol pairs across attributes.
    pub fn cached_pairs(&self) -> usize {
        self.caches.iter().map(SymbolCache::len).sum()
    }

    /// Memoized kernel similarity of two non-⊥ symbols for attribute
    /// `attr`. ⊥ must be handled by the caller.
    ///
    /// The kernel is evaluated on the **canonical** (smaller-symbol-first)
    /// orientation — the same one the cache key encodes — so that even a
    /// non-symmetric user kernel yields one deterministic memoized value
    /// regardless of which worker thread computes the pair first. The
    /// miss path runs over the per-symbol [`PreparedValue`]s, so each
    /// string's ASCII class / length / pattern bitmasks were computed
    /// exactly once, at interning time.
    #[inline]
    fn kernel(&self, attr: usize, a: Symbol, b: Symbol) -> f64 {
        debug_assert!(!a.is_null() && !b.is_null());
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        self.caches[attr].get_or_compute(lo, hi, || {
            self.per_attr[attr].similarity_prepared(self.prepared.get(lo), self.prepared.get(hi))
        })
    }
}

/// Eq. 5 over interned values with upper-bound pruning (the shared loop
/// in `pvalue_sim::pruned_expected_similarity`; see the module docs for
/// the error bound). Agrees with
/// [`pvalue_similarity`](crate::pvalue_sim::pvalue_similarity) to well
/// below 1e-12.
pub fn interned_pvalue_similarity(
    a: &InternedPValue,
    b: &InternedPValue,
    attr: usize,
    cmps: &InternedComparators,
) -> f64 {
    crate::pvalue_sim::pruned_expected_similarity(
        &a.alts,
        a.mass,
        a.null_prob,
        &b.alts,
        b.mass,
        b.null_prob,
        |&sa, &sb| cmps.kernel(attr, sa, sb),
    )
}

/// [`compare_xtuples`](crate::matrix::compare_xtuples) over interned
/// x-tuples: the k×l comparison matrix with every Eq. 5 evaluation going
/// through the symbol caches and pruning.
pub fn compare_xtuples_interned(
    t1: &InternedXTuple,
    t2: &InternedXTuple,
    cmps: &InternedComparators,
) -> ComparisonMatrix {
    let k = t1.len();
    let l = t2.len();
    let mut vectors = Vec::with_capacity(k * l);
    for a1 in &t1.alternatives {
        for a2 in &t2.alternatives {
            let v: ComparisonVector = (0..cmps.arity())
                .map(|i| interned_pvalue_similarity(a1.value(i), a2.value(i), i, cmps))
                .collect();
            vectors.push(v);
        }
    }
    ComparisonMatrix::from_vectors(k, l, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvalue_sim::pvalue_similarity;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;
    use probdedup_textsim::NormalizedHamming;

    fn comparators(schema: &Schema) -> AttributeComparators {
        AttributeComparators::uniform(schema, NormalizedHamming::new())
    }

    #[test]
    fn interned_similarity_matches_plain() {
        let s = Schema::new(["name", "job"]);
        let t11 = XTuple::builder(&s)
            .alt_pvalues(
                1.0,
                [
                    PValue::certain("Tim"),
                    PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap(),
                ],
            )
            .build()
            .unwrap();
        let t22 = XTuple::builder(&s)
            .alt_pvalues(
                0.8,
                [
                    PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap(),
                    PValue::certain("mechanic"),
                ],
            )
            .build()
            .unwrap();
        let cmp = comparators(&s);
        let (pool, interned) = intern_tuples(&[t11.clone(), t22.clone()]);
        let icmps = InternedComparators::new(Arc::new(pool), &cmp);
        let plain = crate::matrix::compare_xtuples(&t11, &t22, &cmp);
        let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        assert_eq!((plain.k(), plain.l()), (fast.k(), fast.l()));
        for (i, j, v) in plain.iter() {
            let w = fast.vector(i, j);
            for (x, y) in v.iter().zip(w) {
                assert!((x - y).abs() < 1e-12, "({i},{j}): {x} vs {y}");
            }
        }
        // Paper numbers survive the interned path.
        assert!((fast.vector(0, 0)[0] - 0.9).abs() < 1e-12);
        assert!((fast.vector(0, 0)[1] - 53.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn repeat_comparisons_hit_the_cache() {
        let s = Schema::new(["name"]);
        let a = XTuple::builder(&s).alt(1.0, ["machinist"]).build().unwrap();
        let b = XTuple::builder(&s).alt(1.0, ["mechanic"]).build().unwrap();
        let (pool, interned) = intern_tuples(&[a, b]);
        let icmps = InternedComparators::new(Arc::new(pool), &comparators(&Schema::new(["name"])));
        let first = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        let second = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        assert_eq!(first, second);
        let (hits, misses) = icmps.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 1);
        assert_eq!(icmps.cached_pairs(), 1);
    }

    #[test]
    fn bits_wanting_kernel_agrees_with_plain_path() {
        use probdedup_textsim::Levenshtein;
        // Levenshtein asks for per-symbol Myers tables; the sidecar path
        // must still match the plain (unprepared) evaluation bitwise.
        let s = Schema::new(["name", "note"]);
        let cmp = AttributeComparators::uniform(&s, Levenshtein::new());
        let long: String = ('a'..='z').cycle().take(90).collect(); // multi-word Myers
        let t1 = XTuple::builder(&s)
            .alt_pvalues(
                1.0,
                [
                    PValue::categorical([("machinist", 0.6), ("mechanic", 0.3)]).unwrap(),
                    PValue::certain(long.as_str()),
                ],
            )
            .build()
            .unwrap();
        let t2 = XTuple::builder(&s)
            .alt_pvalues(
                0.9,
                [
                    PValue::certain("machine operator"),
                    PValue::categorical([(&long[5..], 0.5), ("café liégeois", 0.5)]).unwrap(),
                ],
            )
            .build()
            .unwrap();
        let (pool, interned) = intern_tuples(&[t1.clone(), t2.clone()]);
        let icmps = InternedComparators::new(Arc::new(pool), &cmp);
        let plain = crate::matrix::compare_xtuples(&t1, &t2, &cmp);
        let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        for (i, j, v) in plain.iter() {
            let w = fast.vector(i, j);
            for (x, y) in v.iter().zip(w) {
                assert_eq!(x.to_bits(), y.to_bits(), "({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn null_conventions_survive_interning() {
        let s = Schema::new(["name"]);
        let null_t = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::null()])
            .build()
            .unwrap();
        let tim = XTuple::builder(&s).alt(1.0, ["Tim"]).build().unwrap();
        let (pool, interned) = intern_tuples(&[null_t, tim]);
        let icmps = InternedComparators::new(Arc::new(pool), &comparators(&s));
        let m_null_null = compare_xtuples_interned(&interned[0], &interned[0], &icmps);
        assert_eq!(m_null_null.vector(0, 0)[0], 1.0);
        let m_null_tim = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        assert_eq!(m_null_tim.vector(0, 0)[0], 0.0);
        // ⊥ comparisons never consult the kernel cache.
        assert_eq!(icmps.cached_pairs(), 0);
    }

    #[test]
    fn descending_probability_layout() {
        let mut pool = ValuePool::new();
        let pv = PValue::categorical([("low", 0.1), ("high", 0.6), ("mid", 0.25)]).unwrap();
        let ipv = InternedPValue::from_pvalue(&mut pool, &pv);
        let probs: Vec<f64> = ipv.alternatives().iter().map(|(_, p)| *p).collect();
        assert_eq!(probs, vec![0.6, 0.25, 0.1]);
        assert!((ipv.null_prob() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn partial_null_mass_contributes() {
        // a = {x: .6, ⊥: .4}, b = {x: .5, ⊥: .5} → 0.5 (as in the plain
        // path's unit test).
        let s = Schema::new(["v"]);
        let a = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::categorical([("x", 0.6)]).unwrap()])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::categorical([("x", 0.5)]).unwrap()])
            .build()
            .unwrap();
        let cmp = comparators(&s);
        let (pool, interned) = intern_tuples(&[a.clone(), b.clone()]);
        let icmps = InternedComparators::new(Arc::new(pool), &cmp);
        let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        let plain = crate::matrix::compare_xtuples(&a, &b, &cmp);
        assert!((fast.vector(0, 0)[0] - 0.5).abs() < 1e-12);
        assert!((fast.vector(0, 0)[0] - plain.vector(0, 0)[0]).abs() < 1e-12);
    }

    #[test]
    fn wide_supports_agree_with_plain_path() {
        // Randomish wide supports with skewed masses exercise both pruning
        // branches; results must agree with the exhaustive sum to 1e-12.
        let s = Schema::new(["v"]);
        let mk = |tag: char, n: usize, scale: f64| {
            PValue::categorical((0..n).map(|i| {
                let p = scale / f64::powi(2.0, i as i32 + 1);
                (format!("{tag}{i:02}"), p)
            }))
            .unwrap()
        };
        let cmp = comparators(&s);
        for (na, nb) in [(1usize, 8usize), (8, 8), (16, 3), (20, 20)] {
            let pa = mk('a', na, 0.9);
            let pb = mk('b', nb, 0.99);
            let a = XTuple::builder(&s)
                .alt_pvalues(1.0, [pa.clone()])
                .build()
                .unwrap();
            let b = XTuple::builder(&s)
                .alt_pvalues(1.0, [pb.clone()])
                .build()
                .unwrap();
            let (pool, interned) = intern_tuples(&[a, b]);
            let icmps = InternedComparators::new(Arc::new(pool), &cmp);
            let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps).vector(0, 0)[0];
            let slow = pvalue_similarity(&pa, &pb, cmp.get(0));
            assert!(
                (fast - slow).abs() < 1e-12,
                "supports {na}x{nb}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn cross_variant_values_stay_distinct() {
        // "30" (text) vs 30 (int) must not be conflated by interning.
        let s = Schema::new(["v"]);
        let a = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::certain(Value::from("30"))])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::certain(Value::Int(30))])
            .build()
            .unwrap();
        let (pool, interned) = intern_tuples(&[a, b]);
        let icmps = InternedComparators::new(Arc::new(pool), &comparators(&s));
        let m = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        // Mixed text/int compares as 0 under the default comparator.
        assert_eq!(m.vector(0, 0)[0], 0.0);
    }
}
