//! The interned matching hot path: Eq. 5 over [`Symbol`]s instead of
//! [`Value`](probdedup_model::value::Value)s.
//!
//! The pipeline interns every distinct attribute value of the (prepared)
//! relation once into a [`ValuePool`], converting each x-tuple into an
//! [`InternedXTuple`] whose supports are `(Symbol, probability)` pairs held
//! in **descending probability order**. From then on the quadratic matching
//! stage touches no strings:
//!
//! * similarity-cache keys are one packed `u64` per symbol pair
//!   ([`SymbolCache`]), probed through a sharded read-mostly table;
//! * the ⊥ conventions are integer tests on [`Symbol::NULL`];
//! * the original [`Value`](probdedup_model::value::Value) is resolved
//!   only on a cache miss, when the
//!   kernel genuinely has to run.
//!
//! The descending-probability layout also enables the **upper-bound
//! pruning** of [`interned_pvalue_similarity`]: because every kernel value
//! is ≤ 1, the contribution of all unvisited terms is bounded by the
//! remaining probability mass, and iteration stops as soon as that bound
//! cannot move the accumulated sum by more than [`PRUNE_EPS`] (or the sum
//! has already saturated at 1, where clamping makes further terms exactly
//! irrelevant). The result differs from the exhaustive sum by less than
//! `(|supp(a₁)| + 1) · PRUNE_EPS` — far below every tolerance the paper's
//! figures are checked against (property-tested at 1e-12).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use probdedup_model::intern::{Symbol, SymbolMap, ValuePool};
use probdedup_model::pvalue::PValue;
use probdedup_model::xtuple::XTuple;

use crate::bounded::BoundedSim;
use crate::cache::SymbolCache;
use crate::matrix::ComparisonMatrix;
use crate::value_cmp::{PreparedValue, ValueComparator};
use crate::vector::{AttributeComparators, ComparisonVector};

/// Mass threshold below which remaining Eq. 5 terms are pruned: their total
/// contribution is bounded by this value, three orders of magnitude below
/// the tightest tolerance (1e-12) any test or figure check uses.
pub const PRUNE_EPS: f64 = 1e-15;

/// An interned probabilistic attribute value: the support as symbols with
/// probabilities in **descending probability order**, plus the precomputed
/// ⊥ mass and existence mass Eq. 5's pruning bound needs.
#[derive(Debug, Clone)]
pub struct InternedPValue {
    /// `(symbol, probability)`, sorted by descending probability (ties
    /// broken by symbol for determinism).
    alts: Vec<(Symbol, f64)>,
    /// Implicit ⊥ mass (`1 − Σp`, clamped at 0).
    null_prob: f64,
    /// **Uncapped** probability sum `Σp` — the pruning budget (see
    /// `pruned_expected_similarity`; a support may sum to `1 + ε` within
    /// the model's tolerance and the budget must cover all of it).
    mass: f64,
}

/// Which attributes each interned symbol occurs in, as a dense per-symbol
/// bitmask sidecar (attributes ≥ 63 share the top bit, conservatively).
///
/// Recorded during [`intern_tuples_tracked`] and consumed by
/// [`InternedComparators::with_usage`]: Myers `Peq` tables (~1 KiB per
/// string) are built **only** for symbols that actually appear in an
/// attribute whose kernel asks for pattern bits — on mixed-kernel schemas
/// the shared pool no longer pays for every symbol because one attribute's
/// kernel is bit-parallel.
#[derive(Debug, Clone, Default)]
pub struct AttributeUsage {
    masks: Vec<u64>,
}

impl AttributeUsage {
    /// The bit representing `attr` (attributes ≥ 63 are conflated onto the
    /// top bit — they can only cause over-building, never under-building).
    #[inline]
    fn bit(attr: usize) -> u64 {
        1u64 << attr.min(63)
    }

    /// Record that `sym` occurs in attribute `attr`.
    fn record(&mut self, sym: Symbol, attr: usize) {
        let idx = sym.index();
        if idx >= self.masks.len() {
            self.masks.resize(idx + 1, 0);
        }
        self.masks[idx] |= Self::bit(attr);
    }

    /// Whether `sym` occurs in any attribute of `attr_mask`.
    #[inline]
    fn intersects(&self, sym: Symbol, attr_mask: u64) -> bool {
        self.masks.get(sym.index()).copied().unwrap_or(0) & attr_mask != 0
    }

    /// The combined bit mask of `attrs` (see [`AttributeUsage::bit`]).
    fn mask_of(attrs: impl Iterator<Item = usize>) -> u64 {
        attrs.fold(0u64, |m, a| m | Self::bit(a))
    }
}

/// Whether `sym`'s sidecar should carry Myers pattern bits under the
/// given policy: usage-tracked (lazy) when `usage` is supplied, otherwise
/// eager for every symbol whenever any kernel wants bits.
#[inline]
fn wants_bits(sym: Symbol, bits_mask: u64, usage: Option<&AttributeUsage>) -> bool {
    match usage {
        Some(u) => u.intersects(sym, bits_mask),
        None => bits_mask != 0,
    }
}

impl InternedPValue {
    /// Intern one [`PValue`]'s support into `pool`.
    pub fn from_pvalue(pool: &mut ValuePool, pv: &PValue) -> Self {
        let mut alts: Vec<(Symbol, f64)> = pv
            .alternatives()
            .iter()
            .map(|(v, p)| (pool.intern(v), *p))
            .collect();
        alts.sort_by(|(sa, pa), (sb, pb)| {
            pb.partial_cmp(pa)
                .expect("finite probabilities")
                .then(sa.cmp(sb))
        });
        let mass = crate::pvalue_sim::support_mass(&alts);
        Self {
            alts,
            null_prob: pv.null_prob(),
            mass,
        }
    }

    /// The support, descending by probability.
    pub fn alternatives(&self) -> &[(Symbol, f64)] {
        &self.alts
    }

    /// The ⊥ mass.
    pub fn null_prob(&self) -> f64 {
        self.null_prob
    }
}

/// One interned x-tuple alternative: a full row of interned values with the
/// alternative's probability.
#[derive(Debug, Clone)]
pub struct InternedRow {
    values: Vec<InternedPValue>,
    probability: f64,
}

impl InternedRow {
    /// The interned value of attribute `i`.
    pub fn value(&self, i: usize) -> &InternedPValue {
        &self.values[i]
    }

    /// The alternative's probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

/// An interned x-tuple: the symbol-level mirror of [`XTuple`] the matching
/// stage iterates instead of the original.
#[derive(Debug, Clone)]
pub struct InternedXTuple {
    alternatives: Vec<InternedRow>,
}

impl InternedXTuple {
    /// Intern every alternative of `t` into `pool`.
    pub fn from_xtuple(pool: &mut ValuePool, t: &XTuple) -> Self {
        Self::build(pool, t, None)
    }

    /// [`from_xtuple`](Self::from_xtuple) while recording which attribute
    /// each symbol occurs in (for the lazy per-attribute `Peq` sidecars of
    /// [`InternedComparators::with_usage`]).
    pub fn from_xtuple_tracked(
        pool: &mut ValuePool,
        t: &XTuple,
        usage: &mut AttributeUsage,
    ) -> Self {
        Self::build(pool, t, Some(usage))
    }

    fn build(pool: &mut ValuePool, t: &XTuple, mut usage: Option<&mut AttributeUsage>) -> Self {
        Self {
            alternatives: t
                .alternatives()
                .iter()
                .map(|alt| InternedRow {
                    values: alt
                        .values()
                        .iter()
                        .enumerate()
                        .map(|(attr, pv)| {
                            let ipv = InternedPValue::from_pvalue(pool, pv);
                            if let Some(usage) = usage.as_deref_mut() {
                                for &(sym, _) in &ipv.alts {
                                    usage.record(sym, attr);
                                }
                            }
                            ipv
                        })
                        .collect(),
                    probability: alt.probability(),
                })
                .collect(),
        }
    }

    /// The interned alternatives.
    pub fn alternatives(&self) -> &[InternedRow] {
        &self.alternatives
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// Whether the x-tuple has no alternatives (never true for valid input).
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }
}

/// Intern a whole relation; returns the frozen pool and the interned
/// mirror of `tuples` (index-aligned).
pub fn intern_tuples(tuples: &[XTuple]) -> (ValuePool, Vec<InternedXTuple>) {
    let mut pool = ValuePool::new();
    let interned = tuples
        .iter()
        .map(|t| InternedXTuple::from_xtuple(&mut pool, t))
        .collect();
    (pool, interned)
}

/// [`intern_tuples`] with per-attribute symbol-usage tracking — feed the
/// returned [`AttributeUsage`] to [`InternedComparators::with_usage`] so
/// Myers tables are only built where a kernel will read them.
pub fn intern_tuples_tracked(
    tuples: &[XTuple],
) -> (ValuePool, Vec<InternedXTuple>, AttributeUsage) {
    let mut pool = ValuePool::new();
    let mut usage = AttributeUsage::default();
    let interned = intern_tuples_into(&mut pool, &mut usage, tuples);
    (pool, interned, usage)
}

/// Intern `tuples` into an **existing** pool (growing it append-only) with
/// usage tracking — the incremental-ingest path of persistent sessions:
/// values already in the pool cost one hash probe, new tuples' interned
/// mirrors are returned, and symbols issued earlier stay valid (so warm
/// [`SymbolCache`]s and [`PreparedValue`] sidecars carry over; catch the
/// sidecars up with [`InternedComparators::sync_pool`] afterwards).
pub fn intern_tuples_into(
    pool: &mut ValuePool,
    usage: &mut AttributeUsage,
    tuples: &[XTuple],
) -> Vec<InternedXTuple> {
    tuples
        .iter()
        .map(|t| InternedXTuple::from_xtuple_tracked(pool, t, usage))
        .collect()
}

/// One attribute's memo dump — `(exact entries, verdict entries)`, each a
/// `(packed symbol pair, value)` list sorted by key. Produced by
/// [`InternedComparators::export_cache_entries`], consumed by
/// [`InternedComparators::import_cache_entries`].
pub type AttrCacheDump = (Vec<(u64, f64)>, Vec<(u64, f64)>);

/// Per-attribute kernels + sharded symbol caches over a pool: the
/// read-only context worker threads share during interned matching.
///
/// Alongside the caches, a per-symbol sidecar ([`SymbolMap`]) holds each
/// distinct value's prepared comparison state ([`PreparedValue`]: ASCII
/// class, character length, and — when a kernel asks for it — the Myers
/// `Peq` pattern bitmasks). The cache-miss kernel evaluation therefore
/// never re-scans a string it has seen before: interning pays a second
/// time by hanging the precomputation off the dense symbol index.
///
/// The comparators do **not** own the pool: symbols are dense indices, so
/// the sidecar and caches only need the pool's contents at build time. A
/// persistent session that grows its pool append-only (incremental
/// ingest) calls [`InternedComparators::sync_pool`] to extend the sidecar
/// over the new symbols — every memoized similarity and verdict keyed on
/// old symbols stays valid, which is exactly the warm state sessions
/// carry across runs.
pub struct InternedComparators {
    per_attr: Vec<ValueComparator>,
    caches: Vec<SymbolCache>,
    /// Certified below-cut upper bounds per symbol pair, one table per
    /// attribute — the bounded path's verdict memo (entries mean "kernel
    /// similarity < stored value"). Disjoint from the exact caches.
    bound_caches: Vec<SymbolCache>,
    /// Kernel evaluations disposed by a below-bound certificate (cached or
    /// fresh) instead of an exact value.
    bound_certs: AtomicU64,
    prepared: SymbolMap<PreparedValue>,
    /// Attribute bit mask of kernels that want Myers pattern bits (see
    /// [`AttributeUsage`]); drives sidecar builds in `sync_pool`.
    bits_mask: u64,
}

impl InternedComparators {
    /// Bind `comparators` to `pool`, with one fresh cache per attribute
    /// (per-attribute caches keep entries disjoint when different
    /// attributes use different kernels), and precompute every symbol's
    /// [`PreparedValue`] — including pattern bitmasks iff some attribute's
    /// kernel exploits them.
    pub fn new(pool: &ValuePool, comparators: &AttributeComparators) -> Self {
        Self::build(pool, comparators, None, None)
    }

    /// [`new`](Self::new) with **lazy per-attribute `Peq` sidecars**: a
    /// symbol's Myers table is built only if the symbol occurs (per
    /// `usage`) in an attribute whose kernel reports
    /// [`wants_pattern_bits`](ValueComparator::wants_pattern_bits). On
    /// mixed-kernel schemas with large shared domains this skips the ~1 KiB
    /// table for every symbol the bit-parallel kernel never sees.
    pub fn with_usage(
        pool: &ValuePool,
        comparators: &AttributeComparators,
        usage: &AttributeUsage,
    ) -> Self {
        Self::build(pool, comparators, Some(usage), None)
    }

    /// [`with_usage`](Self::with_usage) with a **memory ceiling**: each
    /// per-attribute cache (exact and verdict alike) holds at most
    /// `capacity` memoized pairs, evicting second-chance style beyond that
    /// (see [`SymbolCache::with_capacity`]). `None` keeps the caches
    /// unbounded — the default everywhere else.
    pub fn with_usage_and_capacity(
        pool: &ValuePool,
        comparators: &AttributeComparators,
        usage: &AttributeUsage,
        capacity: Option<usize>,
    ) -> Self {
        Self::build(pool, comparators, Some(usage), capacity)
    }

    /// [`new`](Self::new) with a memory ceiling but **no** usage tracking:
    /// pattern-bit sidecars are built eagerly for every pool symbol.
    /// Used when comparators must be materialized over a restored pool
    /// with no resident tuples to derive usage from (eager bits can only
    /// over-build, never under-build).
    pub fn with_capacity(
        pool: &ValuePool,
        comparators: &AttributeComparators,
        capacity: Option<usize>,
    ) -> Self {
        Self::build(pool, comparators, None, capacity)
    }

    fn build(
        pool: &ValuePool,
        comparators: &AttributeComparators,
        usage: Option<&AttributeUsage>,
        capacity: Option<usize>,
    ) -> Self {
        let per_attr: Vec<ValueComparator> = (0..comparators.arity())
            .map(|i| comparators.get(i).clone())
            .collect();
        let caches = (0..per_attr.len())
            .map(|_| SymbolCache::with_capacity(capacity))
            .collect();
        let bound_caches = (0..per_attr.len())
            .map(|_| SymbolCache::with_capacity(capacity))
            .collect();
        let bits_mask = AttributeUsage::mask_of(
            (0..comparators.arity()).filter(|&i| comparators.get(i).wants_pattern_bits()),
        );
        let prepared = SymbolMap::build(pool, |(sym, v)| {
            PreparedValue::of(v, wants_bits(sym, bits_mask, usage))
        });
        Self {
            per_attr,
            caches,
            bound_caches,
            bound_certs: AtomicU64::new(0),
            prepared,
            bits_mask,
        }
    }

    /// Catch the per-symbol sidecar up with a pool that has **grown
    /// append-only** since this value was built (or last synced): prepared
    /// state is built for the new symbols only, existing entries — and
    /// every cache entry keyed on them — are untouched. Pass the
    /// accumulated `usage` to keep the lazy-`Peq` policy; `None` builds
    /// bits for every new symbol whenever any kernel wants them.
    ///
    /// The pool must be the same one (or an equal-prefix successor of the
    /// one) the comparators were built over: symbols are dense indices,
    /// and aliasing a different pool onto them would silently corrupt
    /// every cache.
    pub fn sync_pool(&mut self, pool: &ValuePool, usage: Option<&AttributeUsage>) {
        let bits_mask = self.bits_mask;
        self.prepared.extend(pool, |(sym, v)| {
            PreparedValue::of(v, wants_bits(sym, bits_mask, usage))
        });
    }

    /// The prepared comparison state of `sym` (inspection/testing — the hot
    /// paths read it internally).
    pub fn prepared(&self, sym: Symbol) -> &PreparedValue {
        self.prepared.get(sym)
    }

    /// Kernel evaluations disposed by a below-bound certificate instead of
    /// an exact value (see the bounded kernel probe `kernel_within`).
    pub fn bound_certs(&self) -> u64 {
        self.bound_certs.load(Relaxed)
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }

    /// Number of distinct symbols the sidecar covers (== the pool's length
    /// at the last build/[`sync_pool`](Self::sync_pool)).
    pub fn interned_values(&self) -> usize {
        self.prepared.len()
    }

    /// Aggregate `(hits, misses)` over all attribute caches.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.caches
            .iter()
            .map(SymbolCache::stats)
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }

    /// Total number of memoized symbol pairs across attributes.
    pub fn cached_pairs(&self) -> usize {
        self.caches.iter().map(SymbolCache::len).sum()
    }

    /// Total entries evicted across all caches (exact and verdict) to
    /// honour a capacity ceiling; 0 for unbounded comparators.
    pub fn cache_evictions(&self) -> u64 {
        self.caches
            .iter()
            .chain(self.bound_caches.iter())
            .map(SymbolCache::evictions)
            .sum()
    }

    /// Deterministic per-attribute dump of both memo tables —
    /// `(exact entries, verdict entries)` per attribute, each sorted by
    /// packed key (see [`SymbolCache::export_entries`]). This is the warm
    /// state a session snapshot serializes.
    pub fn export_cache_entries(&self) -> Vec<AttrCacheDump> {
        self.caches
            .iter()
            .zip(&self.bound_caches)
            .map(|(exact, bound)| (exact.export_entries(), bound.export_entries()))
            .collect()
    }

    /// Restore a dump made by
    /// [`export_cache_entries`](Self::export_cache_entries), validating
    /// every packed key against the sidecar's symbol range: both packed
    /// symbols must be non-⊥, in canonical (smaller-first) order, and
    /// within the pool the comparators were built over. A dump whose
    /// attribute count disagrees with this arity is rejected outright.
    pub fn import_cache_entries(
        &self,
        per_attr: &[AttrCacheDump],
    ) -> Result<(), probdedup_model::SnapshotError> {
        use probdedup_model::SnapshotError;
        if per_attr.len() != self.per_attr.len() {
            return Err(SnapshotError::Malformed {
                context: "cache dump attribute count",
            });
        }
        let limit = self.prepared.len() as u64;
        let check = |entries: &[(u64, f64)], context: &'static str| {
            for &(key, _) in entries {
                let lo = key >> 32;
                let hi = key & 0xffff_ffff;
                if lo == 0 || lo > hi || hi >= limit {
                    return Err(SnapshotError::InvalidSymbol {
                        context,
                        raw: key,
                        limit,
                    });
                }
            }
            Ok(())
        };
        for (entries, _) in per_attr {
            check(entries, "similarity cache symbol pair")?;
        }
        for (_, entries) in per_attr {
            check(entries, "verdict cache symbol pair")?;
        }
        for (attr, (exact, bound)) in per_attr.iter().enumerate() {
            self.caches[attr].import_entries(exact.iter().copied());
            self.bound_caches[attr].import_entries(bound.iter().copied());
        }
        Ok(())
    }

    /// Memoized kernel similarity of two non-⊥ symbols for attribute
    /// `attr`. ⊥ must be handled by the caller.
    ///
    /// The kernel is evaluated on the **canonical** (smaller-symbol-first)
    /// orientation — the same one the cache key encodes — so that even a
    /// non-symmetric user kernel yields one deterministic memoized value
    /// regardless of which worker thread computes the pair first. The
    /// miss path runs over the per-symbol [`PreparedValue`]s, so each
    /// string's ASCII class / length / pattern bitmasks were computed
    /// exactly once, at interning time.
    #[inline]
    fn kernel(&self, attr: usize, a: Symbol, b: Symbol) -> f64 {
        debug_assert!(!a.is_null() && !b.is_null());
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        self.caches[attr].get_or_compute(lo, hi, || {
            self.per_attr[attr].similarity_prepared(self.prepared.get(lo), self.prepared.get(hi))
        })
    }

    /// **Bounded** memoized kernel similarity of two non-⊥ symbols:
    /// `Some(exact)` or a certificate that the similarity is `< bound`.
    ///
    /// Probe order: identical symbols (reflexivity, free) → the exact cache
    /// → the verdict cache (a stored upper bound `≤ bound` answers without
    /// any kernel) → the bounded kernel itself, whose outcome is memoized
    /// on the matching side (exact value or improved verdict). A pair the
    /// bounds ever certified is never kernel-evaluated again for an
    /// equal-or-looser cut. In bounded runs the exact cache's `misses`
    /// count probes the exact table could not answer — `bound_certs` says
    /// how many of those were disposed by a certificate instead of a full
    /// kernel evaluation.
    #[inline]
    fn kernel_within(&self, attr: usize, a: Symbol, b: Symbol, bound: f64) -> Option<f64> {
        debug_assert!(!a.is_null() && !b.is_null());
        if a == b {
            return Some(1.0); // kernel reflexivity (a trait invariant)
        }
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(v) = self.caches[attr].get(lo, hi) {
            return Some(v);
        }
        if let Some(ub) = self.bound_caches[attr].peek(lo, hi) {
            if ub <= bound {
                self.bound_certs.fetch_add(1, Relaxed);
                return None; // similarity < ub ≤ bound
            }
        }
        match self.per_attr[attr].similarity_prepared_within(
            self.prepared.get(lo),
            self.prepared.get(hi),
            bound,
        ) {
            Some(v) => {
                self.caches[attr].insert(lo, hi, v);
                Some(v)
            }
            None => {
                self.bound_certs.fetch_add(1, Relaxed);
                self.bound_caches[attr].insert_min(lo, hi, bound);
                None
            }
        }
    }
}

/// Eq. 5 over interned values with upper-bound pruning (the shared loop
/// in `pvalue_sim::pruned_expected_similarity`; see the module docs for
/// the error bound). Agrees with
/// [`pvalue_similarity`](crate::pvalue_sim::pvalue_similarity) to well
/// below 1e-12.
pub fn interned_pvalue_similarity(
    a: &InternedPValue,
    b: &InternedPValue,
    attr: usize,
    cmps: &InternedComparators,
) -> f64 {
    crate::pvalue_sim::pruned_expected_similarity(
        &a.alts,
        a.mass,
        a.null_prob,
        &b.alts,
        b.mass,
        b.null_prob,
        |&sa, &sb| cmps.kernel(attr, sa, sb),
    )
}

/// **Bounded** Eq. 5 over interned values: certified `Above`/`Below`
/// against the cut interval `[lo, hi)`, or the exact value (see
/// [`bounded_expected_similarity`](crate::bounded) for the interval
/// tracking). Kernel evaluations go through
/// `InternedComparators`' bounded kernel probe, so both exact values and
/// below-cut verdicts are memoized per symbol pair — a bound-certified
/// pair never re-runs a kernel anywhere in the relation.
pub fn interned_pvalue_similarity_bounded(
    a: &InternedPValue,
    b: &InternedPValue,
    attr: usize,
    cmps: &InternedComparators,
    lo: f64,
    hi: f64,
) -> BoundedSim {
    crate::bounded::bounded_expected_similarity(
        &a.alts,
        a.mass,
        a.null_prob,
        &b.alts,
        b.mass,
        b.null_prob,
        lo,
        hi,
        |&sa, &sb, cut| cmps.kernel_within(attr, sa, sb, cut),
        |&sa, &sb| cmps.kernel(attr, sa, sb),
    )
}

/// [`compare_xtuples`](crate::matrix::compare_xtuples) over interned
/// x-tuples: the k×l comparison matrix with every Eq. 5 evaluation going
/// through the symbol caches and pruning.
pub fn compare_xtuples_interned(
    t1: &InternedXTuple,
    t2: &InternedXTuple,
    cmps: &InternedComparators,
) -> ComparisonMatrix {
    let k = t1.len();
    let l = t2.len();
    let mut vectors = Vec::with_capacity(k * l);
    for a1 in &t1.alternatives {
        for a2 in &t2.alternatives {
            let v: ComparisonVector = (0..cmps.arity())
                .map(|i| interned_pvalue_similarity(a1.value(i), a2.value(i), i, cmps))
                .collect();
            vectors.push(v);
        }
    }
    ComparisonMatrix::from_vectors(k, l, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvalue_sim::pvalue_similarity;
    use probdedup_model::schema::Schema;
    use probdedup_model::value::Value;
    use probdedup_textsim::NormalizedHamming;

    fn comparators(schema: &Schema) -> AttributeComparators {
        AttributeComparators::uniform(schema, NormalizedHamming::new())
    }

    #[test]
    fn interned_similarity_matches_plain() {
        let s = Schema::new(["name", "job"]);
        let t11 = XTuple::builder(&s)
            .alt_pvalues(
                1.0,
                [
                    PValue::certain("Tim"),
                    PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap(),
                ],
            )
            .build()
            .unwrap();
        let t22 = XTuple::builder(&s)
            .alt_pvalues(
                0.8,
                [
                    PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap(),
                    PValue::certain("mechanic"),
                ],
            )
            .build()
            .unwrap();
        let cmp = comparators(&s);
        let (pool, interned) = intern_tuples(&[t11.clone(), t22.clone()]);
        let icmps = InternedComparators::new(&pool, &cmp);
        let plain = crate::matrix::compare_xtuples(&t11, &t22, &cmp);
        let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        assert_eq!((plain.k(), plain.l()), (fast.k(), fast.l()));
        for (i, j, v) in plain.iter() {
            let w = fast.vector(i, j);
            for (x, y) in v.iter().zip(w) {
                assert!((x - y).abs() < 1e-12, "({i},{j}): {x} vs {y}");
            }
        }
        // Paper numbers survive the interned path.
        assert!((fast.vector(0, 0)[0] - 0.9).abs() < 1e-12);
        assert!((fast.vector(0, 0)[1] - 53.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn repeat_comparisons_hit_the_cache() {
        let s = Schema::new(["name"]);
        let a = XTuple::builder(&s).alt(1.0, ["machinist"]).build().unwrap();
        let b = XTuple::builder(&s).alt(1.0, ["mechanic"]).build().unwrap();
        let (pool, interned) = intern_tuples(&[a, b]);
        let icmps = InternedComparators::new(&pool, &comparators(&Schema::new(["name"])));
        let first = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        let second = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        assert_eq!(first, second);
        let (hits, misses) = icmps.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 1);
        assert_eq!(icmps.cached_pairs(), 1);
    }

    #[test]
    fn bits_wanting_kernel_agrees_with_plain_path() {
        use probdedup_textsim::Levenshtein;
        // Levenshtein asks for per-symbol Myers tables; the sidecar path
        // must still match the plain (unprepared) evaluation bitwise.
        let s = Schema::new(["name", "note"]);
        let cmp = AttributeComparators::uniform(&s, Levenshtein::new());
        let long: String = ('a'..='z').cycle().take(90).collect(); // multi-word Myers
        let t1 = XTuple::builder(&s)
            .alt_pvalues(
                1.0,
                [
                    PValue::categorical([("machinist", 0.6), ("mechanic", 0.3)]).unwrap(),
                    PValue::certain(long.as_str()),
                ],
            )
            .build()
            .unwrap();
        let t2 = XTuple::builder(&s)
            .alt_pvalues(
                0.9,
                [
                    PValue::certain("machine operator"),
                    PValue::categorical([(&long[5..], 0.5), ("café liégeois", 0.5)]).unwrap(),
                ],
            )
            .build()
            .unwrap();
        let (pool, interned) = intern_tuples(&[t1.clone(), t2.clone()]);
        let icmps = InternedComparators::new(&pool, &cmp);
        let plain = crate::matrix::compare_xtuples(&t1, &t2, &cmp);
        let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        for (i, j, v) in plain.iter() {
            let w = fast.vector(i, j);
            for (x, y) in v.iter().zip(w) {
                assert_eq!(x.to_bits(), y.to_bits(), "({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn null_conventions_survive_interning() {
        let s = Schema::new(["name"]);
        let null_t = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::null()])
            .build()
            .unwrap();
        let tim = XTuple::builder(&s).alt(1.0, ["Tim"]).build().unwrap();
        let (pool, interned) = intern_tuples(&[null_t, tim]);
        let icmps = InternedComparators::new(&pool, &comparators(&s));
        let m_null_null = compare_xtuples_interned(&interned[0], &interned[0], &icmps);
        assert_eq!(m_null_null.vector(0, 0)[0], 1.0);
        let m_null_tim = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        assert_eq!(m_null_tim.vector(0, 0)[0], 0.0);
        // ⊥ comparisons never consult the kernel cache.
        assert_eq!(icmps.cached_pairs(), 0);
    }

    #[test]
    fn descending_probability_layout() {
        let mut pool = ValuePool::new();
        let pv = PValue::categorical([("low", 0.1), ("high", 0.6), ("mid", 0.25)]).unwrap();
        let ipv = InternedPValue::from_pvalue(&mut pool, &pv);
        let probs: Vec<f64> = ipv.alternatives().iter().map(|(_, p)| *p).collect();
        assert_eq!(probs, vec![0.6, 0.25, 0.1]);
        assert!((ipv.null_prob() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn partial_null_mass_contributes() {
        // a = {x: .6, ⊥: .4}, b = {x: .5, ⊥: .5} → 0.5 (as in the plain
        // path's unit test).
        let s = Schema::new(["v"]);
        let a = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::categorical([("x", 0.6)]).unwrap()])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::categorical([("x", 0.5)]).unwrap()])
            .build()
            .unwrap();
        let cmp = comparators(&s);
        let (pool, interned) = intern_tuples(&[a.clone(), b.clone()]);
        let icmps = InternedComparators::new(&pool, &cmp);
        let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        let plain = crate::matrix::compare_xtuples(&a, &b, &cmp);
        assert!((fast.vector(0, 0)[0] - 0.5).abs() < 1e-12);
        assert!((fast.vector(0, 0)[0] - plain.vector(0, 0)[0]).abs() < 1e-12);
    }

    #[test]
    fn wide_supports_agree_with_plain_path() {
        // Randomish wide supports with skewed masses exercise both pruning
        // branches; results must agree with the exhaustive sum to 1e-12.
        let s = Schema::new(["v"]);
        let mk = |tag: char, n: usize, scale: f64| {
            PValue::categorical((0..n).map(|i| {
                let p = scale / f64::powi(2.0, i as i32 + 1);
                (format!("{tag}{i:02}"), p)
            }))
            .unwrap()
        };
        let cmp = comparators(&s);
        for (na, nb) in [(1usize, 8usize), (8, 8), (16, 3), (20, 20)] {
            let pa = mk('a', na, 0.9);
            let pb = mk('b', nb, 0.99);
            let a = XTuple::builder(&s)
                .alt_pvalues(1.0, [pa.clone()])
                .build()
                .unwrap();
            let b = XTuple::builder(&s)
                .alt_pvalues(1.0, [pb.clone()])
                .build()
                .unwrap();
            let (pool, interned) = intern_tuples(&[a, b]);
            let icmps = InternedComparators::new(&pool, &cmp);
            let fast = compare_xtuples_interned(&interned[0], &interned[1], &icmps).vector(0, 0)[0];
            let slow = pvalue_similarity(&pa, &pb, cmp.get(0));
            assert!(
                (fast - slow).abs() < 1e-12,
                "supports {na}x{nb}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn bounded_interned_agrees_with_exact() {
        use probdedup_textsim::Levenshtein;
        let s = Schema::new(["name"]);
        let cmp = AttributeComparators::uniform(&s, Levenshtein::new());
        let pvs = [
            PValue::certain("smith"),
            PValue::certain("garcia"),
            PValue::categorical([("smith", 0.6), ("smyth", 0.3)]).unwrap(),
            PValue::categorical([("garcia", 0.5), ("garzia", 0.5)]).unwrap(),
            PValue::null(),
        ];
        let tuples: Vec<XTuple> = pvs
            .iter()
            .map(|pv| {
                XTuple::builder(&s)
                    .alt_pvalues(1.0, [pv.clone()])
                    .build()
                    .unwrap()
            })
            .collect();
        let (pool, interned, usage) = intern_tuples_tracked(&tuples);
        let icmps = InternedComparators::with_usage(&pool, &cmp, &usage);
        for i in 0..interned.len() {
            for j in 0..interned.len() {
                let a = interned[i].alternatives()[0].value(0);
                let b = interned[j].alternatives()[0].value(0);
                let exact = interned_pvalue_similarity(a, b, 0, &icmps);
                for lo10 in 0..=10 {
                    for hi10 in lo10..=10 {
                        let (lo, hi) = (f64::from(lo10) / 10.0, f64::from(hi10) / 10.0);
                        match interned_pvalue_similarity_bounded(a, b, 0, &icmps, lo, hi) {
                            crate::bounded::BoundedSim::Above => {
                                assert!(exact >= hi - 1e-9, "({i},{j}): {exact} < {hi}")
                            }
                            crate::bounded::BoundedSim::Below => {
                                assert!(exact < lo + 1e-9, "({i},{j}): {exact} >= {lo}")
                            }
                            crate::bounded::BoundedSim::Exact(v) => {
                                assert!((v - exact).abs() < 1e-12, "({i},{j}): {v} != {exact}")
                            }
                        }
                    }
                }
            }
        }
        // On a cold cache the disjoint smith/garcia pair certifies without
        // an exact kernel run (the sweep above warmed `icmps`'s exact
        // caches first, so probe a fresh set).
        let cold = InternedComparators::new(&pool, &cmp);
        let a = interned[0].alternatives()[0].value(0);
        let b = interned[1].alternatives()[0].value(0);
        assert_eq!(
            interned_pvalue_similarity_bounded(a, b, 0, &cold, 0.8, 1.1),
            crate::bounded::BoundedSim::Below
        );
        assert!(cold.bound_certs() > 0);
        // With the low cut disabled nothing can certify: the re-query
        // resolves exactly and agrees with the unbounded path.
        match interned_pvalue_similarity_bounded(a, b, 0, &cold, 0.0, 1.1) {
            crate::bounded::BoundedSim::Exact(v) => {
                let exact = interned_pvalue_similarity(a, b, 0, &icmps);
                assert!((v - exact).abs() < 1e-12);
            }
            other => panic!("expected exact resolution, got {other:?}"),
        }
    }

    #[test]
    fn lazy_peq_sidecars_follow_attribute_usage() {
        use probdedup_textsim::{Levenshtein, NormalizedHamming};
        // Attribute 0 wants pattern bits (Levenshtein), attribute 1 does
        // not (Hamming): symbols appearing only in attribute 1 must not pay
        // for a Myers table.
        let s = Schema::new(["name", "job"]);
        let cmp = AttributeComparators::per_attribute(vec![
            ValueComparator::text(Levenshtein::new()),
            ValueComparator::text(NormalizedHamming::new()),
        ]);
        let t = XTuple::builder(&s)
            .alt(1.0, ["OnlyInName", "OnlyInJob"])
            .build()
            .unwrap();
        let shared = XTuple::builder(&s)
            .alt(1.0, ["Shared", "Shared"])
            .build()
            .unwrap();
        let (pool, _, usage) = intern_tuples_tracked(&[t, shared]);
        let lookup = |icmps: &InternedComparators, text: &str| -> bool {
            let sym = pool.lookup(&Value::from(text)).expect("interned");
            match icmps.prepared(sym) {
                PreparedValue::Text(p) => p.bits().is_some(),
                other => panic!("expected text, got {other:?}"),
            }
        };
        let lazy = InternedComparators::with_usage(&pool, &cmp, &usage);
        assert!(lookup(&lazy, "OnlyInName"), "bits-wanting attribute symbol");
        assert!(!lookup(&lazy, "OnlyInJob"), "hamming-only symbol got bits");
        assert!(lookup(&lazy, "Shared"), "shared symbol must keep bits");
        // The eager constructor still builds bits for the whole pool.
        let eager = InternedComparators::new(&pool, &cmp);
        assert!(lookup(&eager, "OnlyInJob"));
        // Both produce identical kernel values.
        let a = pool.lookup(&Value::from("OnlyInName")).unwrap();
        let b = pool.lookup(&Value::from("Shared")).unwrap();
        assert_eq!(
            lazy.kernel(0, a, b).to_bits(),
            eager.kernel(0, a, b).to_bits()
        );
    }

    #[test]
    fn sync_pool_extends_sidecars_and_keeps_caches_warm() {
        use probdedup_textsim::Levenshtein;
        let s = Schema::new(["name"]);
        let cmp = AttributeComparators::uniform(&s, Levenshtein::new());
        let batch1: Vec<XTuple> = ["machinist", "mechanic"]
            .iter()
            .map(|v| XTuple::builder(&s).alt(1.0, [*v]).build().unwrap())
            .collect();
        let mut pool = ValuePool::new();
        let mut usage = AttributeUsage::default();
        let interned1 = intern_tuples_into(&mut pool, &mut usage, &batch1);
        let mut icmps = InternedComparators::with_usage(&pool, &cmp, &usage);
        let first = compare_xtuples_interned(&interned1[0], &interned1[1], &icmps);
        let (_, misses_before) = icmps.cache_stats();
        assert!(misses_before > 0);

        // Grow the pool with a second batch, sync, and compare across the
        // old/new symbol boundary.
        let batch2: Vec<XTuple> = ["machine operator", "mechanic"]
            .iter()
            .map(|v| XTuple::builder(&s).alt(1.0, [*v]).build().unwrap())
            .collect();
        let interned2 = intern_tuples_into(&mut pool, &mut usage, &batch2);
        icmps.sync_pool(&pool, Some(&usage));
        assert_eq!(icmps.interned_values(), pool.len());
        let cross = compare_xtuples_interned(&interned1[0], &interned2[0], &icmps);
        // A cold build over the full pool agrees bitwise.
        let cold = InternedComparators::with_usage(&pool, &cmp, &usage);
        let cross_cold = compare_xtuples_interned(&interned1[0], &interned2[0], &cold);
        assert_eq!(cross, cross_cold);
        // The old pair's memo survived the sync: re-evaluating is a pure
        // cache hit, no new miss.
        let (_, misses_mid) = icmps.cache_stats();
        let again = compare_xtuples_interned(&interned1[0], &interned1[1], &icmps);
        assert_eq!(first, again);
        let (_, misses_after) = icmps.cache_stats();
        assert_eq!(misses_mid, misses_after, "warm pair re-ran a kernel");
    }

    #[test]
    fn cache_dump_restores_warm_and_rejects_forged_symbols() {
        let s = Schema::new(["name", "job"]);
        let cmp = comparators(&s);
        let tuples: Vec<XTuple> = [
            ("machinist", "smith"),
            ("mechanic", "smyth"),
            ("tim", "kim"),
        ]
        .iter()
        .map(|(a, b)| XTuple::builder(&s).alt(1.0, [*a, *b]).build().unwrap())
        .collect();
        let (pool, interned, usage) = intern_tuples_tracked(&tuples);
        let warm = InternedComparators::with_usage(&pool, &cmp, &usage);
        for i in 0..interned.len() {
            for j in i + 1..interned.len() {
                compare_xtuples_interned(&interned[i], &interned[j], &warm);
            }
        }
        assert!(warm.cached_pairs() > 0);
        let dump = warm.export_cache_entries();
        // Restore into a cold set: every warmed pair answers without a miss.
        let cold = InternedComparators::with_usage(&pool, &cmp, &usage);
        cold.import_cache_entries(&dump).unwrap();
        assert_eq!(cold.cached_pairs(), warm.cached_pairs());
        let (_, misses_before) = cold.cache_stats();
        for i in 0..interned.len() {
            for j in i + 1..interned.len() {
                let a = compare_xtuples_interned(&interned[i], &interned[j], &warm);
                let b = compare_xtuples_interned(&interned[i], &interned[j], &cold);
                assert_eq!(a, b);
            }
        }
        let (_, misses_after) = cold.cache_stats();
        assert_eq!(misses_before, misses_after, "restored pair re-ran a kernel");
        // Forged dumps are rejected: out-of-range symbol, ⊥, wrong arity.
        let fresh = || InternedComparators::with_usage(&pool, &cmp, &usage);
        let mut forged = dump.clone();
        forged[0]
            .0
            .push((u64::from(u32::MAX) << 32 | u64::from(u32::MAX), 0.5));
        assert!(fresh().import_cache_entries(&forged).is_err());
        let mut nulled = dump.clone();
        nulled[0].0.push((1, 0.5)); // lo = ⊥
        assert!(fresh().import_cache_entries(&nulled).is_err());
        assert!(fresh().import_cache_entries(&dump[..1]).is_err());
        // A capacity-bounded restore still honours the ceiling.
        let bounded = InternedComparators::with_usage_and_capacity(&pool, &cmp, &usage, Some(64));
        bounded.import_cache_entries(&dump).unwrap();
        assert!(bounded.cached_pairs() <= 2 * 64);
    }

    #[test]
    fn cross_variant_values_stay_distinct() {
        // "30" (text) vs 30 (int) must not be conflated by interning.
        let s = Schema::new(["v"]);
        let a = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::certain(Value::from("30"))])
            .build()
            .unwrap();
        let b = XTuple::builder(&s)
            .alt_pvalues(1.0, [PValue::certain(Value::Int(30))])
            .build()
            .unwrap();
        let (pool, interned) = intern_tuples(&[a, b]);
        let icmps = InternedComparators::new(&pool, &comparators(&s));
        let m = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        // Mixed text/int compares as 0 under the default comparator.
        assert_eq!(m.vector(0, 0)[0], 0.0);
    }
}
