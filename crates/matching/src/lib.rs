//! Attribute value matching for probabilistic data (Section IV-A of Panse et
//! al., ICDE 2010).
//!
//! The similarity of two uncertain attribute values `a₁`, `a₂` over the
//! extended domain `D̂ = D ∪ {⊥}` is their **expected pairwise similarity**
//! (Eq. 5):
//!
//! ```text
//! sim(a₁, a₂) = Σ_{d₁∈D̂} Σ_{d₂∈D̂}  P(a₁=d₁) · P(a₂=d₂) · sim(d₁, d₂)
//! ```
//!
//! with the non-existence conventions `sim(⊥,⊥) = 1` and `sim(a,⊥) =
//! sim(⊥,a) = 0` — two non-existent values state the same real-world fact,
//! while an existing value is definitely not similar to a non-existing one.
//! With the exact-equality kernel this reduces to Eq. 4, the probability
//! that both values are equal.
//!
//! Comparing two tuples attribute by attribute yields the **comparison
//! vector** `c⃗ ∈ [0,1]ⁿ` the decision models consume; comparing two
//! x-tuples yields the k×l **comparison matrix** of Fig. 6.
//!
//! Two implementations of the quadratic hot path live here:
//!
//! * the **plain path** ([`pvalue_sim`], [`matrix`]) — Eq. 5 straight off
//!   [`PValue`](probdedup_model::pvalue::PValue)s, the readable reference
//!   everything else is tested against;
//! * the **interned path** ([`interned`]) — values are interned once into
//!   a [`ValuePool`](probdedup_model::intern::ValuePool), Eq. 5 runs over
//!   dense symbols with alternatives in descending probability order
//!   (enabling upper-bound pruning), and kernel results are memoized in
//!   the sharded, lock-striped [`cache::SymbolCache`] keyed on packed
//!   symbol pairs. Cache **misses** — the only place strings are touched
//!   at all — evaluate the kernel over per-symbol
//!   [`PreparedValue`]s (ASCII class, character
//!   length, Myers pattern bitmasks) precomputed once at interning time,
//!   so the bit-parallel kernels in `probdedup-textsim` skip their
//!   per-comparison setup. This is what the pipeline's
//!   `cache_similarities(true)` mode executes.
//!
//! # Example
//!
//! The paper's Section IV-A worked example — `sim(t11.name, t22.name)` —
//! on both paths (the interned one prunes but must agree to rounding):
//!
//! ```
//! use probdedup_matching::{pvalue_similarity, pvalue_similarity_pruned, ValueComparator};
//! use probdedup_model::pvalue::PValue;
//! use probdedup_textsim::NormalizedHamming;
//!
//! let a = PValue::certain("Tim");
//! let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
//! let cmp = ValueComparator::text(NormalizedHamming::new());
//! let plain = pvalue_similarity(&a, &b, &cmp);
//! assert!((plain - 0.9).abs() < 1e-12); // 0.7·1 + 0.3·(2/3)
//! assert!((pvalue_similarity_pruned(&a, &b, &cmp) - plain).abs() < 1e-12);
//! ```

pub mod bounded;
pub mod cache;
pub mod interned;
pub mod matrix;
pub mod pvalue_sim;
pub mod value_cmp;
pub mod vector;

pub use bounded::{pvalue_similarity_bounded, pvalue_similarity_bounded_cached, BoundedSim};
pub use cache::{CachedComparator, SymbolCache};
pub use interned::{
    compare_xtuples_interned, intern_tuples, intern_tuples_into, intern_tuples_tracked,
    interned_pvalue_similarity, interned_pvalue_similarity_bounded, AttributeUsage,
    InternedComparators, InternedPValue, InternedXTuple,
};
pub use matrix::{compare_xtuples, ComparisonMatrix};
pub use pvalue_sim::{pvalue_similarity, pvalue_similarity_pruned};
pub use value_cmp::{PreparedValue, ValueComparator};
pub use vector::{compare_tuples, AttributeComparators, ComparisonVector};
