//! Memoization of value-pair similarities.
//!
//! Eq. 5 evaluates the kernel on every pair of support values; across a
//! relation the same string pairs recur constantly (domains are small
//! relative to the number of tuples). [`CachedComparator`] wraps a
//! [`ValueComparator`] with a thread-safe memo table keyed on the canonical
//! (sorted) value pair — exploiting kernel symmetry to halve the table.

use std::sync::Mutex;

use probdedup_model::util::FxHashMap;
use probdedup_model::value::Value;

use crate::value_cmp::ValueComparator;

/// A memoizing wrapper around [`ValueComparator`].
///
/// Thread-safe via an internal mutex; for the read-dominated access pattern
/// of duplicate detection the contention is negligible compared to kernel
/// cost, and sharding can be layered on top if ever needed.
pub struct CachedComparator {
    inner: ValueComparator,
    memo: Mutex<FxHashMap<(Value, Value), f64>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl CachedComparator {
    /// Wrap `inner` with an empty memo table.
    pub fn new(inner: ValueComparator) -> Self {
        Self {
            inner,
            memo: Mutex::new(FxHashMap::default()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Memoized similarity (same contract as
    /// [`ValueComparator::similarity`]).
    pub fn similarity(&self, a: &Value, b: &Value) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        // Nulls are trivial; don't pollute the cache.
        if a.is_null() || b.is_null() {
            return self.inner.similarity(a, b);
        }
        let key = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if let Some(&s) = self.memo.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return s;
        }
        let s = self.inner.similarity(a, b);
        self.misses.fetch_add(1, Relaxed);
        self.memo.lock().expect("cache poisoned").insert(key, s);
        s
    }

    /// `(hits, misses)` counters — used by benches to report cache
    /// effectiveness.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.memo.lock().expect("cache poisoned").len()
    }

    /// Whether the memo table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wrapped comparator.
    pub fn inner(&self) -> &ValueComparator {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_textsim::NormalizedHamming;

    fn cached() -> CachedComparator {
        CachedComparator::new(ValueComparator::text(NormalizedHamming::new()))
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = cached();
        let tim = Value::from("Tim");
        let kim = Value::from("Kim");
        let s1 = c.similarity(&tim, &kim);
        let s2 = c.similarity(&kim, &tim); // must hit the same entry
        assert_eq!(s1, s2);
        assert_eq!(c.len(), 1);
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn nulls_bypass_cache() {
        let c = cached();
        assert_eq!(c.similarity(&Value::Null, &Value::Null), 1.0);
        assert_eq!(c.similarity(&Value::Null, &Value::from("x")), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn values_agree_with_inner() {
        let c = cached();
        let pairs = [("machinist", "mechanic"), ("a", "a"), ("", "x")];
        for (x, y) in pairs {
            let vx = Value::from(x);
            let vy = Value::from(y);
            assert_eq!(c.similarity(&vx, &vy), c.inner().similarity(&vx, &vy));
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(cached());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let a = Value::from(format!("name{}", (i + j) % 7));
                        let b = Value::from(format!("name{}", j % 5));
                        let s = c.similarity(&a, &b);
                        assert!((0.0..=1.0).contains(&s));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 7 * 5 + 7);
    }
}
