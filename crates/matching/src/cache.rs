//! Memoization of value-pair similarities.
//!
//! Eq. 5 evaluates the kernel on every pair of support values; across a
//! relation the same string pairs recur constantly (domains are small
//! relative to the number of tuples), so memoizing kernel results turns
//! almost every evaluation into a lookup. Two cache layers live here:
//!
//! * [`SymbolCache`] — the hot-path cache of the pipeline's interned
//!   matching mode: keyed on canonical `(Symbol, Symbol)` pairs packed into
//!   one `u64`, sharded `SHARDS` ways with an `RwLock` per shard. Reads
//!   (the overwhelmingly common case once the cache is warm) take a shared
//!   lock on one shard only, so worker threads no longer serialize on a
//!   single global mutex. The `kernel` closure a caller hands to
//!   [`SymbolCache::get_or_compute`] is the **only** remaining place the
//!   pipeline touches strings; the interned path points it at per-symbol
//!   [`PreparedValue`](crate::value_cmp::PreparedValue)s so even that
//!   miss evaluation skips the kernels' per-comparison setup (ASCII
//!   scans, `Vec<char>` collects, Myers `Peq` builds).
//! * [`CachedComparator`] — the [`Value`]-keyed wrapper around a
//!   [`ValueComparator`] for callers that have no interner at hand. Since
//!   this PR it is lock-striped the same way (shard chosen by key hash)
//!   instead of using one global `Mutex<FxHashMap>`.
//!
//! Both exploit kernel symmetry by canonicalizing the key pair, halving the
//! table.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::RwLock;

use probdedup_model::intern::Symbol;
use probdedup_model::util::{FxHashMap, FxHasher};
use probdedup_model::value::Value;

use crate::value_cmp::ValueComparator;

/// Number of lock stripes. A power of two well above typical worker counts
/// keeps the collision probability of two threads wanting the same stripe
/// low while staying cache-friendly.
const SHARDS: usize = 64;

#[inline]
fn shard_of(hash: u64) -> usize {
    // High bits: FxHash mixes least in the low bits.
    (hash >> 58) as usize & (SHARDS - 1)
}

#[inline]
fn hash_u64(key: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write_u64(key);
    h.finish()
}

/// Hit/miss counters shared by both cache flavours.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounters {
    fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }
}

// ---------------------------------------------------------------------
// Symbol-keyed sharded cache (the interned hot path).
// ---------------------------------------------------------------------

/// A sharded, lock-striped similarity memo keyed on canonical
/// `(Symbol, Symbol)` pairs.
///
/// The key packs the smaller symbol into the high 32 bits — `(a, b)` and
/// `(b, a)` share an entry, matching kernel symmetry. ⊥ symbols must be
/// handled by the caller (they never reach the cache; the paper's ⊥
/// conventions are constant-time).
pub struct SymbolCache {
    shards: Box<[RwLock<FxHashMap<u64, f64>>]>,
    counters: CacheCounters,
}

impl Default for SymbolCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            counters: CacheCounters::default(),
        }
    }

    /// Canonical packed key of an unordered symbol pair.
    #[inline]
    fn key(a: Symbol, b: Symbol) -> u64 {
        let (lo, hi) = if a.raw() <= b.raw() {
            (a.raw(), b.raw())
        } else {
            (b.raw(), a.raw())
        };
        (u64::from(lo) << 32) | u64::from(hi)
    }

    /// The memoized similarity of `(a, b)`, computing it with `kernel` on a
    /// miss. `kernel` runs outside any lock, so a slow kernel never blocks
    /// other shards (duplicate concurrent computation of the same pair is
    /// possible and harmless — the kernel is pure).
    #[inline]
    pub fn get_or_compute(&self, a: Symbol, b: Symbol, kernel: impl FnOnce() -> f64) -> f64 {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        if let Some(&s) = shard.read().expect("cache shard poisoned").get(&key) {
            self.counters.hits.fetch_add(1, Relaxed);
            return s;
        }
        let s = kernel();
        self.counters.misses.fetch_add(1, Relaxed);
        shard.write().expect("cache shard poisoned").insert(key, s);
        s
    }

    /// The memoized value of `(a, b)`, if present (counts as a hit/miss).
    /// Used by the bounded path to probe the exact cache before consulting
    /// verdicts or running a kernel.
    #[inline]
    pub fn get(&self, a: Symbol, b: Symbol) -> Option<f64> {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        let found = shard
            .read()
            .expect("cache shard poisoned")
            .get(&key)
            .copied();
        match found {
            Some(_) => self.counters.hits.fetch_add(1, Relaxed),
            None => self.counters.misses.fetch_add(1, Relaxed),
        };
        found
    }

    /// Counter-free variant of [`get`](Self::get): no hit/miss accounting.
    /// This is the verdict-table probe of the bounded path — verdict
    /// tables keep their own certificate counter, and a shared atomic RMW
    /// per probe is exactly the kind of cross-thread traffic the hot path
    /// avoids.
    #[inline]
    pub fn peek(&self, a: Symbol, b: Symbol) -> Option<f64> {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        shard
            .read()
            .expect("cache shard poisoned")
            .get(&key)
            .copied()
    }

    /// Memoize `(a, b) → v` unconditionally (no counter updates — the probe
    /// that preceded the computation already counted).
    #[inline]
    pub fn insert(&self, a: Symbol, b: Symbol, v: f64) {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        shard.write().expect("cache shard poisoned").insert(key, v);
    }

    /// Memoize `(a, b) → v` keeping the **smaller** value on collision.
    ///
    /// This is the verdict-cache update: entries are certified *upper
    /// bounds* ("the kernel similarity is `< v`"), so a tighter certificate
    /// must win over a looser one regardless of which worker thread stores
    /// first.
    #[inline]
    pub fn insert_min(&self, a: Symbol, b: Symbol, v: f64) {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        shard
            .write()
            .expect("cache shard poisoned")
            .entry(key)
            .and_modify(|old| *old = old.min(v))
            .or_insert(v);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.counters.snapshot()
    }

    /// Number of memoized pairs (sums all shards; takes each read lock
    /// briefly — an inspection API, not a hot path).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Value-keyed sharded comparator wrapper.
// ---------------------------------------------------------------------

/// One lock stripe of the value-keyed cache.
type ValueShard = RwLock<FxHashMap<(Value, Value), f64>>;

/// A memoizing wrapper around [`ValueComparator`], keyed on the canonical
/// (sorted) value pair and lock-striped across 64 shards.
///
/// Alongside the exact memo table it keeps a **verdict table**: when the
/// bounded path ([`CachedComparator::similarity_within`]) certifies a pair
/// below some cut without computing the exact similarity, the certified
/// upper bound is stored, and any later query with an equal-or-looser cut
/// is answered without touching a kernel again.
pub struct CachedComparator {
    inner: ValueComparator,
    shards: Box<[ValueShard]>,
    /// Certified upper bounds ("similarity < v") from bounded evaluations.
    bounds: Box<[ValueShard]>,
    counters: CacheCounters,
    bound_certs: AtomicU64,
}

impl CachedComparator {
    /// Wrap `inner` with an empty memo table.
    pub fn new(inner: ValueComparator) -> Self {
        Self {
            inner,
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            bounds: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            counters: CacheCounters::default(),
            bound_certs: AtomicU64::new(0),
        }
    }

    /// Canonical (sorted) key pair of `(a, b)` with its shard index — the
    /// one place the cache's addressing scheme lives; both the exact and
    /// the bounded lookup go through it.
    fn canonical_key_and_shard(a: &Value, b: &Value) -> ((Value, Value), usize) {
        let key = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        let shard_idx = {
            use std::hash::{Hash, Hasher};
            let mut h = FxHasher::default();
            key.hash(&mut h);
            shard_of(h.finish())
        };
        (key, shard_idx)
    }

    /// Memoized similarity (same contract as
    /// [`ValueComparator::similarity`]).
    pub fn similarity(&self, a: &Value, b: &Value) -> f64 {
        // Nulls are trivial; don't pollute the cache.
        if a.is_null() || b.is_null() {
            return self.inner.similarity(a, b);
        }
        let (key, shard_idx) = Self::canonical_key_and_shard(a, b);
        let shard = &self.shards[shard_idx];
        if let Some(&s) = shard.read().expect("cache shard poisoned").get(&key) {
            self.counters.hits.fetch_add(1, Relaxed);
            return s;
        }
        let s = self.inner.similarity(&key.0, &key.1);
        self.counters.misses.fetch_add(1, Relaxed);
        shard.write().expect("cache shard poisoned").insert(key, s);
        s
    }

    /// Bounded memoized similarity: `Some(exact)` or a certificate that
    /// the similarity is `< bound` (same contract as
    /// [`StringComparator::similarity_within`][w]). Certificates are
    /// memoized as upper bounds, so a bound-certified pair never re-runs a
    /// kernel for any equal-or-looser cut.
    ///
    /// [w]: probdedup_textsim::StringComparator::similarity_within
    pub fn similarity_within(&self, a: &Value, b: &Value, bound: f64) -> Option<f64> {
        if a.is_null() || b.is_null() {
            return Some(self.inner.similarity(a, b));
        }
        let (key, shard_idx) = Self::canonical_key_and_shard(a, b);
        let exact = &self.shards[shard_idx];
        if let Some(&s) = exact.read().expect("cache shard poisoned").get(&key) {
            self.counters.hits.fetch_add(1, Relaxed);
            return Some(s);
        }
        self.counters.misses.fetch_add(1, Relaxed);
        let verdicts = &self.bounds[shard_idx];
        if let Some(&ub) = verdicts.read().expect("cache shard poisoned").get(&key) {
            if ub <= bound {
                self.bound_certs.fetch_add(1, Relaxed);
                return None; // similarity < ub ≤ bound
            }
        }
        match self.inner.similarity_within(&key.0, &key.1, bound) {
            Some(s) => {
                exact.write().expect("cache shard poisoned").insert(key, s);
                Some(s)
            }
            None => {
                self.bound_certs.fetch_add(1, Relaxed);
                verdicts
                    .write()
                    .expect("cache shard poisoned")
                    .entry(key)
                    .and_modify(|old| *old = old.min(bound))
                    .or_insert(bound);
                None
            }
        }
    }

    /// Number of kernel evaluations disposed by a below-bound certificate
    /// (cached or freshly computed) instead of an exact value.
    pub fn bound_certs(&self) -> u64 {
        self.bound_certs.load(Relaxed)
    }

    /// `(hits, misses)` counters — used by benches to report cache
    /// effectiveness.
    pub fn stats(&self) -> (u64, u64) {
        self.counters.snapshot()
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the memo table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wrapped comparator.
    pub fn inner(&self) -> &ValueComparator {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_textsim::NormalizedHamming;

    fn cached() -> CachedComparator {
        CachedComparator::new(ValueComparator::text(NormalizedHamming::new()))
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = cached();
        let tim = Value::from("Tim");
        let kim = Value::from("Kim");
        let s1 = c.similarity(&tim, &kim);
        let s2 = c.similarity(&kim, &tim); // must hit the same entry
        assert_eq!(s1, s2);
        assert_eq!(c.len(), 1);
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn nulls_bypass_cache() {
        let c = cached();
        assert_eq!(c.similarity(&Value::Null, &Value::Null), 1.0);
        assert_eq!(c.similarity(&Value::Null, &Value::from("x")), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn values_agree_with_inner() {
        let c = cached();
        let pairs = [("machinist", "mechanic"), ("a", "a"), ("", "x")];
        for (x, y) in pairs {
            let vx = Value::from(x);
            let vy = Value::from(y);
            assert_eq!(c.similarity(&vx, &vy), c.inner().similarity(&vx, &vy));
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(cached());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let a = Value::from(format!("name{}", (i + j) % 7));
                        let b = Value::from(format!("name{}", j % 5));
                        let s = c.similarity(&a, &b);
                        assert!((0.0..=1.0).contains(&s));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 7 * 5 + 7);
    }

    #[test]
    fn symbol_cache_memoizes_canonical_pairs() {
        use probdedup_model::intern::ValuePool;
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::from("machinist"));
        let b = pool.intern(&Value::from("mechanic"));
        let cache = SymbolCache::new();
        let mut kernel_calls = 0;
        let mut eval = |x: Symbol, y: Symbol| {
            cache.get_or_compute(x, y, || {
                kernel_calls += 1;
                0.5
            })
        };
        assert_eq!(eval(a, b), 0.5);
        assert_eq!(eval(b, a), 0.5); // symmetric orientation hits
        assert_eq!(kernel_calls, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn symbol_cache_concurrent_access() {
        use probdedup_model::intern::ValuePool;
        use std::sync::Arc;
        let mut pool = ValuePool::new();
        let syms: Vec<Symbol> = (0..32)
            .map(|i| pool.intern(&Value::from(format!("v{i}"))))
            .collect();
        let cache = Arc::new(SymbolCache::new());
        let syms = Arc::new(syms);
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let syms = Arc::clone(&syms);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        let a = syms[((t * 7 + i) % 32) as usize];
                        let b = syms[((i * 13) % 32) as usize];
                        let expected = f64::from(a.raw().min(b.raw()));
                        let got = cache.get_or_compute(a, b, || expected);
                        assert_eq!(got, expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 8 * 2000);
        assert!(cache.len() <= 32 * 33 / 2);
    }
}
