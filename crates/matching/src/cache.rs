//! Memoization of value-pair similarities.
//!
//! Eq. 5 evaluates the kernel on every pair of support values; across a
//! relation the same string pairs recur constantly (domains are small
//! relative to the number of tuples), so memoizing kernel results turns
//! almost every evaluation into a lookup. Two cache layers live here:
//!
//! * [`SymbolCache`] — the hot-path cache of the pipeline's interned
//!   matching mode: keyed on canonical `(Symbol, Symbol)` pairs packed into
//!   one `u64`, sharded `SHARDS` ways with an `RwLock` per shard. Reads
//!   (the overwhelmingly common case once the cache is warm) take a shared
//!   lock on one shard only, so worker threads no longer serialize on a
//!   single global mutex. The `kernel` closure a caller hands to
//!   [`SymbolCache::get_or_compute`] is the **only** remaining place the
//!   pipeline touches strings; the interned path points it at per-symbol
//!   [`PreparedValue`](crate::value_cmp::PreparedValue)s so even that
//!   miss evaluation skips the kernels' per-comparison setup (ASCII
//!   scans, `Vec<char>` collects, Myers `Peq` builds).
//! * [`CachedComparator`] — the [`Value`]-keyed wrapper around a
//!   [`ValueComparator`] for callers that have no interner at hand. Since
//!   this PR it is lock-striped the same way (shard chosen by key hash)
//!   instead of using one global `Mutex<FxHashMap>`.
//!
//! Both exploit kernel symmetry by canonicalizing the key pair, halving the
//! table.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::RwLock;

use probdedup_model::intern::Symbol;
use probdedup_model::util::{FxHashMap, FxHasher};
use probdedup_model::value::Value;

use crate::value_cmp::ValueComparator;

/// Number of lock stripes. A power of two well above typical worker counts
/// keeps the collision probability of two threads wanting the same stripe
/// low while staying cache-friendly.
const SHARDS: usize = 64;

#[inline]
fn shard_of(hash: u64) -> usize {
    // High bits: FxHash mixes least in the low bits.
    (hash >> 58) as usize & (SHARDS - 1)
}

#[inline]
fn hash_u64(key: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write_u64(key);
    h.finish()
}

/// Hit/miss/eviction counters shared by both cache flavours.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }
}

// ---------------------------------------------------------------------
// Symbol-keyed sharded cache (the interned hot path).
// ---------------------------------------------------------------------

/// One memoized similarity with its second-chance reference bit.
///
/// The bit is an [`AtomicBool`](std::sync::atomic::AtomicBool) so the read
/// paths — which only hold a *shared* shard lock — can mark an entry as
/// recently used without upgrading to a write lock.
#[derive(Debug)]
struct Slot {
    value: f64,
    referenced: std::sync::atomic::AtomicBool,
}

impl Slot {
    /// A fresh slot starts with a **clear** reference bit: it must prove
    /// itself with a hit before it can claim a second chance, so streaming
    /// cold pairs cannot flush entries that are actively re-used.
    #[inline]
    fn new(value: f64) -> Self {
        Self {
            value,
            referenced: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Mark recently-used through a shared reference (read-lock paths).
    #[inline]
    fn touch(&self) {
        self.referenced.store(true, Relaxed);
    }
}

/// A sharded, lock-striped similarity memo keyed on canonical
/// `(Symbol, Symbol)` pairs.
///
/// The key packs the smaller symbol into the high 32 bits — `(a, b)` and
/// `(b, a)` share an entry, matching kernel symmetry. ⊥ symbols must be
/// handled by the caller (they never reach the cache; the paper's ⊥
/// conventions are constant-time).
///
/// # Bounded mode
///
/// [`SymbolCache::with_capacity`] caps the number of memoized pairs. The
/// cap is split evenly across the shards, and a full shard evicts with an
/// approximate **second-chance** (clock) policy: every lookup hit sets the
/// entry's reference bit; when an insert finds the shard full, it sweeps
/// the shard's entries demoting set bits and evicts the first entry whose
/// bit was already clear (falling back to an arbitrary entry if the sweep
/// demoted everything). Recently re-used pairs therefore survive one full
/// sweep longer than cold ones — close enough to LRU for a memo table,
/// with no per-entry list links and no write traffic on hits. Evictions
/// are counted (see [`SymbolCache::evictions`]).
pub struct SymbolCache {
    shards: Box<[RwLock<FxHashMap<u64, Slot>>]>,
    counters: CacheCounters,
    /// Per-shard entry cap; `None` = unbounded (the default).
    shard_cap: Option<usize>,
}

impl Default for SymbolCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// An empty cache holding at most `capacity` memoized pairs
    /// (approximately: the cap is enforced per shard as
    /// `ceil(capacity / SHARDS)`, at least one entry per shard).
    /// `None` means unbounded.
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            counters: CacheCounters::default(),
            shard_cap: capacity.map(|c| c.div_ceil(SHARDS).max(1)),
        }
    }

    /// Store `key → v` under the shard's write lock, enforcing the
    /// capacity ceiling. `keep_min` selects the verdict-table collision
    /// rule (smaller value wins) over plain replacement.
    fn store(&self, key: u64, v: f64, keep_min: bool) {
        let shard = &self.shards[shard_of(hash_u64(key))];
        let mut map = shard.write().expect("cache shard poisoned");
        if let Some(slot) = map.get_mut(&key) {
            if !keep_min || v < slot.value {
                slot.value = v;
            }
            *slot.referenced.get_mut() = true;
            return;
        }
        if let Some(cap) = self.shard_cap {
            if map.len() >= cap {
                Self::evict_one(&mut map);
                self.counters.evictions.fetch_add(1, Relaxed);
            }
        }
        map.insert(key, Slot::new(v));
    }

    /// Second-chance sweep: demote set reference bits in iteration order
    /// and evict the first entry whose bit was already clear; if every
    /// entry had its bit set (all demoted now), evict an arbitrary one.
    fn evict_one(map: &mut FxHashMap<u64, Slot>) {
        let mut victim = None;
        for (k, slot) in map.iter_mut() {
            if *slot.referenced.get_mut() {
                *slot.referenced.get_mut() = false;
            } else {
                victim = Some(*k);
                break;
            }
        }
        let victim = victim.or_else(|| map.keys().next().copied());
        if let Some(k) = victim {
            map.remove(&k);
        }
    }

    /// Canonical packed key of an unordered symbol pair.
    #[inline]
    fn key(a: Symbol, b: Symbol) -> u64 {
        let (lo, hi) = if a.raw() <= b.raw() {
            (a.raw(), b.raw())
        } else {
            (b.raw(), a.raw())
        };
        (u64::from(lo) << 32) | u64::from(hi)
    }

    /// The memoized similarity of `(a, b)`, computing it with `kernel` on a
    /// miss. `kernel` runs outside any lock, so a slow kernel never blocks
    /// other shards (duplicate concurrent computation of the same pair is
    /// possible and harmless — the kernel is pure).
    #[inline]
    pub fn get_or_compute(&self, a: Symbol, b: Symbol, kernel: impl FnOnce() -> f64) -> f64 {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        if let Some(slot) = shard.read().expect("cache shard poisoned").get(&key) {
            slot.touch();
            self.counters.hits.fetch_add(1, Relaxed);
            return slot.value;
        }
        let s = kernel();
        self.counters.misses.fetch_add(1, Relaxed);
        self.store(key, s, false);
        s
    }

    /// The memoized value of `(a, b)`, if present (counts as a hit/miss).
    /// Used by the bounded path to probe the exact cache before consulting
    /// verdicts or running a kernel.
    #[inline]
    pub fn get(&self, a: Symbol, b: Symbol) -> Option<f64> {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        let found = shard
            .read()
            .expect("cache shard poisoned")
            .get(&key)
            .map(|slot| {
                slot.touch();
                slot.value
            });
        match found {
            Some(_) => self.counters.hits.fetch_add(1, Relaxed),
            None => self.counters.misses.fetch_add(1, Relaxed),
        };
        found
    }

    /// Counter-free variant of [`get`](Self::get): no hit/miss accounting.
    /// This is the verdict-table probe of the bounded path — verdict
    /// tables keep their own certificate counter, and a shared atomic RMW
    /// per probe is exactly the kind of cross-thread traffic the hot path
    /// avoids.
    #[inline]
    pub fn peek(&self, a: Symbol, b: Symbol) -> Option<f64> {
        let key = Self::key(a, b);
        let shard = &self.shards[shard_of(hash_u64(key))];
        shard
            .read()
            .expect("cache shard poisoned")
            .get(&key)
            .map(|slot| {
                slot.touch();
                slot.value
            })
    }

    /// Memoize `(a, b) → v` unconditionally (no counter updates — the probe
    /// that preceded the computation already counted).
    #[inline]
    pub fn insert(&self, a: Symbol, b: Symbol, v: f64) {
        self.store(Self::key(a, b), v, false);
    }

    /// Memoize `(a, b) → v` keeping the **smaller** value on collision.
    ///
    /// This is the verdict-cache update: entries are certified *upper
    /// bounds* ("the kernel similarity is `< v`"), so a tighter certificate
    /// must win over a looser one regardless of which worker thread stores
    /// first.
    #[inline]
    pub fn insert_min(&self, a: Symbol, b: Symbol, v: f64) {
        self.store(Self::key(a, b), v, true);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.counters.snapshot()
    }

    /// Number of entries evicted to honour the capacity ceiling (always 0
    /// for unbounded caches).
    pub fn evictions(&self) -> u64 {
        self.counters.evictions.load(Relaxed)
    }

    /// The configured capacity ceiling, if any (total across shards, as
    /// passed to [`with_capacity`](Self::with_capacity) rounded up to a
    /// whole number of per-shard entries).
    pub fn capacity(&self) -> Option<usize> {
        self.shard_cap.map(|c| c * SHARDS)
    }

    /// Every memoized `(packed key, value)` pair, sorted by key — the
    /// deterministic dump the snapshot writer serializes. Takes each
    /// shard's read lock briefly; an inspection API, not a hot path.
    pub fn export_entries(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(&k, slot)| (k, slot.value))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Re-insert previously exported `(packed key, value)` pairs (snapshot
    /// restore). Entries go through the normal bounded-insert path, so a
    /// capacity ceiling is honoured; callers are responsible for validating
    /// that the packed symbols are in range for the owning pool.
    pub fn import_entries(&self, entries: impl IntoIterator<Item = (u64, f64)>) {
        for (key, v) in entries {
            self.store(key, v, false);
        }
    }

    /// Number of memoized pairs (sums all shards; takes each read lock
    /// briefly — an inspection API, not a hot path).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Value-keyed sharded comparator wrapper.
// ---------------------------------------------------------------------

/// One lock stripe of the value-keyed cache.
type ValueShard = RwLock<FxHashMap<(Value, Value), f64>>;

/// A memoizing wrapper around [`ValueComparator`], keyed on the canonical
/// (sorted) value pair and lock-striped across 64 shards.
///
/// Alongside the exact memo table it keeps a **verdict table**: when the
/// bounded path ([`CachedComparator::similarity_within`]) certifies a pair
/// below some cut without computing the exact similarity, the certified
/// upper bound is stored, and any later query with an equal-or-looser cut
/// is answered without touching a kernel again.
pub struct CachedComparator {
    inner: ValueComparator,
    shards: Box<[ValueShard]>,
    /// Certified upper bounds ("similarity < v") from bounded evaluations.
    bounds: Box<[ValueShard]>,
    counters: CacheCounters,
    bound_certs: AtomicU64,
}

impl CachedComparator {
    /// Wrap `inner` with an empty memo table.
    pub fn new(inner: ValueComparator) -> Self {
        Self {
            inner,
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            bounds: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            counters: CacheCounters::default(),
            bound_certs: AtomicU64::new(0),
        }
    }

    /// Canonical (sorted) key pair of `(a, b)` with its shard index — the
    /// one place the cache's addressing scheme lives; both the exact and
    /// the bounded lookup go through it.
    fn canonical_key_and_shard(a: &Value, b: &Value) -> ((Value, Value), usize) {
        let key = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        let shard_idx = {
            use std::hash::{Hash, Hasher};
            let mut h = FxHasher::default();
            key.hash(&mut h);
            shard_of(h.finish())
        };
        (key, shard_idx)
    }

    /// Memoized similarity (same contract as
    /// [`ValueComparator::similarity`]).
    pub fn similarity(&self, a: &Value, b: &Value) -> f64 {
        // Nulls are trivial; don't pollute the cache.
        if a.is_null() || b.is_null() {
            return self.inner.similarity(a, b);
        }
        let (key, shard_idx) = Self::canonical_key_and_shard(a, b);
        let shard = &self.shards[shard_idx];
        if let Some(&s) = shard.read().expect("cache shard poisoned").get(&key) {
            self.counters.hits.fetch_add(1, Relaxed);
            return s;
        }
        let s = self.inner.similarity(&key.0, &key.1);
        self.counters.misses.fetch_add(1, Relaxed);
        shard.write().expect("cache shard poisoned").insert(key, s);
        s
    }

    /// Bounded memoized similarity: `Some(exact)` or a certificate that
    /// the similarity is `< bound` (same contract as
    /// [`StringComparator::similarity_within`][w]). Certificates are
    /// memoized as upper bounds, so a bound-certified pair never re-runs a
    /// kernel for any equal-or-looser cut.
    ///
    /// [w]: probdedup_textsim::StringComparator::similarity_within
    pub fn similarity_within(&self, a: &Value, b: &Value, bound: f64) -> Option<f64> {
        if a.is_null() || b.is_null() {
            return Some(self.inner.similarity(a, b));
        }
        let (key, shard_idx) = Self::canonical_key_and_shard(a, b);
        let exact = &self.shards[shard_idx];
        if let Some(&s) = exact.read().expect("cache shard poisoned").get(&key) {
            self.counters.hits.fetch_add(1, Relaxed);
            return Some(s);
        }
        self.counters.misses.fetch_add(1, Relaxed);
        let verdicts = &self.bounds[shard_idx];
        if let Some(&ub) = verdicts.read().expect("cache shard poisoned").get(&key) {
            if ub <= bound {
                self.bound_certs.fetch_add(1, Relaxed);
                return None; // similarity < ub ≤ bound
            }
        }
        match self.inner.similarity_within(&key.0, &key.1, bound) {
            Some(s) => {
                exact.write().expect("cache shard poisoned").insert(key, s);
                Some(s)
            }
            None => {
                self.bound_certs.fetch_add(1, Relaxed);
                verdicts
                    .write()
                    .expect("cache shard poisoned")
                    .entry(key)
                    .and_modify(|old| *old = old.min(bound))
                    .or_insert(bound);
                None
            }
        }
    }

    /// Number of kernel evaluations disposed by a below-bound certificate
    /// (cached or freshly computed) instead of an exact value.
    pub fn bound_certs(&self) -> u64 {
        self.bound_certs.load(Relaxed)
    }

    /// `(hits, misses)` counters — used by benches to report cache
    /// effectiveness.
    pub fn stats(&self) -> (u64, u64) {
        self.counters.snapshot()
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the memo table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wrapped comparator.
    pub fn inner(&self) -> &ValueComparator {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_textsim::NormalizedHamming;

    fn cached() -> CachedComparator {
        CachedComparator::new(ValueComparator::text(NormalizedHamming::new()))
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = cached();
        let tim = Value::from("Tim");
        let kim = Value::from("Kim");
        let s1 = c.similarity(&tim, &kim);
        let s2 = c.similarity(&kim, &tim); // must hit the same entry
        assert_eq!(s1, s2);
        assert_eq!(c.len(), 1);
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn nulls_bypass_cache() {
        let c = cached();
        assert_eq!(c.similarity(&Value::Null, &Value::Null), 1.0);
        assert_eq!(c.similarity(&Value::Null, &Value::from("x")), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn values_agree_with_inner() {
        let c = cached();
        let pairs = [("machinist", "mechanic"), ("a", "a"), ("", "x")];
        for (x, y) in pairs {
            let vx = Value::from(x);
            let vy = Value::from(y);
            assert_eq!(c.similarity(&vx, &vy), c.inner().similarity(&vx, &vy));
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(cached());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let a = Value::from(format!("name{}", (i + j) % 7));
                        let b = Value::from(format!("name{}", j % 5));
                        let s = c.similarity(&a, &b);
                        assert!((0.0..=1.0).contains(&s));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 7 * 5 + 7);
    }

    #[test]
    fn symbol_cache_memoizes_canonical_pairs() {
        use probdedup_model::intern::ValuePool;
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::from("machinist"));
        let b = pool.intern(&Value::from("mechanic"));
        let cache = SymbolCache::new();
        let mut kernel_calls = 0;
        let mut eval = |x: Symbol, y: Symbol| {
            cache.get_or_compute(x, y, || {
                kernel_calls += 1;
                0.5
            })
        };
        assert_eq!(eval(a, b), 0.5);
        assert_eq!(eval(b, a), 0.5); // symmetric orientation hits
        assert_eq!(kernel_calls, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn symbol_cache_concurrent_access() {
        use probdedup_model::intern::ValuePool;
        use std::sync::Arc;
        let mut pool = ValuePool::new();
        let syms: Vec<Symbol> = (0..32)
            .map(|i| pool.intern(&Value::from(format!("v{i}"))))
            .collect();
        let cache = Arc::new(SymbolCache::new());
        let syms = Arc::new(syms);
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let syms = Arc::clone(&syms);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        let a = syms[((t * 7 + i) % 32) as usize];
                        let b = syms[((i * 13) % 32) as usize];
                        let expected = f64::from(a.raw().min(b.raw()));
                        let got = cache.get_or_compute(a, b, || expected);
                        assert_eq!(got, expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 8 * 2000);
        assert!(cache.len() <= 32 * 33 / 2);
    }

    #[test]
    fn bounded_cache_respects_capacity_and_counts_evictions() {
        use probdedup_model::intern::ValuePool;
        let mut pool = ValuePool::new();
        let syms: Vec<Symbol> = (0..600)
            .map(|i| pool.intern(&Value::from(format!("v{i}"))))
            .collect();
        // Capacity 64 → one entry per shard.
        let cache = SymbolCache::with_capacity(Some(64));
        assert_eq!(cache.capacity(), Some(64));
        for (i, w) in syms.windows(2).enumerate() {
            cache.insert(w[0], w[1], i as f64);
        }
        assert!(
            cache.len() <= 64,
            "bounded cache grew to {} entries",
            cache.len()
        );
        let inserted = (syms.len() - 1) as u64;
        assert_eq!(cache.evictions(), inserted - cache.len() as u64);
        // Unbounded caches never evict.
        let unbounded = SymbolCache::new();
        assert_eq!(unbounded.capacity(), None);
        for (i, w) in syms.windows(2).enumerate() {
            unbounded.insert(w[0], w[1], i as f64);
        }
        assert_eq!(unbounded.len(), syms.len() - 1);
        assert_eq!(unbounded.evictions(), 0);
    }

    #[test]
    fn second_chance_prefers_evicting_cold_entries() {
        use probdedup_model::intern::ValuePool;
        let mut pool = ValuePool::new();
        let syms: Vec<Symbol> = (0..200)
            .map(|i| pool.intern(&Value::from(format!("v{i}"))))
            .collect();
        // All shards capped at 2 entries; repeatedly touch one hot pair
        // while streaming cold pairs through. The hot pair's reference bit
        // is re-set on every probe, so the sweeps evict cold entries.
        let cache = SymbolCache::with_capacity(Some(2 * 64));
        let (hot_a, hot_b) = (syms[0], syms[1]);
        cache.insert(hot_a, hot_b, 0.75);
        for w in syms[2..].windows(2) {
            assert_eq!(cache.peek(hot_a, hot_b), Some(0.75), "hot entry evicted");
            cache.insert(w[0], w[1], 0.25);
        }
        assert_eq!(cache.peek(hot_a, hot_b), Some(0.75));
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn export_import_roundtrips_entries() {
        use probdedup_model::intern::ValuePool;
        let mut pool = ValuePool::new();
        let syms: Vec<Symbol> = (0..40)
            .map(|i| pool.intern(&Value::from(format!("v{i}"))))
            .collect();
        let cache = SymbolCache::new();
        for (i, w) in syms.windows(2).enumerate() {
            cache.insert(w[0], w[1], i as f64 / 40.0);
        }
        let dump = cache.export_entries();
        assert_eq!(dump.len(), cache.len());
        assert!(dump.windows(2).all(|w| w[0].0 < w[1].0), "dump not sorted");
        let restored = SymbolCache::new();
        restored.import_entries(dump.iter().copied());
        assert_eq!(restored.export_entries(), dump);
        // Every restored pair answers without recomputation.
        for (i, w) in syms.windows(2).enumerate() {
            assert_eq!(restored.peek(w[0], w[1]), Some(i as f64 / 40.0));
        }
    }

    #[test]
    fn insert_min_keeps_tighter_bound_under_capacity() {
        use probdedup_model::intern::ValuePool;
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::from("a"));
        let b = pool.intern(&Value::from("b"));
        let cache = SymbolCache::with_capacity(Some(64));
        cache.insert_min(a, b, 0.8);
        cache.insert_min(a, b, 0.6);
        cache.insert_min(a, b, 0.9); // looser: must not overwrite
        assert_eq!(cache.peek(a, b), Some(0.6));
    }
}
