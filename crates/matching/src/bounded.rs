//! Threshold-driven **bounded** Eq. 5 evaluation: stop as soon as the
//! expected similarity is certified to fall on one side of a cut.
//!
//! The exact paths ([`pvalue_similarity`](crate::pvalue_similarity) and the
//! interned pruning loop) compute every attribute similarity to full
//! precision; the decision layer then only compares the value against its
//! thresholds. For the vast majority of candidate pairs the comparison is
//! not close, so most of that precision is wasted. This module evaluates
//! Eq. 5 against a **cut interval** `[lo, hi)` instead:
//!
//! * every visited support term either contributes its *exact* kernel value
//!   or — through the bounded kernels
//!   ([`StringComparator::similarity_within`][w], surfaced here via
//!   [`ValueComparator::similarity_within`](crate::ValueComparator::similarity_within))
//!   — a certificate that its kernel similarity is below the `lo` cut;
//! * the running certified interval is
//!   `[exact + ⊥·⊥, exact + skipped·lo + remaining mass + ⊥·⊥]`
//!   (every kernel value is ≤ 1, so unvisited terms are bounded by their
//!   probability mass — the same bound the `PRUNE_EPS` loop uses);
//! * evaluation returns [`BoundedSim::Above`] the moment the interval's
//!   lower end reaches `hi`, [`BoundedSim::Below`] the moment its upper
//!   end drops below `lo`, and [`BoundedSim::Exact`] when it ran out of
//!   terms with every visited kernel exact.
//!
//! Certificates are *certificates*: `Above` implies the exact (clamped)
//! Eq. 5 value is `≥ hi`, `Below` implies it is `< lo`, with the usual
//! caveat that the bound arithmetic itself is floating-point — callers
//! (the decision layer's attribute budgets) derive `lo`/`hi` with a margin
//! that dwarfs the accumulated rounding, so a certificate never
//! contradicts the classification the exact path would produce.
//!
//! In the rare case where bounded kernels skipped terms but the interval
//! never settled, the evaluation falls back to the exact pruned sum — the
//! caches make the re-run cheap, and the attempt cost only prefilter-tier
//! work.
//!
//! [w]: probdedup_textsim::StringComparator::similarity_within

use probdedup_model::pvalue::PValue;
use probdedup_model::value::Value;

use crate::cache::CachedComparator;
use crate::interned::PRUNE_EPS;
use crate::pvalue_sim::{pruned_expected_similarity, support_mass};
use crate::value_cmp::ValueComparator;

/// Outcome of a bounded evaluation against the cut interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedSim {
    /// The exact value is certified `≥ hi`.
    Above,
    /// The exact value is certified `< lo`.
    Below,
    /// The evaluation ran to completion; the value is exact (up to the
    /// same `PRUNE_EPS` tail bound as the exact pruned path).
    Exact(f64),
}

impl BoundedSim {
    /// Resolve to a representative value: certificates collapse onto the
    /// cut they cleared. Only for reporting — classification consumes the
    /// variants directly.
    pub fn representative(self, lo: f64, hi: f64) -> f64 {
        match self {
            BoundedSim::Above => hi,
            BoundedSim::Below => lo,
            BoundedSim::Exact(v) => v,
        }
    }
}

/// The shared bounded Eq. 5 loop (see the module docs). `a_alts`/`b_alts`
/// need not be probability-sorted — the mass bound holds in any order,
/// descending order merely settles certificates sooner — but `a_mass`/
/// `b_mass` must be the uncapped probability sums, exactly as in
/// [`pruned_expected_similarity`].
///
/// `kernel_within(ka, kb, cut)` follows the bounded-kernel contract:
/// `Some(exact)` or a certificate that the kernel similarity is `< cut`.
/// `kernel_exact` is consulted only by the unsettled-interval fallback.
// The signature mirrors `pruned_expected_similarity` plus the cut interval
// and the second kernel — a parameter struct would only rename the zip.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bounded_expected_similarity<K>(
    a_alts: &[(K, f64)],
    a_mass: f64,
    a_null: f64,
    b_alts: &[(K, f64)],
    b_mass: f64,
    b_null: f64,
    lo: f64,
    hi: f64,
    mut kernel_within: impl FnMut(&K, &K, f64) -> Option<f64>,
    kernel_exact: impl FnMut(&K, &K) -> f64,
) -> BoundedSim {
    // The per-term kernel cut: if a term's kernel similarity is < cut, the
    // term contributes less than weight · cut to the total.
    let cut = lo.clamp(0.0, 1.0);
    let null_term = a_null * b_null;
    let mut sum = null_term; // certified lower bound of the visited total
    let mut skipped = 0.0; // certified upper mass of bound-certified terms
    let mut inexact = false;
    let mut rem_a = a_mass;
    for (ka, pa) in a_alts {
        rem_a -= pa;
        let mut rem_b = b_mass;
        for (kb, pb) in b_alts {
            rem_b -= pb;
            let w = pa * pb;
            match kernel_within(ka, kb, cut) {
                Some(s) => {
                    if s > 0.0 {
                        sum += w * s;
                    }
                }
                None => {
                    skipped += w * cut;
                    inexact = true;
                }
            }
            // Unvisited terms: the rest of this row plus all later rows.
            let unvisited = pa * rem_b + rem_a * b_mass;
            if hi <= 1.0 && sum >= hi {
                return BoundedSim::Above;
            }
            if sum >= 1.0 {
                // Saturated: the exact path clamps to exactly 1 here, and
                // skipped or unvisited terms can only add.
                return BoundedSim::Exact(1.0);
            }
            let upper = sum + skipped + unvisited;
            // A bound-certified term contributes *strictly* less than
            // `w · cut`, so with any skipped mass the upper end is
            // exclusive and equality with `lo` still certifies.
            if upper < lo || (skipped > 0.0 && upper <= lo) {
                return BoundedSim::Below;
            }
            if unvisited <= PRUNE_EPS {
                // Same tail bound as the exact pruning loop: the remaining
                // contribution is certifiably negligible.
                if inexact {
                    break;
                }
                return BoundedSim::Exact(sum.clamp(0.0, 1.0));
            }
        }
    }
    if !inexact {
        return BoundedSim::Exact(sum.clamp(0.0, 1.0));
    }
    // Bounded kernels skipped terms but the interval straddles a cut:
    // resolve exactly (cached kernels make the re-run cheap).
    BoundedSim::Exact(pruned_expected_similarity(
        a_alts,
        a_mass,
        a_null,
        b_alts,
        b_mass,
        b_null,
        kernel_exact,
    ))
}

/// Bounded Eq. 5 on plain [`PValue`]s through an (uncached)
/// [`ValueComparator`] — the bounded twin of
/// [`pvalue_similarity`](crate::pvalue_similarity). Alternatives are
/// visited in the stored (value-sorted) order: no per-call sorting, no
/// allocation.
pub fn pvalue_similarity_bounded(
    a: &PValue,
    b: &PValue,
    cmp: &ValueComparator,
    lo: f64,
    hi: f64,
) -> BoundedSim {
    bounded_expected_similarity(
        a.alternatives(),
        support_mass(a.alternatives()),
        a.null_prob(),
        b.alternatives(),
        support_mass(b.alternatives()),
        b.null_prob(),
        lo,
        hi,
        |va: &Value, vb: &Value, cut| cmp.similarity_within(va, vb, cut),
        |va, vb| cmp.similarity(va, vb),
    )
}

/// [`pvalue_similarity_bounded`] through a [`CachedComparator`]: exact
/// values and below-cut verdicts are both memoized, so a bound-certified
/// value pair never re-runs a kernel anywhere in the relation.
pub fn pvalue_similarity_bounded_cached(
    a: &PValue,
    b: &PValue,
    cmp: &CachedComparator,
    lo: f64,
    hi: f64,
) -> BoundedSim {
    bounded_expected_similarity(
        a.alternatives(),
        support_mass(a.alternatives()),
        a.null_prob(),
        b.alternatives(),
        support_mass(b.alternatives()),
        b.null_prob(),
        lo,
        hi,
        |va: &Value, vb: &Value, cut| cmp.similarity_within(va, vb, cut),
        |va, vb| cmp.similarity(va, vb),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvalue_sim::pvalue_similarity;
    use probdedup_textsim::{JaroWinkler, Levenshtein, NormalizedHamming};

    fn kernels() -> Vec<ValueComparator> {
        vec![
            ValueComparator::text(NormalizedHamming::new()),
            ValueComparator::text(Levenshtein::new()),
            ValueComparator::text(JaroWinkler::new()),
        ]
    }

    fn cases() -> Vec<(PValue, PValue)> {
        vec![
            (
                PValue::certain("Tim"),
                PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap(),
            ),
            (
                PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap(),
                PValue::certain("mechanic"),
            ),
            (PValue::certain("smith"), PValue::certain("garcia")),
            (PValue::null(), PValue::certain("Tim")),
            (PValue::null(), PValue::null()),
            (
                PValue::categorical([("x", 0.6)]).unwrap(),
                PValue::categorical([("x", 0.5)]).unwrap(),
            ),
            (
                PValue::categorical([("abcdef", 0.5), ("xyzuvw", 0.5)]).unwrap(),
                PValue::categorical([("abcdef", 0.2), ("qqqqqq", 0.8)]).unwrap(),
            ),
        ]
    }

    /// Every certificate must agree with the exact value, across a sweep of
    /// cut intervals.
    #[test]
    fn certificates_agree_with_exact() {
        for cmp in kernels() {
            for (a, b) in cases() {
                let exact = pvalue_similarity(&a, &b, &cmp);
                for lo100 in (0..=100).step_by(10) {
                    for hi100 in (lo100..=100).step_by(10) {
                        let (lo, hi) = (f64::from(lo100) / 100.0, f64::from(hi100) / 100.0);
                        match pvalue_similarity_bounded(&a, &b, &cmp, lo, hi) {
                            BoundedSim::Above => {
                                assert!(exact >= hi - 1e-9, "{a} vs {b}: {exact} < hi {hi}")
                            }
                            BoundedSim::Below => {
                                assert!(exact < lo + 1e-9, "{a} vs {b}: {exact} >= lo {lo}")
                            }
                            BoundedSim::Exact(v) => {
                                assert!((v - exact).abs() < 1e-12, "{a} vs {b}: {v} != {exact}")
                            }
                        }
                    }
                }
            }
        }
    }

    /// The cached variant produces the same outcomes and actually records
    /// below-bound certificates.
    #[test]
    fn cached_variant_memoizes_verdicts() {
        let cmp = ValueComparator::text(Levenshtein::new());
        let cached = CachedComparator::new(cmp.clone());
        let (a, b) = (PValue::certain("smith"), PValue::certain("garcia"));
        // Disjoint names: far below a 0.9 cut.
        assert_eq!(
            pvalue_similarity_bounded_cached(&a, &b, &cached, 0.9, 1.1),
            BoundedSim::Below
        );
        let first = cached.bound_certs();
        assert!(first > 0, "no certificate recorded");
        // Re-query with an equal cut: the verdict cache answers.
        assert_eq!(
            pvalue_similarity_bounded_cached(&a, &b, &cached, 0.9, 1.1),
            BoundedSim::Below
        );
        assert!(cached.bound_certs() > first);
        // A query below the certified cut falls through to the exact value
        // and still agrees with the unbounded path.
        match pvalue_similarity_bounded_cached(&a, &b, &cached, 0.0, 0.1) {
            BoundedSim::Exact(v) => {
                assert!((v - pvalue_similarity(&a, &b, &cmp)).abs() < 1e-12)
            }
            BoundedSim::Above => {} // sim ≥ 0.1 is also a valid certificate
            BoundedSim::Below => panic!("similarity is not negative"),
        }
    }

    /// Saturation: identical certain values certify without full precision
    /// but still resolve to exactly 1.
    #[test]
    fn saturation_is_exact() {
        let cmp = ValueComparator::text(NormalizedHamming::new());
        let a = PValue::certain("machinist");
        match pvalue_similarity_bounded(&a, &a, &cmp, 0.2, 0.8) {
            BoundedSim::Above => {}
            other => panic!("expected Above, got {other:?}"),
        }
        assert_eq!(
            pvalue_similarity_bounded(&a, &a, &cmp, 0.0, 1.5),
            BoundedSim::Exact(1.0)
        );
    }

    #[test]
    fn representative_values_classify_consistently() {
        assert_eq!(BoundedSim::Above.representative(0.2, 0.8), 0.8);
        assert_eq!(BoundedSim::Below.representative(0.2, 0.8), 0.2);
        assert_eq!(BoundedSim::Exact(0.5).representative(0.2, 0.8), 0.5);
    }
}
