//! Comparison vectors: per-attribute expected similarities of a tuple pair
//! (the `c⃗ = [c₁, …, cₙ] ∈ [0,1]ⁿ` of Section III-C).

use std::sync::Arc;

use probdedup_model::schema::Schema;
use probdedup_model::tuple::ProbTuple;
use probdedup_textsim::StringComparator;

use crate::pvalue_sim::pvalue_similarity;
use crate::value_cmp::ValueComparator;

/// The comparison vector `c⃗` of one tuple pair: `c[i]` is the similarity of
/// the values of the `i`-th attribute.
pub type ComparisonVector = Vec<f64>;

/// Per-attribute value comparators for a schema.
#[derive(Debug, Clone)]
pub struct AttributeComparators {
    per_attr: Arc<Vec<ValueComparator>>,
}

impl AttributeComparators {
    /// The same string kernel for every attribute of `schema`.
    pub fn uniform(schema: &Schema, kernel: impl StringComparator + Clone + 'static) -> Self {
        Self {
            per_attr: Arc::new(
                (0..schema.arity())
                    .map(|_| ValueComparator::text(kernel.clone()))
                    .collect(),
            ),
        }
    }

    /// Explicit per-attribute comparators (must cover every attribute).
    pub fn per_attribute(comparators: Vec<ValueComparator>) -> Self {
        Self {
            per_attr: Arc::new(comparators),
        }
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }

    /// The comparator of attribute `i`.
    pub fn get(&self, i: usize) -> &ValueComparator {
        &self.per_attr[i]
    }

    /// Fresh memoizing wrappers for each attribute comparator (see
    /// [`CachedComparator`](crate::cache::CachedComparator)); the pipeline
    /// builds one set per run and shares it across worker threads.
    pub fn to_cached(&self) -> Vec<crate::cache::CachedComparator> {
        self.per_attr
            .iter()
            .map(|c| crate::cache::CachedComparator::new(c.clone()))
            .collect()
    }
}

/// Compare two probabilistic tuples attribute by attribute (Eq. 5 per
/// attribute), producing the comparison vector `c⃗ ∈ [0,1]ⁿ`.
///
/// Tuple membership probabilities are deliberately **ignored** — the paper's
/// Section IV argues membership stems from application context and must not
/// influence duplicate detection.
///
/// # Panics
///
/// Panics if the tuples' arities differ from the comparator set's arity
/// (schemas must have been aligned by schema matching upstream).
pub fn compare_tuples(
    t1: &ProbTuple,
    t2: &ProbTuple,
    comparators: &AttributeComparators,
) -> ComparisonVector {
    assert_eq!(t1.arity(), comparators.arity(), "t1 arity mismatch");
    assert_eq!(t2.arity(), comparators.arity(), "t2 arity mismatch");
    (0..comparators.arity())
        .map(|i| pvalue_similarity(t1.value(i), t2.value(i), comparators.get(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_textsim::NormalizedHamming;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn comparators() -> AttributeComparators {
        AttributeComparators::uniform(&schema(), NormalizedHamming::new())
    }

    /// Fig. 4's t11 and t22 and the Section IV-A walkthrough.
    #[test]
    fn paper_comparison_vector_t11_t22() {
        let s = schema();
        let t11 = ProbTuple::builder(&s)
            .certain("name", "Tim")
            .dist("job", [("machinist", 0.7), ("mechanic", 0.2)])
            .probability(1.0)
            .build()
            .unwrap();
        let t22 = ProbTuple::builder(&s)
            .dist("name", [("Tim", 0.7), ("Kim", 0.3)])
            .certain("job", "mechanic")
            .probability(0.8)
            .build()
            .unwrap();
        let c = compare_tuples(&t11, &t22, &comparators());
        assert_eq!(c.len(), 2);
        assert!((c[0] - 0.9).abs() < 1e-12);
        assert!((c[1] - 53.0 / 90.0).abs() < 1e-12); // ≈ 0.59 in the paper
    }

    /// Membership probabilities must not affect the comparison vector.
    #[test]
    fn membership_invariance() {
        let s = schema();
        let a = ProbTuple::builder(&s)
            .certain("name", "Tim")
            .certain("job", "baker")
            .probability(1.0)
            .build()
            .unwrap();
        let b = ProbTuple::builder(&s)
            .certain("name", "Tim")
            .certain("job", "baker")
            .probability(0.05)
            .build()
            .unwrap();
        let target = ProbTuple::builder(&s)
            .certain("name", "Tom")
            .certain("job", "baker")
            .build()
            .unwrap();
        let cmp = comparators();
        assert_eq!(
            compare_tuples(&a, &target, &cmp),
            compare_tuples(&b, &target, &cmp)
        );
    }

    #[test]
    fn vector_stays_in_unit_hypercube() {
        let s = schema();
        let a = ProbTuple::builder(&s)
            .dist("name", [("John", 0.5), ("Johan", 0.5)])
            .dist("job", [("baker", 0.7), ("confectioner", 0.3)])
            .build()
            .unwrap();
        let b = ProbTuple::builder(&s)
            .dist("name", [("John", 0.7), ("Jon", 0.3)])
            .certain("job", "confectionist")
            .build()
            .unwrap();
        for c in compare_tuples(&a, &b, &comparators()) {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let one = Schema::new(["only"]);
        let t = ProbTuple::builder(&one)
            .certain("only", "x")
            .build()
            .unwrap();
        let _ = compare_tuples(&t, &t, &comparators());
    }

    #[test]
    fn per_attribute_comparators() {
        use probdedup_textsim::Exact;
        let cmp = AttributeComparators::per_attribute(vec![
            ValueComparator::text(Exact),
            ValueComparator::text(NormalizedHamming::new()),
        ]);
        let s = schema();
        let a = ProbTuple::builder(&s)
            .certain("name", "Tim")
            .certain("job", "machinist")
            .build()
            .unwrap();
        let b = ProbTuple::builder(&s)
            .certain("name", "Tom")
            .certain("job", "mechanic")
            .build()
            .unwrap();
        let c = compare_tuples(&a, &b, &cmp);
        assert_eq!(c[0], 0.0); // exact: Tim ≠ Tom
        assert!((c[1] - 5.0 / 9.0).abs() < 1e-12); // hamming
    }
}
