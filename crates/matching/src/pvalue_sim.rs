//! The expected-similarity formulas of Section IV-A: Eq. 4 (error-free) and
//! Eq. 5 (erroneous data).

use probdedup_model::pvalue::PValue;
use probdedup_model::value::Value;

use crate::value_cmp::ValueComparator;

/// Eq. 5: the expected similarity of two uncertain attribute values under a
/// similarity kernel, assuming the values are independent random variables
/// (the dependency-free model):
///
/// ```text
/// sim(a₁, a₂) = Σ_{d₁∈D̂} Σ_{d₂∈D̂} P(a₁=d₁) · P(a₂=d₂) · sim(d₁, d₂)
/// ```
///
/// `D̂` includes ⊥, whose mass is implicit in [`PValue`]; the ⊥ conventions
/// live in [`ValueComparator::similarity_opt`]. Runs in
/// `O(|supp(a₁)| · |supp(a₂)|)` kernel evaluations (the ⊥×⊥ term is free).
///
/// ```
/// use probdedup_matching::{pvalue_similarity, ValueComparator};
/// use probdedup_model::pvalue::PValue;
/// use probdedup_textsim::NormalizedHamming;
///
/// // Paper, Section IV-A: sim(t11.name, t22.name) = 0.9.
/// let a = PValue::certain("Tim");
/// let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
/// let cmp = ValueComparator::text(NormalizedHamming::new());
/// assert!((pvalue_similarity(&a, &b, &cmp) - 0.9).abs() < 1e-12);
/// ```
pub fn pvalue_similarity(a: &PValue, b: &PValue, cmp: &ValueComparator) -> f64 {
    let mut total = 0.0;
    // Existing × existing terms.
    for (va, pa) in a.alternatives() {
        for (vb, pb) in b.alternatives() {
            let s = cmp.similarity(va, vb);
            if s > 0.0 {
                total += pa * pb * s;
            }
        }
    }
    // ⊥ × ⊥ term: sim(⊥,⊥) = 1. The ⊥ × existing terms contribute 0.
    total += a.null_prob() * b.null_prob();
    // Clamp tiny floating-point overshoot.
    total.clamp(0.0, 1.0)
}

/// The shared Eq. 5 pruning loop behind [`pvalue_similarity_pruned`] and
/// the interned hot path
/// ([`interned_pvalue_similarity`](crate::interned::interned_pvalue_similarity)).
///
/// `a_alts`/`b_alts` must be in **descending probability order** and
/// `a_mass`/`b_mass` must be the **uncapped** sums of their probabilities
/// (a distribution may legitimately sum to `1 + ε` within the model's
/// probability tolerance; capping the pruning budget at 1 would let the
/// loop break while up to `ε` of real contribution remains). Because every
/// kernel value is ≤ 1, the contribution of all unvisited terms is bounded
/// by the remaining mass product — iteration breaks as soon as that bound
/// drops below [`PRUNE_EPS`](crate::interned::PRUNE_EPS), or the
/// accumulated sum saturates at 1 (where the final clamp makes further
/// non-negative terms exactly irrelevant).
///
/// The result differs from the exhaustive sum by less than
/// `(|supp(a₁)| + 1) · PRUNE_EPS`; property tests pin agreement at 1e-12.
pub(crate) fn pruned_expected_similarity<K>(
    a_alts: &[(K, f64)],
    a_mass: f64,
    a_null: f64,
    b_alts: &[(K, f64)],
    b_mass: f64,
    b_null: f64,
    mut kernel: impl FnMut(&K, &K) -> f64,
) -> f64 {
    use crate::interned::PRUNE_EPS;
    let mut total = 0.0;
    let mut rem_a = a_mass;
    for (ka, pa) in a_alts {
        if rem_a * b_mass <= PRUNE_EPS || total >= 1.0 {
            break;
        }
        let mut rem_b = b_mass;
        for (kb, pb) in b_alts {
            if pa * rem_b <= PRUNE_EPS {
                break;
            }
            let s = kernel(ka, kb);
            if s > 0.0 {
                total += pa * pb * s;
            }
            rem_b -= pb;
        }
        rem_a -= pa;
    }
    // ⊥ × ⊥ term: sim(⊥,⊥) = 1. The ⊥ × existing terms contribute 0.
    total += a_null * b_null;
    total.clamp(0.0, 1.0)
}

/// Uncapped probability mass of a support (the pruning budget — see
/// [`pruned_expected_similarity`] for why it must not be clamped at 1).
pub(crate) fn support_mass(alts: &[(impl Sized, f64)]) -> f64 {
    alts.iter().map(|(_, p)| p).sum()
}

/// [`pvalue_similarity`] with **upper-bound pruning**: alternatives are
/// traversed in descending probability order and the double sum breaks
/// early once the remaining probability mass cannot contribute (see
/// `pruned_expected_similarity` for the exact bound). Skewed
/// distributions with long low-mass tails skip most kernel evaluations;
/// certain values skip none.
pub fn pvalue_similarity_pruned(a: &PValue, b: &PValue, cmp: &ValueComparator) -> f64 {
    // Descending-probability views (ties by value order for determinism —
    // PValue stores alternatives value-sorted).
    fn desc(pv: &PValue) -> Vec<(&Value, f64)> {
        let mut alts: Vec<(&Value, f64)> = pv.alternatives().iter().map(|(v, p)| (v, *p)).collect();
        alts.sort_by(|(va, pa), (vb, pb)| {
            pb.partial_cmp(pa)
                .expect("finite probabilities")
                .then(va.cmp(vb))
        });
        alts
    }
    let (a_desc, b_desc) = (desc(a), desc(b));
    pruned_expected_similarity(
        &a_desc,
        support_mass(&a_desc),
        a.null_prob(),
        &b_desc,
        support_mass(&b_desc),
        b.null_prob(),
        |va, vb| cmp.similarity(va, vb),
    )
}

/// Eq. 4 (error-free data): the probability that both values are equal,
/// `P(a₁ = a₂)`. Equivalent to [`pvalue_similarity`] with the exact-equality
/// kernel — a property test asserts this reduction.
pub fn pvalue_equality(a: &PValue, b: &PValue) -> f64 {
    a.equality_prob(b)
}

/// [`pvalue_similarity`] with a memoizing kernel: identical value pairs
/// (which recur constantly across a relation — domains are small relative
/// to tuple counts) hit the cache instead of re-running the string kernel.
pub fn pvalue_similarity_cached(
    a: &PValue,
    b: &PValue,
    cmp: &crate::cache::CachedComparator,
) -> f64 {
    let mut total = 0.0;
    for (va, pa) in a.alternatives() {
        for (vb, pb) in b.alternatives() {
            let s = cmp.similarity(va, vb);
            if s > 0.0 {
                total += pa * pb * s;
            }
        }
    }
    total += a.null_prob() * b.null_prob();
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::value::Value;
    use probdedup_textsim::{Exact, NormalizedHamming};

    fn hamming() -> ValueComparator {
        ValueComparator::text(NormalizedHamming::new())
    }

    #[test]
    fn paper_sim_name_t11_t22() {
        // sim(Tim, {Tim: .7, Kim: .3}) = .7·1 + .3·(2/3) = 0.9.
        let a = PValue::certain("Tim");
        let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
        assert!((pvalue_similarity(&a, &b, &hamming()) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn paper_sim_job_t11_t22() {
        // sim({machinist: .7, mechanic: .2}, mechanic)
        //   = .7·(5/9) + .2·1 + .1·0 = 53/90 ≈ 0.589 (the paper rounds to 0.59).
        let a = PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap();
        let b = PValue::certain("mechanic");
        let s = pvalue_similarity(&a, &b, &hamming());
        assert!((s - 53.0 / 90.0).abs() < 1e-12);
        assert!((s - 0.59).abs() < 2e-3); // the paper's rounded figure
    }

    #[test]
    fn null_against_null_and_existing() {
        let null = PValue::null();
        let tim = PValue::certain("Tim");
        let c = hamming();
        assert_eq!(pvalue_similarity(&null, &null, &c), 1.0);
        assert_eq!(pvalue_similarity(&null, &tim, &c), 0.0);
        assert_eq!(pvalue_similarity(&tim, &null, &c), 0.0);
    }

    #[test]
    fn partial_null_mass_contributes() {
        // a = {x: .6, ⊥: .4}, b = {x: .5, ⊥: .5}:
        // x·x: .6·.5·1 = .3; ⊥·⊥: .4·.5 = .2 → 0.5.
        let a = PValue::categorical([("x", 0.6)]).unwrap();
        let b = PValue::categorical([("x", 0.5)]).unwrap();
        assert!((pvalue_similarity(&a, &b, &hamming()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_kernel_reduces_to_equality_probability() {
        let a = PValue::categorical([("Tim", 0.6), ("Tom", 0.4)]).unwrap();
        let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
        let exact = ValueComparator::text(Exact);
        assert!((pvalue_similarity(&a, &b, &exact) - pvalue_equality(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn certain_identical_values_score_one() {
        let a = PValue::certain("machinist");
        assert_eq!(pvalue_similarity(&a, &a, &hamming()), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap();
        let b = PValue::categorical([("mechanic", 0.5), ("baker", 0.3)]).unwrap();
        let c = hamming();
        assert!((pvalue_similarity(&a, &b, &c) - pvalue_similarity(&b, &a, &c)).abs() < 1e-12);
    }

    #[test]
    fn numeric_distributions() {
        // Uncertain ages compared with the numeric kernel (scale 10).
        let a = PValue::categorical([(Value::Int(30), 0.5), (Value::Int(40), 0.5)]).unwrap();
        let b = PValue::certain(Value::Int(35));
        // .5·.5 + .5·.5 = 0.5.
        assert!((pvalue_similarity(&a, &b, &hamming()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pruned_matches_unpruned_on_paper_examples() {
        let cases = [
            (
                PValue::certain("Tim"),
                PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap(),
            ),
            (
                PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap(),
                PValue::certain("mechanic"),
            ),
            (PValue::null(), PValue::certain("Tim")),
            (PValue::null(), PValue::null()),
            (
                PValue::categorical([("x", 0.6)]).unwrap(),
                PValue::categorical([("x", 0.5)]).unwrap(),
            ),
        ];
        let c = hamming();
        for (a, b) in &cases {
            let slow = pvalue_similarity(a, b, &c);
            let fast = pvalue_similarity_pruned(a, b, &c);
            assert!((slow - fast).abs() < 1e-12, "{a} vs {b}: {slow} / {fast}");
        }
    }

    #[test]
    fn pruned_matches_unpruned_on_long_low_mass_tails() {
        // Geometric tail: most of the mass in the first few alternatives,
        // so pruning breaks early — the result must still agree.
        let mk = |tag: char, n: i32| {
            PValue::categorical(
                (0..n).map(|i| (format!("{tag}{i:03}"), 0.5_f64.powi(i + 1).max(1e-18))),
            )
            .unwrap()
        };
        let c = hamming();
        for (na, nb) in [(1, 40), (40, 40), (25, 3)] {
            let a = mk('a', na);
            let b = mk('b', nb);
            let slow = pvalue_similarity(&a, &b, &c);
            let fast = pvalue_similarity_pruned(&a, &b, &c);
            assert!((slow - fast).abs() < 1e-12, "{na}x{nb}: {slow} / {fast}");
        }
    }

    #[test]
    fn pruned_saturation_break_is_exact() {
        // Identical certain values saturate the sum at exactly 1.
        let a = PValue::certain("machinist");
        assert_eq!(pvalue_similarity_pruned(&a, &a, &hamming()), 1.0);
    }

    #[test]
    fn pruned_covers_over_mass_distributions() {
        // The model tolerates supports summing to 1 + ε (ε ≤ PROB_EPS).
        // The pruning budget must be the *uncapped* sum, otherwise the
        // trailing ~ε of mass is silently skipped and the result drifts by
        // up to ε ≫ 1e-12 from the exhaustive sum.
        let b = PValue::categorical([("aa", 0.5), ("ab", 0.5), ("ac", 5e-10)]).unwrap();
        let a = PValue::certain("aa");
        let c = hamming();
        let slow = pvalue_similarity(&a, &b, &c);
        let fast = pvalue_similarity_pruned(&a, &b, &c);
        assert!((slow - fast).abs() < 1e-12, "{slow} vs {fast}");
    }
}
