//! The expected-similarity formulas of Section IV-A: Eq. 4 (error-free) and
//! Eq. 5 (erroneous data).

use probdedup_model::pvalue::PValue;

use crate::value_cmp::ValueComparator;

/// Eq. 5: the expected similarity of two uncertain attribute values under a
/// similarity kernel, assuming the values are independent random variables
/// (the dependency-free model):
///
/// ```text
/// sim(a₁, a₂) = Σ_{d₁∈D̂} Σ_{d₂∈D̂} P(a₁=d₁) · P(a₂=d₂) · sim(d₁, d₂)
/// ```
///
/// `D̂` includes ⊥, whose mass is implicit in [`PValue`]; the ⊥ conventions
/// live in [`ValueComparator::similarity_opt`]. Runs in
/// `O(|supp(a₁)| · |supp(a₂)|)` kernel evaluations (the ⊥×⊥ term is free).
///
/// ```
/// use probdedup_matching::{pvalue_similarity, ValueComparator};
/// use probdedup_model::pvalue::PValue;
/// use probdedup_textsim::NormalizedHamming;
///
/// // Paper, Section IV-A: sim(t11.name, t22.name) = 0.9.
/// let a = PValue::certain("Tim");
/// let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
/// let cmp = ValueComparator::text(NormalizedHamming::new());
/// assert!((pvalue_similarity(&a, &b, &cmp) - 0.9).abs() < 1e-12);
/// ```
pub fn pvalue_similarity(a: &PValue, b: &PValue, cmp: &ValueComparator) -> f64 {
    let mut total = 0.0;
    // Existing × existing terms.
    for (va, pa) in a.alternatives() {
        for (vb, pb) in b.alternatives() {
            let s = cmp.similarity(va, vb);
            if s > 0.0 {
                total += pa * pb * s;
            }
        }
    }
    // ⊥ × ⊥ term: sim(⊥,⊥) = 1. The ⊥ × existing terms contribute 0.
    total += a.null_prob() * b.null_prob();
    // Clamp tiny floating-point overshoot.
    total.clamp(0.0, 1.0)
}

/// Eq. 4 (error-free data): the probability that both values are equal,
/// `P(a₁ = a₂)`. Equivalent to [`pvalue_similarity`] with the exact-equality
/// kernel — a property test asserts this reduction.
pub fn pvalue_equality(a: &PValue, b: &PValue) -> f64 {
    a.equality_prob(b)
}

/// [`pvalue_similarity`] with a memoizing kernel: identical value pairs
/// (which recur constantly across a relation — domains are small relative
/// to tuple counts) hit the cache instead of re-running the string kernel.
pub fn pvalue_similarity_cached(
    a: &PValue,
    b: &PValue,
    cmp: &crate::cache::CachedComparator,
) -> f64 {
    let mut total = 0.0;
    for (va, pa) in a.alternatives() {
        for (vb, pb) in b.alternatives() {
            let s = cmp.similarity(va, vb);
            if s > 0.0 {
                total += pa * pb * s;
            }
        }
    }
    total += a.null_prob() * b.null_prob();
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_model::value::Value;
    use probdedup_textsim::{Exact, NormalizedHamming};

    fn hamming() -> ValueComparator {
        ValueComparator::text(NormalizedHamming::new())
    }

    #[test]
    fn paper_sim_name_t11_t22() {
        // sim(Tim, {Tim: .7, Kim: .3}) = .7·1 + .3·(2/3) = 0.9.
        let a = PValue::certain("Tim");
        let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
        assert!((pvalue_similarity(&a, &b, &hamming()) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn paper_sim_job_t11_t22() {
        // sim({machinist: .7, mechanic: .2}, mechanic)
        //   = .7·(5/9) + .2·1 + .1·0 = 53/90 ≈ 0.589 (the paper rounds to 0.59).
        let a = PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap();
        let b = PValue::certain("mechanic");
        let s = pvalue_similarity(&a, &b, &hamming());
        assert!((s - 53.0 / 90.0).abs() < 1e-12);
        assert!((s - 0.59).abs() < 2e-3); // the paper's rounded figure
    }

    #[test]
    fn null_against_null_and_existing() {
        let null = PValue::null();
        let tim = PValue::certain("Tim");
        let c = hamming();
        assert_eq!(pvalue_similarity(&null, &null, &c), 1.0);
        assert_eq!(pvalue_similarity(&null, &tim, &c), 0.0);
        assert_eq!(pvalue_similarity(&tim, &null, &c), 0.0);
    }

    #[test]
    fn partial_null_mass_contributes() {
        // a = {x: .6, ⊥: .4}, b = {x: .5, ⊥: .5}:
        // x·x: .6·.5·1 = .3; ⊥·⊥: .4·.5 = .2 → 0.5.
        let a = PValue::categorical([("x", 0.6)]).unwrap();
        let b = PValue::categorical([("x", 0.5)]).unwrap();
        assert!((pvalue_similarity(&a, &b, &hamming()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_kernel_reduces_to_equality_probability() {
        let a = PValue::categorical([("Tim", 0.6), ("Tom", 0.4)]).unwrap();
        let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
        let exact = ValueComparator::text(Exact);
        assert!(
            (pvalue_similarity(&a, &b, &exact) - pvalue_equality(&a, &b)).abs() < 1e-12
        );
    }

    #[test]
    fn certain_identical_values_score_one() {
        let a = PValue::certain("machinist");
        assert_eq!(pvalue_similarity(&a, &a, &hamming()), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap();
        let b = PValue::categorical([("mechanic", 0.5), ("baker", 0.3)]).unwrap();
        let c = hamming();
        assert!(
            (pvalue_similarity(&a, &b, &c) - pvalue_similarity(&b, &a, &c)).abs() < 1e-12
        );
    }

    #[test]
    fn numeric_distributions() {
        // Uncertain ages compared with the numeric kernel (scale 10).
        let a = PValue::categorical([(Value::Int(30), 0.5), (Value::Int(40), 0.5)]).unwrap();
        let b = PValue::certain(Value::Int(35));
        // .5·.5 + .5·.5 = 0.5.
        assert!((pvalue_similarity(&a, &b, &hamming()) - 0.5).abs() < 1e-12);
    }
}
