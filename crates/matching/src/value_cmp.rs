//! [`ValueComparator`]: a normalized similarity on concrete [`Value`]s,
//! enforcing the paper's ⊥ conventions in exactly one place.

use std::sync::Arc;

use probdedup_model::value::Value;
use probdedup_textsim::numeric::{AbsoluteScaled, NumericComparator};
use probdedup_textsim::{PreparedText, SharedComparator, StringComparator};

/// Compares two concrete domain values, routing by type:
///
/// * `⊥` vs `⊥` → `1.0`; `⊥` vs anything else → `0.0` (Section IV-A),
/// * text vs text → the configured [`StringComparator`],
/// * numeric vs numeric (`Int`/`Real` interchangeable) → the configured
///   `NumericComparator`,
/// * bool vs bool → exact,
/// * mixed types → `0.0` by default, or compared as rendered strings when
///   [`ValueComparator::coerce_mixed_to_text`] is enabled (useful for dirty
///   sources that store numbers as strings).
#[derive(Clone)]
pub struct ValueComparator {
    text: SharedComparator,
    numeric: Arc<dyn NumericComparator>,
    mixed_as_text: bool,
}

impl ValueComparator {
    /// A comparator using `text` for strings and a numeric kernel that
    /// decays over `numeric_scale` (see
    /// [`AbsoluteScaled`]).
    pub fn new(text: SharedComparator, numeric: Arc<dyn NumericComparator>) -> Self {
        Self {
            text,
            numeric,
            mixed_as_text: false,
        }
    }

    /// A comparator for text-dominated schemas: the given string kernel plus
    /// an absolute numeric kernel with scale 10.
    pub fn text(cmp: impl StringComparator + 'static) -> Self {
        Self::new(Arc::new(cmp), Arc::new(AbsoluteScaled::new(10.0)))
    }

    /// Compare mixed-type pairs as rendered strings instead of scoring 0.
    pub fn coerce_mixed_to_text(mut self) -> Self {
        self.mixed_as_text = true;
        self
    }

    /// The underlying string kernel.
    pub fn text_kernel(&self) -> &SharedComparator {
        &self.text
    }

    /// Similarity of two concrete values in `[0, 1]`.
    pub fn similarity(&self, a: &Value, b: &Value) -> f64 {
        use Value::*;
        match (a, b) {
            (Null, Null) => 1.0,
            (Null, _) | (_, Null) => 0.0,
            (Text(x), Text(y)) => self.text.similarity(x, y),
            (Bool(x), Bool(y)) if x == y => 1.0,
            (Bool(_), Bool(_)) => 0.0,
            (Int(_) | Real(_), Int(_) | Real(_)) => {
                let (x, y) = (
                    a.as_number().expect("numeric"),
                    b.as_number().expect("numeric"),
                );
                self.numeric.similarity(x, y)
            }
            _ if self.mixed_as_text => self.text.similarity(&a.render(), &b.render()),
            _ => 0.0,
        }
    }

    /// Similarity of the optional-value encoding used by
    /// [`PValue::outcomes`](probdedup_model::pvalue::PValue::outcomes):
    /// `None` stands for ⊥.
    pub fn similarity_opt(&self, a: Option<&Value>, b: Option<&Value>) -> f64 {
        match (a, b) {
            (None, None) => 1.0,
            (None, Some(_)) | (Some(_), None) => 0.0,
            (Some(x), Some(y)) => self.similarity(x, y),
        }
    }

    /// Whether this comparator's text kernel exploits precomputed Myers
    /// pattern bitmasks (see [`PreparedValue::of`]).
    pub fn wants_pattern_bits(&self) -> bool {
        self.text.wants_pattern_bits()
    }

    /// Bounded similarity: `Some(exact)` or a certificate that the
    /// similarity is `< bound` (the contract of
    /// [`StringComparator::similarity_within`]). Only text pairs have
    /// bounded kernels; every other routing arm is constant-time anyway
    /// and returns its exact value.
    pub fn similarity_within(&self, a: &Value, b: &Value, bound: f64) -> Option<f64> {
        match (a, b) {
            (Value::Text(x), Value::Text(y)) => self.text.similarity_within(x, y, bound),
            _ => Some(self.similarity(a, b)),
        }
    }

    /// [`similarity_within`](Self::similarity_within) over
    /// [`PreparedValue`]s: the prefilters read the precomputed lengths and
    /// class masks instead of re-scanning the strings.
    pub fn similarity_prepared_within(
        &self,
        a: &PreparedValue,
        b: &PreparedValue,
        bound: f64,
    ) -> Option<f64> {
        match (a, b) {
            (PreparedValue::Text(x), PreparedValue::Text(y)) => {
                self.text.similarity_prepared_within(x, y, bound)
            }
            _ => Some(self.similarity_prepared(a, b)),
        }
    }

    /// [`similarity`](Self::similarity) over [`PreparedValue`]s: identical
    /// routing and results, but text pairs reuse the per-value
    /// precomputation instead of re-scanning the strings.
    pub fn similarity_prepared(&self, a: &PreparedValue, b: &PreparedValue) -> f64 {
        use PreparedValue::*;
        match (a, b) {
            (Null, Null) => 1.0,
            (Null, _) | (_, Null) => 0.0,
            (Text(x), Text(y)) => self.text.similarity_prepared(x, y),
            (Other(x), Other(y)) => self.similarity(x, y),
            // Mixed text/non-text, same convention as `similarity`'s
            // fallthrough arms (a Text's render is the string itself).
            (Text(x), Other(y)) if self.mixed_as_text => {
                self.text.similarity(x.text(), &y.render())
            }
            (Other(x), Text(y)) if self.mixed_as_text => {
                self.text.similarity(&x.render(), y.text())
            }
            _ => 0.0,
        }
    }
}

/// A [`Value`] with its per-value comparison state precomputed: the
/// symbol-sidecar entry of the interned matching path (built once per
/// distinct value, reused by every cache-miss kernel evaluation).
#[derive(Debug, Clone)]
pub enum PreparedValue {
    /// `⊥` — the constant-time conventions never reach a kernel.
    Null,
    /// A text value with its [`PreparedText`] (ASCII class, character
    /// length, and — when `with_bits` — the Myers `Peq` table).
    Text(PreparedText),
    /// Any non-text value; compared through the unprepared routing.
    Other(Value),
}

impl PreparedValue {
    /// Prepare `v`. `with_bits` controls whether text values also build
    /// their Myers pattern bitmasks
    /// ([`ValueComparator::wants_pattern_bits`] says if the kernel pays
    /// that off).
    pub fn of(v: &Value, with_bits: bool) -> Self {
        match v {
            Value::Null => Self::Null,
            Value::Text(s) => Self::Text(PreparedText::new(s, with_bits)),
            other => Self::Other(other.clone()),
        }
    }
}

impl std::fmt::Debug for ValueComparator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueComparator")
            .field("text", &self.text.name())
            .field("numeric", &self.numeric.name())
            .field("mixed_as_text", &self.mixed_as_text)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_textsim::NormalizedHamming;

    fn cmp() -> ValueComparator {
        ValueComparator::text(NormalizedHamming::new())
    }

    #[test]
    fn null_conventions() {
        let c = cmp();
        assert_eq!(c.similarity(&Value::Null, &Value::Null), 1.0);
        assert_eq!(c.similarity(&Value::Null, &Value::from("x")), 0.0);
        assert_eq!(c.similarity(&Value::from("x"), &Value::Null), 0.0);
        assert_eq!(c.similarity_opt(None, None), 1.0);
        assert_eq!(c.similarity_opt(None, Some(&Value::from("x"))), 0.0);
    }

    #[test]
    fn text_routing() {
        let c = cmp();
        assert!((c.similarity(&Value::from("Tim"), &Value::from("Kim")) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_routing_mixes_int_and_real() {
        let c = cmp();
        assert_eq!(c.similarity(&Value::Int(30), &Value::Int(30)), 1.0);
        assert!((c.similarity(&Value::Int(30), &Value::Real(35.0)) - 0.5).abs() < 1e-12);
        assert_eq!(c.similarity(&Value::Int(30), &Value::Int(50)), 0.0);
    }

    #[test]
    fn bool_exact() {
        let c = cmp();
        assert_eq!(c.similarity(&Value::Bool(true), &Value::Bool(true)), 1.0);
        assert_eq!(c.similarity(&Value::Bool(true), &Value::Bool(false)), 0.0);
    }

    #[test]
    fn mixed_types_default_zero() {
        let c = cmp();
        assert_eq!(c.similarity(&Value::from("30"), &Value::Int(30)), 0.0);
        assert_eq!(c.similarity(&Value::Bool(true), &Value::from("true")), 0.0);
    }

    #[test]
    fn mixed_coercion_renders() {
        let c = cmp().coerce_mixed_to_text();
        assert_eq!(c.similarity(&Value::from("30"), &Value::Int(30)), 1.0);
        assert!(c.similarity(&Value::from("31"), &Value::Int(30)) < 1.0);
    }

    #[test]
    fn debug_formatting_names_kernels() {
        let s = format!("{:?}", cmp());
        assert!(s.contains("hamming"), "{s}");
    }

    #[test]
    fn prepared_similarity_matches_unprepared() {
        let values = [
            Value::Null,
            Value::from("Tim"),
            Value::from("machinist"),
            Value::from("30"),
            Value::Int(30),
            Value::Real(35.0),
            Value::Bool(true),
        ];
        for c in [cmp(), cmp().coerce_mixed_to_text()] {
            for with_bits in [false, true] {
                let prepared: Vec<PreparedValue> = values
                    .iter()
                    .map(|v| PreparedValue::of(v, with_bits))
                    .collect();
                for (v1, p1) in values.iter().zip(&prepared) {
                    for (v2, p2) in values.iter().zip(&prepared) {
                        assert_eq!(
                            c.similarity_prepared(p1, p2).to_bits(),
                            c.similarity(v1, v2).to_bits(),
                            "{v1:?} vs {v2:?} (bits: {with_bits})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wants_pattern_bits_follows_text_kernel() {
        use probdedup_textsim::Levenshtein;
        assert!(!cmp().wants_pattern_bits());
        assert!(ValueComparator::text(Levenshtein::new()).wants_pattern_bits());
    }
}
