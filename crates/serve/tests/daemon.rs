//! End-to-end tests of the serving front door: an in-process daemon on
//! an ephemeral loopback port, driven through the real HTTP client.
//!
//! The contracts under test:
//! * endpoint responses equal what the library (`DedupSession`) computes
//!   over the same corpus;
//! * a daemon restarted over its autosaved snapshots reports the
//!   identical partition with **zero** key renders since open (the warm
//!   restart certificate);
//! * concurrent readers during an ingest observe either the pre- or the
//!   post-ingest partition, never a torn one, and the final merged
//!   result equals a serial one-shot run.

use std::sync::Arc;
use std::time::Duration;

use probdedup_datagen::{generate, DatasetConfig, Dictionaries};
use probdedup_model::format::write_xrelation;
use probdedup_model::relation::XRelation;
use probdedup_serve::client::{json_field, Client};
use probdedup_serve::server::{RunningServer, ServeConfig, Server};

/// Two small sources with overlapping entities (people schema, arity 4).
fn sources() -> Vec<XRelation> {
    let cfg = DatasetConfig {
        entities: 40,
        sources: 2,
        seed: 20100301,
        ..DatasetConfig::default()
    };
    generate(&Dictionaries::people(), &cfg).relations
}

fn boot(config: ServeConfig) -> (RunningServer, Client) {
    let running = Server::bind(config).expect("bind").spawn();
    let client = Client::new(running.addr());
    (running, client)
}

fn config() -> ServeConfig {
    ServeConfig::new("127.0.0.1:0", ServeConfig::default_pipeline(4))
}

/// The `"clusters": [...]` token of a partition/dedup response body.
fn clusters_of(body: &str) -> String {
    let at = body.find("\"clusters\":").expect("clusters field");
    let start = body[at..].find('[').unwrap() + at;
    let mut depth = 0usize;
    for (i, c) in body[start..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return body[start..=start + i].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unterminated clusters array in {body}");
}

/// Render library clusters in the daemon's JSON shape.
fn clusters_json(clusters: &[Vec<usize>]) -> String {
    let inner: Vec<String> = clusters
        .iter()
        .map(|c| {
            let rows: Vec<String> = c.iter().map(usize::to_string).collect();
            format!("[{}]", rows.join(", "))
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

#[test]
fn health_sessions_and_unknown_routes() {
    let (running, client) = boot(config());

    let (status, body) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "status").as_deref(), Some("ok"));
    assert_eq!(json_field(&body, "sessions").as_deref(), Some("0"));

    let (status, _) = client.get("/no-such").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.post("/health", b"").unwrap();
    assert_eq!(status, 405);
    let (status, _) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 404, "read endpoints never create sessions");
    let (status, body) = client.get("/sessions/..%2Fevil/partition").unwrap();
    assert_eq!(status, 400, "bad session name must be rejected: {body}");
    let (status, _) = client
        .post("/sessions/census/ingest", b"not a relation")
        .unwrap();
    assert_eq!(status, 400);

    let summary = running.shutdown().unwrap();
    assert_eq!(summary.requests, 6);
}

#[test]
fn endpoints_match_the_library_session() {
    let srcs = sources();
    let (running, client) = boot(config());

    // Drive the daemon: ingest both sources into one named session.
    for (i, src) in srcs.iter().enumerate() {
        let (status, body) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200, "ingest {i}: {body}");
        assert_eq!(
            json_field(&body, "rows_added").as_deref(),
            Some(src.len().to_string().as_str())
        );
    }

    // The library ground truth over the same pipeline and corpus.
    let mut session = ServeConfig::default_pipeline(4).session();
    for src in &srcs {
        session.ingest(src).unwrap();
    }
    let expected = session.result();

    let (status, body) = client.get("/sessions/census/partition?full=1").unwrap();
    assert_eq!(status, 200);
    assert_eq!(clusters_of(&body), clusters_json(&expected.clusters));
    assert_eq!(
        json_field(&body, "candidates").as_deref(),
        Some(expected.candidates.to_string().as_str())
    );
    assert_eq!(
        json_field(&body, "matches").as_deref(),
        Some(expected.matches().count().to_string().as_str())
    );

    // Query endpoint ≡ classify_pair, including a non-candidate pair
    // classified on the spot through the read path.
    let mut checked = 0;
    for d in expected.decisions.iter().take(5) {
        let (status, body) = client
            .get(&format!(
                "/sessions/census/query?i={}&j={}",
                d.pair.0, d.pair.1
            ))
            .unwrap();
        assert_eq!(status, 200);
        let class = json_field(&body, "class").unwrap();
        let lib = session.classify_pair(d.pair.0, d.pair.1).unwrap();
        assert_eq!(lib.pair, d.pair);
        let lib_class = format!("{}", lib.class);
        let want = match lib_class.as_str() {
            "m" => "match",
            "p" => "possible",
            _ => "non-match",
        };
        assert_eq!(class, want, "pair {:?}", d.pair);
        checked += 1;
    }
    assert!(checked > 0, "dataset produced no decisions to check");

    let (status, body) = client.get("/sessions/census/query?i=0&j=0").unwrap();
    assert_eq!(status, 400, "i == j is not a pair: {body}");
    let (status, _) = client.get("/sessions/census/query?i=0&j=999999").unwrap();
    assert_eq!(status, 400);

    // /stats sees the session and the classified pairs.
    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_field(&body, "decided_pairs").as_deref(),
        Some(session.decided_count().to_string().as_str())
    );
    assert_eq!(json_field(&body, "requests_ingest").as_deref(), Some("2"));
    assert!(
        json_field(&body, "pairs_classified")
            .unwrap()
            .parse::<u64>()
            .unwrap()
            > 0
    );

    running.shutdown().unwrap();
}

#[test]
fn restart_from_autosaved_snapshots_is_warm() {
    let srcs = sources();
    let dir = std::env::temp_dir().join(format!("probdedup-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: ingest everything, autosave via graceful shutdown.
    let (running, client) = boot(config().snapshot_dir(&dir));
    for src in &srcs {
        let (status, _) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, first_partition) = client.get("/sessions/census/partition").unwrap();
    let summary = running.shutdown().unwrap();
    assert_eq!(summary.sessions_saved, 1);
    assert!(dir.join("census.snap").is_file());

    // Second life: boot over the same directory — the session must come
    // back by name with the identical partition.
    let (running, client) = boot(config().snapshot_dir(&dir));
    let (status, body) = client.get("/sessions").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "name").as_deref(), Some("census"));
    assert_eq!(json_field(&body, "restored").as_deref(), Some("true"));

    let (status, body) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 200);
    assert_eq!(clusters_of(&body), clusters_of(&first_partition));

    // Re-running the full corpus through the warm session renders zero
    // keys: everything replays from the restored pools and caches.
    let mut combined = XRelation::new(srcs[0].schema().clone());
    for src in &srcs {
        for t in src.xtuples() {
            combined.push(t.clone());
        }
    }
    let (status, body) = client
        .post(
            "/sessions/census/dedup",
            write_xrelation(&combined).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200, "warm dedup: {body}");
    assert_eq!(clusters_of(&body), clusters_of(&first_partition));

    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_field(&body, "key_renders_since_open").as_deref(),
        Some("0"),
        "warm restart must not re-render keys: {body}"
    );

    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_fails_boot_loudly() {
    let dir = std::env::temp_dir().join(format!("probdedup-serve-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("bad.snap"), b"PXDSNAP\0garbage").unwrap();
    let err = Server::bind(config().snapshot_dir(&dir)).err();
    assert!(
        matches!(err, Some(probdedup_serve::ServeError::Snapshot(_, _))),
        "boot over a corrupt snapshot must fail, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interval_autosave_persists_without_shutdown() {
    let srcs = sources();
    let dir = std::env::temp_dir().join(format!("probdedup-serve-autosave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (running, client) = boot(
        config()
            .snapshot_dir(&dir)
            .autosave_interval(Duration::from_millis(150)),
    );
    client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[0]).as_bytes(),
        )
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !dir.join("census.snap").is_file() {
        assert!(
            std::time::Instant::now() < deadline,
            "interval autosave never wrote census.snap"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_, body) = client.get("/stats").unwrap();
    assert!(
        json_field(&body, "autosaves")
            .unwrap()
            .parse::<u64>()
            .unwrap()
            >= 1,
        "stats must count autosaves: {body}"
    );
    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: N reader threads hammer `partition` while one `ingest`
/// runs. Every observed partition must be exactly the pre-ingest or the
/// post-ingest one (the session RwLock forbids torn reads), and the
/// final merged result equals a serial one-shot run.
#[test]
fn concurrent_readers_observe_pre_or_post_ingest_only() {
    let srcs = sources();
    let (running, client) = boot(config());

    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[0]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, pre_body) = client.get("/sessions/census/partition").unwrap();
    let pre = clusters_of(&pre_body);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let addr = running.addr();
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let mut seen = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, body) = client.get("/sessions/census/partition").unwrap();
                    assert_eq!(status, 200);
                    seen.push(clusters_of(&body));
                }
                seen
            })
        })
        .collect();

    // Let the readers spin up, then ingest the second source.
    std::thread::sleep(Duration::from_millis(30));
    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[1]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, post_body) = client.get("/sessions/census/partition").unwrap();
    let post = clusters_of(&post_body);
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut observations = 0usize;
    for r in readers {
        for seen in r.join().unwrap() {
            assert!(
                seen == pre || seen == post,
                "torn partition observed:\n  seen {seen}\n  pre  {pre}\n  post {post}"
            );
            observations += 1;
        }
    }
    assert!(observations > 0, "readers never observed a partition");

    // Split-invariance through the front door: the merged result equals
    // a serial one-shot run over both sources.
    let expected = ServeConfig::default_pipeline(4)
        .run(&srcs.iter().collect::<Vec<_>>())
        .unwrap();
    assert_eq!(post, clusters_json(&expected.clusters));

    running.shutdown().unwrap();
}

/// Satellite: the decision-memo ceiling holds through the front door —
/// evictions are reported in `/stats` and the partition is unaffected.
#[test]
fn bounded_memo_reports_evictions_in_stats() {
    let srcs = sources();
    // Unbounded ground truth.
    let (unbounded, client) = boot(config());
    for src in &srcs {
        client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
    }
    let (_, truth) = client.get("/sessions/census/partition").unwrap();
    let truth = clusters_of(&truth);
    unbounded.shutdown().unwrap();

    // Same corpus through a memo capped far below the decided-pair count.
    let (running, client) = boot(ServeConfig::new("127.0.0.1:0", capped_pipeline()));
    for src in &srcs {
        let (status, body) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200, "{body}");
    }
    let (_, body) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(
        clusters_of(&body),
        truth,
        "bounded memo changed the partition"
    );
    let (_, stats) = client.get("/stats").unwrap();
    let evictions: u64 = json_field(&stats, "memo_evictions_since_open")
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        evictions > 0,
        "capacity 8 over this corpus must evict: {stats}"
    );
    running.shutdown().unwrap();
}

/// Flat copy of every file in `from` into `to` (the test's stand-in for
/// what a `kill -9` leaves on disk: the durable bytes at this instant).
fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Tentpole: a crash after an acknowledged ingest loses nothing. The
/// second batch lives only in the journal (the snapshot predates it);
/// a daemon booted over a copy of the durable state taken *while the
/// first daemon still runs* — exactly a `kill -9` image — must serve the
/// identical partition, with the replay visible in `/stats`.
#[test]
fn wal_recovery_equals_the_pre_crash_partition() {
    let srcs = sources();
    let base = std::env::temp_dir().join(format!("probdedup-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let snap_a = base.join("a-snap");
    let wal_a = base.join("a-wal");

    // First life: snapshot after the first ingest (compacting the
    // journal), then a second ingest that exists ONLY in the journal.
    let (running, client) = boot(config().snapshot_dir(&snap_a).wal_dir(&wal_a));
    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[0]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.post("/sessions/census/snapshot", b"").unwrap();
    assert_eq!(status, 200);
    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[1]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, body) = client.get("/sessions/census/partition").unwrap();
    let expected = clusters_of(&body);

    let snap_b = base.join("b-snap");
    let wal_b = base.join("b-wal");
    copy_dir(&snap_a, &snap_b);
    copy_dir(&wal_a, &wal_b);

    // Second life over the crash image.
    let (running2, client2) = boot(config().snapshot_dir(&snap_b).wal_dir(&wal_b));
    let (status, body) = client2.get("/sessions").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "restored").as_deref(), Some("true"));
    let (status, body) = client2.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        clusters_of(&body),
        expected,
        "recovery lost a committed ingest"
    );
    let (_, stats) = client2.get("/stats").unwrap();
    let replayed: u64 = json_field(&stats, "wal_replayed_records")
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        replayed > 0,
        "the un-snapshotted batch must come back from the journal: {stats}"
    );
    assert_eq!(
        json_field(&stats, "journal_replayed_records").as_deref(),
        Some(replayed.to_string().as_str()),
        "the ops alias must track wal_replayed_records"
    );

    running2.shutdown().unwrap();
    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&base);
}

/// Tentpole: past `--max-inflight` the daemon sheds with 503 instead of
/// queueing, the bound is never exceeded (`inflight_peak`), and the ops
/// surface stays reachable throughout.
#[test]
fn overload_sheds_with_503_and_bounded_inflight() {
    let srcs = sources();
    let (running, client) = boot(config().max_inflight(1).debug_endpoints(true));
    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[0]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);

    // One slow request occupies the only slot...
    let addr = running.addr();
    let sleeper = std::thread::spawn(move || {
        let client = Client::new(addr);
        client.get("/sessions/census/debug-sleep?ms=2000").unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));

    // ...so a concurrent session request is shed, while /health and
    // /stats (exempt from the gate) keep answering.
    let (status, body) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(
        status, 503,
        "the gate must shed past --max-inflight 1: {body}"
    );
    let (status, _) = client.get("/health").unwrap();
    assert_eq!(status, 200, "/health must survive overload");
    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200, "/stats must survive overload");
    assert!(
        json_field(&stats, "requests_shed")
            .unwrap()
            .parse::<u64>()
            .unwrap()
            >= 1,
        "shedding must be counted: {stats}"
    );
    assert_eq!(
        json_field(&stats, "inflight_peak").as_deref(),
        Some("1"),
        "the in-flight bound was exceeded: {stats}"
    );

    let (status, _) = sleeper.join().unwrap();
    assert_eq!(status, 200);
    // Slot released: the same request now passes.
    let (status, _) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 200);
    running.shutdown().unwrap();
}

/// Tentpole: a handler panic becomes a 500, the process keeps serving,
/// only the touched session is quarantined (503 + `/health` degraded),
/// and a restart replays the quarantined session back from its journal.
#[test]
fn panic_is_contained_and_the_session_quarantined() {
    let srcs = sources();
    let base = std::env::temp_dir().join(format!("probdedup-serve-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let wal = base.join("wal");

    let (running, client) = boot(config().wal_dir(&wal).debug_endpoints(true));
    for (name, src) in [("census", &srcs[0]), ("other", &srcs[1])] {
        let (status, _) = client
            .post(
                &format!("/sessions/{name}/ingest"),
                write_xrelation(src).as_bytes(),
            )
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, body) = client.get("/sessions/census/partition").unwrap();
    let expected = clusters_of(&body);

    let (status, body) = client.post("/sessions/census/debug-panic", b"").unwrap();
    assert_eq!(
        status, 500,
        "a panic must become a 500, not a dead daemon: {body}"
    );

    let (status, _) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 503, "the poisoned session must quarantine");
    let (status, _) = client.get("/sessions/other/partition").unwrap();
    assert_eq!(status, 200, "the neighbor session must be unaffected");
    let (status, health) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&health, "status").as_deref(), Some("degraded"));
    let (_, stats) = client.get("/stats").unwrap();
    assert_eq!(json_field(&stats, "panics_caught").as_deref(), Some("1"));
    assert_eq!(
        json_field(&stats, "sessions_degraded").as_deref(),
        Some("1")
    );
    running.shutdown().unwrap();

    // Restart: the quarantined session comes back from its journal (the
    // ingest was fsynced before the mutation the panic interrupted).
    let (running, client) = boot(config().wal_dir(&wal).debug_endpoints(true));
    let (status, body) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(
        status, 200,
        "restart must recover the degraded session: {body}"
    );
    assert_eq!(clusters_of(&body), expected);
    let (status, health) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&health, "status").as_deref(), Some("ok"));
    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&base);
}

/// Entity resolution through the front door: the endpoint equals the
/// library resolution for every strategy, rejects unknown strategies,
/// and a restart over the autosaved snapshot replays the memoized
/// partition byte-for-byte (snapshot section 9 is load-bearing here).
#[test]
fn entities_endpoint_matches_library_and_survives_restart() {
    use probdedup_entity::{ClusterStrategy, SessionEntities};

    let srcs = sources();
    let dir = std::env::temp_dir().join(format!("probdedup-serve-entities-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (running, client) = boot(config().snapshot_dir(&dir));
    for src in &srcs {
        let (status, _) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200);
    }

    // The library ground truth over the same pipeline and corpus.
    let mut session = ServeConfig::default_pipeline(4).session();
    for src in &srcs {
        session.ingest(src).unwrap();
    }

    let mut first_bodies = Vec::new();
    for strategy in ClusterStrategy::ALL {
        let (status, body) = client
            .get(&format!(
                "/sessions/census/entities?strategy={}",
                strategy.name()
            ))
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let expected = session.resolve_entities(strategy);
        assert_eq!(clusters_of(&body), clusters_json(&expected.clusters));
        assert_eq!(
            json_field(&body, "entities").as_deref(),
            Some(expected.stats.entities.to_string().as_str())
        );
        assert_eq!(
            json_field(&body, "repair_moves").as_deref(),
            Some(expected.stats.repair_moves.to_string().as_str())
        );
        first_bodies.push(body);
    }

    // No ?strategy= defaults to components; unknown strategies are a 400.
    let (status, body) = client.get("/sessions/census/entities").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_field(&body, "strategy").as_deref(),
        Some("components"),
        "{body}"
    );
    assert_eq!(body, first_bodies[0]);
    let (status, _) = client
        .get("/sessions/census/entities?strategy=kmeans")
        .unwrap();
    assert_eq!(status, 400);
    let (_, stats) = client.get("/stats").unwrap();
    assert_eq!(
        json_field(&stats, "requests_entities").as_deref(),
        Some("5")
    );

    // Second life over the autosaved snapshot: every strategy's response
    // must come back byte-identical from the restored entity cache.
    running.shutdown().unwrap();
    let (running, client) = boot(config().snapshot_dir(&dir));
    for (strategy, first) in ClusterStrategy::ALL.iter().zip(&first_bodies) {
        let (status, body) = client
            .get(&format!(
                "/sessions/census/entities?strategy={}",
                strategy.name()
            ))
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            &body, first,
            "restart changed the {strategy} entity response"
        );
    }
    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a body shorter than its declared `Content-Length` is a
/// fast 400, not a hang and not a half-parsed ingest.
#[test]
fn short_body_is_rejected_not_hung() {
    use std::io::{Read as _, Write as _};
    let (running, client) = boot(config());
    let mut stream = std::net::TcpStream::connect(running.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"POST /sessions/census/ingest HTTP/1.1\r\nHost: x\r\n\
              Content-Length: 100\r\nConnection: close\r\n\r\nshort",
        )
        .unwrap();
    // Half-close: the declared body can never complete.
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "want 400 for a short body, got: {response}"
    );
    let (status, _) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    running.shutdown().unwrap();
}

/// Satellite: a silent client is disconnected by the per-connection
/// deadline instead of pinning a worker thread forever.
#[test]
fn stalled_connections_are_disconnected_by_the_deadline() {
    let (running, client) = boot(config().request_timeout(Duration::from_millis(250)));
    let start = std::time::Instant::now();
    let mut stream = std::net::TcpStream::connect(running.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send nothing: the server's read deadline must close the connection.
    let mut buf = [0u8; 16];
    let n = std::io::Read::read(&mut stream, &mut buf).unwrap();
    assert_eq!(n, 0, "server should close a silent connection");
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "the deadline never fired"
    );
    let (status, _) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    running.shutdown().unwrap();
}

/// `default_pipeline(4)` with the decision memo capped at 8 entries.
fn capped_pipeline() -> probdedup_core::pipeline::DedupPipeline {
    // Rebuild the default pipeline shape with the memo knob set; the
    // serve crate has no "rebuild with capacity" shortcut on purpose —
    // the knob belongs to the core builder.
    use probdedup_core::pipeline::{DedupPipeline, ReductionStrategy};
    use probdedup_core::prepare::Preparation;
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::SimilarityBasedModel;
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_reduction::{KeyPart, KeySpec};
    use probdedup_textsim::JaroWinkler;

    let schema = Schema::new((0..4).map(|i| format!("attr{i}")));
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::normalized(vec![3.0, 1.0, 1.0, 1.0]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.72, 0.82).unwrap(),
        )))
        .reduction(ReductionStrategy::SortingAlternatives {
            spec: KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]),
            window: 6,
        })
        .threads(4)
        .cache_similarities(true)
        .decision_memo_capacity(Some(8))
        .build()
}
