//! End-to-end tests of the serving front door: an in-process daemon on
//! an ephemeral loopback port, driven through the real HTTP client.
//!
//! The contracts under test:
//! * endpoint responses equal what the library (`DedupSession`) computes
//!   over the same corpus;
//! * a daemon restarted over its autosaved snapshots reports the
//!   identical partition with **zero** key renders since open (the warm
//!   restart certificate);
//! * concurrent readers during an ingest observe either the pre- or the
//!   post-ingest partition, never a torn one, and the final merged
//!   result equals a serial one-shot run.

use std::sync::Arc;
use std::time::Duration;

use probdedup_datagen::{generate, DatasetConfig, Dictionaries};
use probdedup_model::format::write_xrelation;
use probdedup_model::relation::XRelation;
use probdedup_serve::client::{json_field, Client};
use probdedup_serve::server::{RunningServer, ServeConfig, Server};

/// Two small sources with overlapping entities (people schema, arity 4).
fn sources() -> Vec<XRelation> {
    let cfg = DatasetConfig {
        entities: 40,
        sources: 2,
        seed: 20100301,
        ..DatasetConfig::default()
    };
    generate(&Dictionaries::people(), &cfg).relations
}

fn boot(config: ServeConfig) -> (RunningServer, Client) {
    let running = Server::bind(config).expect("bind").spawn();
    let client = Client::new(running.addr());
    (running, client)
}

fn config() -> ServeConfig {
    ServeConfig::new("127.0.0.1:0", ServeConfig::default_pipeline(4))
}

/// The `"clusters": [...]` token of a partition/dedup response body.
fn clusters_of(body: &str) -> String {
    let at = body.find("\"clusters\":").expect("clusters field");
    let start = body[at..].find('[').unwrap() + at;
    let mut depth = 0usize;
    for (i, c) in body[start..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return body[start..=start + i].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unterminated clusters array in {body}");
}

/// Render library clusters in the daemon's JSON shape.
fn clusters_json(clusters: &[Vec<usize>]) -> String {
    let inner: Vec<String> = clusters
        .iter()
        .map(|c| {
            let rows: Vec<String> = c.iter().map(usize::to_string).collect();
            format!("[{}]", rows.join(", "))
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

#[test]
fn health_sessions_and_unknown_routes() {
    let (running, client) = boot(config());

    let (status, body) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "status").as_deref(), Some("ok"));
    assert_eq!(json_field(&body, "sessions").as_deref(), Some("0"));

    let (status, _) = client.get("/no-such").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.post("/health", b"").unwrap();
    assert_eq!(status, 405);
    let (status, _) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 404, "read endpoints never create sessions");
    let (status, body) = client.get("/sessions/..%2Fevil/partition").unwrap();
    assert_eq!(status, 400, "bad session name must be rejected: {body}");
    let (status, _) = client
        .post("/sessions/census/ingest", b"not a relation")
        .unwrap();
    assert_eq!(status, 400);

    let summary = running.shutdown().unwrap();
    assert_eq!(summary.requests, 6);
}

#[test]
fn endpoints_match_the_library_session() {
    let srcs = sources();
    let (running, client) = boot(config());

    // Drive the daemon: ingest both sources into one named session.
    for (i, src) in srcs.iter().enumerate() {
        let (status, body) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200, "ingest {i}: {body}");
        assert_eq!(
            json_field(&body, "rows_added").as_deref(),
            Some(src.len().to_string().as_str())
        );
    }

    // The library ground truth over the same pipeline and corpus.
    let mut session = ServeConfig::default_pipeline(4).session();
    for src in &srcs {
        session.ingest(src).unwrap();
    }
    let expected = session.result();

    let (status, body) = client.get("/sessions/census/partition?full=1").unwrap();
    assert_eq!(status, 200);
    assert_eq!(clusters_of(&body), clusters_json(&expected.clusters));
    assert_eq!(
        json_field(&body, "candidates").as_deref(),
        Some(expected.candidates.to_string().as_str())
    );
    assert_eq!(
        json_field(&body, "matches").as_deref(),
        Some(expected.matches().count().to_string().as_str())
    );

    // Query endpoint ≡ classify_pair, including a non-candidate pair
    // classified on the spot through the read path.
    let mut checked = 0;
    for d in expected.decisions.iter().take(5) {
        let (status, body) = client
            .get(&format!(
                "/sessions/census/query?i={}&j={}",
                d.pair.0, d.pair.1
            ))
            .unwrap();
        assert_eq!(status, 200);
        let class = json_field(&body, "class").unwrap();
        let lib = session.classify_pair(d.pair.0, d.pair.1).unwrap();
        assert_eq!(lib.pair, d.pair);
        let lib_class = format!("{}", lib.class);
        let want = match lib_class.as_str() {
            "m" => "match",
            "p" => "possible",
            _ => "non-match",
        };
        assert_eq!(class, want, "pair {:?}", d.pair);
        checked += 1;
    }
    assert!(checked > 0, "dataset produced no decisions to check");

    let (status, body) = client.get("/sessions/census/query?i=0&j=0").unwrap();
    assert_eq!(status, 400, "i == j is not a pair: {body}");
    let (status, _) = client.get("/sessions/census/query?i=0&j=999999").unwrap();
    assert_eq!(status, 400);

    // /stats sees the session and the classified pairs.
    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_field(&body, "decided_pairs").as_deref(),
        Some(session.decided_count().to_string().as_str())
    );
    assert_eq!(json_field(&body, "requests_ingest").as_deref(), Some("2"));
    assert!(
        json_field(&body, "pairs_classified")
            .unwrap()
            .parse::<u64>()
            .unwrap()
            > 0
    );

    running.shutdown().unwrap();
}

#[test]
fn restart_from_autosaved_snapshots_is_warm() {
    let srcs = sources();
    let dir = std::env::temp_dir().join(format!("probdedup-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: ingest everything, autosave via graceful shutdown.
    let (running, client) = boot(config().snapshot_dir(&dir));
    for src in &srcs {
        let (status, _) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, first_partition) = client.get("/sessions/census/partition").unwrap();
    let summary = running.shutdown().unwrap();
    assert_eq!(summary.sessions_saved, 1);
    assert!(dir.join("census.snap").is_file());

    // Second life: boot over the same directory — the session must come
    // back by name with the identical partition.
    let (running, client) = boot(config().snapshot_dir(&dir));
    let (status, body) = client.get("/sessions").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "name").as_deref(), Some("census"));
    assert_eq!(json_field(&body, "restored").as_deref(), Some("true"));

    let (status, body) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(status, 200);
    assert_eq!(clusters_of(&body), clusters_of(&first_partition));

    // Re-running the full corpus through the warm session renders zero
    // keys: everything replays from the restored pools and caches.
    let mut combined = XRelation::new(srcs[0].schema().clone());
    for src in &srcs {
        for t in src.xtuples() {
            combined.push(t.clone());
        }
    }
    let (status, body) = client
        .post(
            "/sessions/census/dedup",
            write_xrelation(&combined).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200, "warm dedup: {body}");
    assert_eq!(clusters_of(&body), clusters_of(&first_partition));

    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_field(&body, "key_renders_since_open").as_deref(),
        Some("0"),
        "warm restart must not re-render keys: {body}"
    );

    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_fails_boot_loudly() {
    let dir = std::env::temp_dir().join(format!("probdedup-serve-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("bad.snap"), b"PXDSNAP\0garbage").unwrap();
    let err = Server::bind(config().snapshot_dir(&dir)).err();
    assert!(
        matches!(err, Some(probdedup_serve::ServeError::Snapshot(_, _))),
        "boot over a corrupt snapshot must fail, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interval_autosave_persists_without_shutdown() {
    let srcs = sources();
    let dir = std::env::temp_dir().join(format!("probdedup-serve-autosave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (running, client) = boot(
        config()
            .snapshot_dir(&dir)
            .autosave_interval(Duration::from_millis(150)),
    );
    client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[0]).as_bytes(),
        )
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !dir.join("census.snap").is_file() {
        assert!(
            std::time::Instant::now() < deadline,
            "interval autosave never wrote census.snap"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_, body) = client.get("/stats").unwrap();
    assert!(
        json_field(&body, "autosaves")
            .unwrap()
            .parse::<u64>()
            .unwrap()
            >= 1,
        "stats must count autosaves: {body}"
    );
    running.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: N reader threads hammer `partition` while one `ingest`
/// runs. Every observed partition must be exactly the pre-ingest or the
/// post-ingest one (the session RwLock forbids torn reads), and the
/// final merged result equals a serial one-shot run.
#[test]
fn concurrent_readers_observe_pre_or_post_ingest_only() {
    let srcs = sources();
    let (running, client) = boot(config());

    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[0]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, pre_body) = client.get("/sessions/census/partition").unwrap();
    let pre = clusters_of(&pre_body);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let addr = running.addr();
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let mut seen = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, body) = client.get("/sessions/census/partition").unwrap();
                    assert_eq!(status, 200);
                    seen.push(clusters_of(&body));
                }
                seen
            })
        })
        .collect();

    // Let the readers spin up, then ingest the second source.
    std::thread::sleep(Duration::from_millis(30));
    let (status, _) = client
        .post(
            "/sessions/census/ingest",
            write_xrelation(&srcs[1]).as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, post_body) = client.get("/sessions/census/partition").unwrap();
    let post = clusters_of(&post_body);
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut observations = 0usize;
    for r in readers {
        for seen in r.join().unwrap() {
            assert!(
                seen == pre || seen == post,
                "torn partition observed:\n  seen {seen}\n  pre  {pre}\n  post {post}"
            );
            observations += 1;
        }
    }
    assert!(observations > 0, "readers never observed a partition");

    // Split-invariance through the front door: the merged result equals
    // a serial one-shot run over both sources.
    let expected = ServeConfig::default_pipeline(4)
        .run(&srcs.iter().collect::<Vec<_>>())
        .unwrap();
    assert_eq!(post, clusters_json(&expected.clusters));

    running.shutdown().unwrap();
}

/// Satellite: the decision-memo ceiling holds through the front door —
/// evictions are reported in `/stats` and the partition is unaffected.
#[test]
fn bounded_memo_reports_evictions_in_stats() {
    let srcs = sources();
    // Unbounded ground truth.
    let (unbounded, client) = boot(config());
    for src in &srcs {
        client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
    }
    let (_, truth) = client.get("/sessions/census/partition").unwrap();
    let truth = clusters_of(&truth);
    unbounded.shutdown().unwrap();

    // Same corpus through a memo capped far below the decided-pair count.
    let (running, client) = boot(ServeConfig::new("127.0.0.1:0", capped_pipeline()));
    for src in &srcs {
        let (status, body) = client
            .post("/sessions/census/ingest", write_xrelation(src).as_bytes())
            .unwrap();
        assert_eq!(status, 200, "{body}");
    }
    let (_, body) = client.get("/sessions/census/partition").unwrap();
    assert_eq!(
        clusters_of(&body),
        truth,
        "bounded memo changed the partition"
    );
    let (_, stats) = client.get("/stats").unwrap();
    let evictions: u64 = json_field(&stats, "memo_evictions_since_open")
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        evictions > 0,
        "capacity 8 over this corpus must evict: {stats}"
    );
    running.shutdown().unwrap();
}

/// `default_pipeline(4)` with the decision memo capped at 8 entries.
fn capped_pipeline() -> probdedup_core::pipeline::DedupPipeline {
    // Rebuild the default pipeline shape with the memo knob set; the
    // serve crate has no "rebuild with capacity" shortcut on purpose —
    // the knob belongs to the core builder.
    use probdedup_core::pipeline::{DedupPipeline, ReductionStrategy};
    use probdedup_core::prepare::Preparation;
    use probdedup_decision::combine::WeightedSum;
    use probdedup_decision::derive_sim::ExpectedSimilarity;
    use probdedup_decision::threshold::Thresholds;
    use probdedup_decision::xmodel::SimilarityBasedModel;
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_reduction::{KeyPart, KeySpec};
    use probdedup_textsim::JaroWinkler;

    let schema = Schema::new((0..4).map(|i| format!("attr{i}")));
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::normalized(vec![3.0, 1.0, 1.0, 1.0]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.72, 0.82).unwrap(),
        )))
        .reduction(ReductionStrategy::SortingAlternatives {
            spec: KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]),
            window: 6,
        })
        .threads(4)
        .cache_similarities(true)
        .decision_memo_capacity(Some(8))
        .build()
}
