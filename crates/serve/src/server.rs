//! The daemon: named warm sessions behind a thread-per-connection
//! HTTP/1.1 accept loop, with snapshot autoload/autosave and request
//! accounting. See the crate docs for the concurrency model and the
//! snapshot lifecycle; the endpoint table lives in `ARCHITECTURE.md`.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use probdedup_core::pipeline::{DedupPipeline, DedupResult, MatchingStats, ReductionStrategy};
use probdedup_core::prepare::Preparation;
use probdedup_core::session::DedupSession;
use probdedup_core::wal::SessionJournal;
use probdedup_decision::combine::WeightedSum;
use probdedup_decision::derive_sim::ExpectedSimilarity;
use probdedup_decision::threshold::{MatchClass, Thresholds};
use probdedup_decision::xmodel::SimilarityBasedModel;
use probdedup_entity::{ClusterStrategy, SessionEntities};
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::format::parse_xrelation;
use probdedup_model::schema::Schema;
use probdedup_model::snapshot::SnapshotError;
use probdedup_reduction::{KeyPart, KeySpec};
use probdedup_textsim::JaroWinkler;

use crate::http::{json_string, read_request, write_response, HttpError, Request, Response};

/// How a server failed to start or persist.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind(String, std::io::Error),
    /// The snapshot directory could not be created or scanned.
    SnapshotDir(PathBuf, std::io::Error),
    /// A snapshot in the autoload directory is corrupt or was written by
    /// a different pipeline configuration — boot fails loudly rather
    /// than silently dropping persisted state.
    Snapshot(PathBuf, SnapshotError),
    /// The write-ahead-journal directory could not be created or is not
    /// writable (probed at boot, before any ingest can be accepted).
    WalDir(PathBuf, std::io::Error),
    /// A journal failed to open or replay at boot — recovery refuses to
    /// guess rather than serve a corpus with holes.
    Wal(PathBuf, SnapshotError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bind(addr, e) => write!(f, "cannot bind {addr}: {e}"),
            Self::SnapshotDir(p, e) => write!(f, "snapshot dir {}: {e}", p.display()),
            Self::Snapshot(p, e) => write!(f, "snapshot {}: {e}", p.display()),
            Self::WalDir(p, e) => write!(f, "wal dir {}: {e}", p.display()),
            Self::Wal(p, e) => write!(f, "journal {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration of one daemon instance.
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:7878`; port 0 for an ephemeral port).
    pub addr: String,
    /// The pipeline every session is built from (also validates the
    /// arity of posted relations).
    pub pipeline: DedupPipeline,
    /// Directory for `NAME.snap` files: autoloaded on boot, autosaved on
    /// shutdown/interval and by `POST .../snapshot`. `None` disables
    /// persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Autosave every this often (requires `snapshot_dir`).
    pub autosave_interval: Option<Duration>,
    /// Directory for `NAME.wal` write-ahead journals: every accepted
    /// ingest/dedup is fsynced here *before* it mutates the session, and
    /// boot replays `snapshot + journal tail` so a `kill -9` loses
    /// nothing. `None` disables journaling (PR 7 behavior).
    pub wal_dir: Option<PathBuf>,
    /// Bound on concurrently executing session requests; past it the
    /// daemon sheds with `503 Retry-After` instead of queueing
    /// unboundedly. `None` leaves admission unbounded.
    pub max_inflight: Option<u64>,
    /// Per-connection read **and** write deadline: a client that stalls
    /// mid-request or stops draining its response is disconnected rather
    /// than holding a worker thread forever.
    pub request_timeout: Duration,
    /// Enable `/sessions/{name}/debug-*` chaos endpoints (panic and sleep
    /// injection). Test-only: never exposed through the CLI.
    pub debug_endpoints: bool,
}

/// Default per-connection read/write deadline.
const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(60);

impl ServeConfig {
    /// A daemon on `addr` over `pipeline`, without persistence.
    pub fn new(addr: impl Into<String>, pipeline: DedupPipeline) -> Self {
        Self {
            addr: addr.into(),
            pipeline,
            snapshot_dir: None,
            autosave_interval: None,
            wal_dir: None,
            max_inflight: None,
            request_timeout: DEFAULT_REQUEST_TIMEOUT,
            debug_endpoints: false,
        }
    }

    /// Enable snapshot autoload/autosave under `dir`.
    pub fn snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Autosave all sessions every `interval`.
    pub fn autosave_interval(mut self, interval: Duration) -> Self {
        self.autosave_interval = Some(interval);
        self
    }

    /// Enable write-ahead journaling under `dir`.
    pub fn wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Shed session requests beyond `bound` concurrently in flight.
    pub fn max_inflight(mut self, bound: u64) -> Self {
        self.max_inflight = Some(bound);
        self
    }

    /// Set the per-connection read/write deadline.
    pub fn request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Enable the chaos-injection debug endpoints (tests only).
    pub fn debug_endpoints(mut self, enabled: bool) -> Self {
        self.debug_endpoints = enabled;
        self
    }

    /// The CLI-equivalent default pipeline over `arity`-attribute
    /// relations: standard preparation, Jaro-Winkler comparators,
    /// similarity-based decision model (λ 0.72, μ 0.82, first attribute
    /// weighted 3×), sorted-neighborhood reduction over a prefix key,
    /// warm similarity caches on. Attribute *names* never matter to the
    /// pipeline — only arity — so sessions accept any text relation of
    /// this width.
    pub fn default_pipeline(arity: usize) -> DedupPipeline {
        let arity = arity.max(1);
        let schema = Schema::new((0..arity).map(|i| format!("attr{i}")));
        let mut key_parts = vec![KeyPart::prefix(0, 3)];
        if arity >= 2 {
            key_parts.push(KeyPart::prefix(arity.saturating_sub(2).max(1), 2));
        }
        let weights: Vec<f64> = std::iter::once(3.0)
            .chain(std::iter::repeat_n(1.0, arity - 1))
            .collect();
        DedupPipeline::builder()
            .preparation(Preparation::standard_all(arity))
            .comparators(AttributeComparators::uniform(&schema, JaroWinkler::new()))
            .model(Arc::new(SimilarityBasedModel::new(
                Arc::new(WeightedSum::normalized(weights).expect("weights are positive")),
                Arc::new(ExpectedSimilarity),
                Thresholds::new(0.72, 0.82).expect("static thresholds are ordered"),
            )))
            .reduction(ReductionStrategy::SortingAlternatives {
                spec: KeySpec::new(key_parts),
                window: 6,
            })
            .threads(4)
            .cache_similarities(true)
            .build()
    }
}

/// What one finished server run did (returned by [`Server::run`] /
/// [`RunningServer::shutdown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests handled over the server's lifetime.
    pub requests: u64,
    /// Sessions persisted by the shutdown autosave.
    pub sessions_saved: usize,
}

/// Counters the session carried when it was opened/created — `/stats`
/// reports deltas against these, so a freshly restored session showing
/// `key_renders_since_open: 0` after a warm replay is the daemon-level
/// reuse certificate.
struct Baseline {
    stats: MatchingStats,
    key_renders: u64,
}

/// One named resident session.
struct SessionEntry {
    session: RwLock<DedupSession>,
    /// The session's write-ahead journal (when the daemon runs with
    /// `--wal-dir`). Lock order: session lock first, journal second.
    journal: Option<Mutex<SessionJournal>>,
    /// Quarantined after a panic poisoned its lock: the in-memory state
    /// may be inconsistent, so the session answers 503 until a restart
    /// recovers it from `snapshot + journal` (the durable state is
    /// untouched — journaling happens before mutation).
    degraded: AtomicBool,
    opened: Instant,
    /// Restored from a snapshot/journal at boot (vs. created by a request).
    restored: bool,
    base: Baseline,
}

/// The quarantine answer for a degraded session.
fn degraded_response() -> Response {
    Response::error(
        503,
        "session degraded by an earlier panic; restart the daemon to recover it from snapshot + journal",
    )
}

impl SessionEntry {
    fn new(session: DedupSession, restored: bool, journal: Option<SessionJournal>) -> Self {
        let base = Baseline {
            stats: session.stats(),
            key_renders: session.key_render_count(),
        };
        Self {
            session: RwLock::new(session),
            journal: journal.map(Mutex::new),
            degraded: AtomicBool::new(false),
            opened: Instant::now(),
            restored,
            base,
        }
    }

    /// Mark the session degraded (idempotent; bumps the gauge once).
    fn mark_degraded(&self, state: &ServerState) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            state.sessions_degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Read access honoring the quarantine: a poisoned lock (a handler
    /// panicked mid-mutation) degrades the session *here*, instead of
    /// recovering possibly-inconsistent state and serving it as truth.
    fn read_guard(
        &self,
        state: &ServerState,
    ) -> Result<RwLockReadGuard<'_, DedupSession>, Response> {
        if self.is_degraded() {
            return Err(degraded_response());
        }
        match self.session.read() {
            Ok(g) => Ok(g),
            Err(_) => {
                self.mark_degraded(state);
                Err(degraded_response())
            }
        }
    }

    /// Write access honoring the quarantine (see [`read_guard`](Self::read_guard)).
    fn write_guard(
        &self,
        state: &ServerState,
    ) -> Result<RwLockWriteGuard<'_, DedupSession>, Response> {
        if self.is_degraded() {
            return Err(degraded_response());
        }
        match self.session.write() {
            Ok(g) => Ok(g),
            Err(_) => {
                self.mark_degraded(state);
                Err(degraded_response())
            }
        }
    }

    /// The journal guard; a poisoned journal mutex (a panic mid-append)
    /// also quarantines — the file tail may be torn, and recovery's
    /// truncation is the only safe repair.
    fn journal_guard(
        &self,
        state: &ServerState,
    ) -> Result<Option<MutexGuard<'_, SessionJournal>>, Response> {
        match &self.journal {
            None => Ok(None),
            Some(m) => match m.lock() {
                Ok(g) => Ok(Some(g)),
                Err(_) => {
                    self.mark_degraded(state);
                    Err(degraded_response())
                }
            },
        }
    }
}

/// Per-endpoint request counters (reported by `/stats`).
#[derive(Default)]
struct EndpointCounters {
    dedup: AtomicU64,
    ingest: AtomicU64,
    query: AtomicU64,
    partition: AtomicU64,
    snapshot: AtomicU64,
    entities: AtomicU64,
}

struct ServerState {
    pipeline: DedupPipeline,
    snapshot_dir: Option<PathBuf>,
    wal_dir: Option<PathBuf>,
    sessions: RwLock<BTreeMap<String, Arc<SessionEntry>>>,
    started: Instant,
    shutting_down: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    pairs_classified: AtomicU64,
    autosaves: AtomicU64,
    endpoints: EndpointCounters,
    /// Admission control: session requests currently executing, the bound
    /// past which new ones are shed, and the high-water mark (the proof
    /// the bound was never exceeded).
    max_inflight: Option<u64>,
    inflight: AtomicU64,
    inflight_peak: AtomicU64,
    requests_shed: AtomicU64,
    /// Handler panics caught at the connection boundary (the process
    /// lives; the affected session is quarantined on next touch).
    panics_caught: AtomicU64,
    sessions_degraded: AtomicU64,
    /// Journal records appended / replayed since open.
    wal_appends: AtomicU64,
    wal_replayed: AtomicU64,
    request_timeout: Duration,
    debug_endpoints: bool,
}

/// RAII slot in the in-flight gate (released even when the handler
/// panics — the guard lives outside the `catch_unwind`).
struct InflightSlot<'a>(&'a ServerState);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ServerState {
    /// Try to enter the in-flight gate; `None` means shed this request.
    fn try_acquire_slot(&self) -> Option<InflightSlot<'_>> {
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        if self.max_inflight.is_some_and(|bound| now > bound) {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.requests_shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.inflight_peak.fetch_max(now, Ordering::SeqCst);
        Some(InflightSlot(self))
    }
}

/// Read-lock tolerating poisoning: a panicking handler thread must not
/// wedge every later request (the session data itself is only mutated
/// under panic-free pure-Rust code paths).
fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn wlock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Session names double as snapshot file stems: URL- and filesystem-safe,
/// no dotfiles / path tricks.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Collect the valid session names of every `*.{ext}` file in `dir`.
fn collect_stems(
    dir: &std::path::Path,
    ext: &str,
    out: &mut std::collections::BTreeSet<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != ext) {
            continue;
        }
        if let Some(name) = path.file_stem().and_then(|s| s.to_str()) {
            if valid_name(name) {
                out.insert(name.to_string());
            }
        }
    }
    Ok(())
}

fn class_name(class: MatchClass) -> &'static str {
    match class {
        MatchClass::Match => "match",
        MatchClass::Possible => "possible",
        MatchClass::NonMatch => "non-match",
    }
}

fn clusters_json(clusters: &[Vec<usize>]) -> String {
    let inner: Vec<String> = clusters
        .iter()
        .map(|c| {
            let rows: Vec<String> = c.iter().map(usize::to_string).collect();
            format!("[{}]", rows.join(", "))
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

impl ServerState {
    fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn snapshot_path(&self, name: &str) -> Option<PathBuf> {
        self.snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.snap")))
    }

    fn wal_path(&self, name: &str) -> Option<PathBuf> {
        self.wal_dir.as_ref().map(|d| d.join(format!("{name}.wal")))
    }

    /// Get or create the named session (creation is what `ingest` and
    /// `dedup` do on first contact; read endpoints 404 instead). With
    /// journaling on, creation opens the session's journal *before* the
    /// entry becomes visible — a session the registry serves always has a
    /// durable append path.
    fn entry_or_create(&self, name: &str) -> Result<Arc<SessionEntry>, Response> {
        if let Some(e) = rlock(&self.sessions).get(name) {
            return Ok(e.clone());
        }
        let mut registry = wlock(&self.sessions);
        if let Some(e) = registry.get(name) {
            return Ok(e.clone());
        }
        let mut session = self.pipeline.session();
        let journal = match self.wal_path(name) {
            None => None,
            Some(path) => match SessionJournal::open_and_replay(&path, &mut session) {
                Ok((journal, replay)) => {
                    self.wal_replayed
                        .fetch_add(replay.replayed, Ordering::Relaxed);
                    Some(journal)
                }
                Err(e) => {
                    return Err(Response::error(
                        500,
                        &format!("cannot open journal {}: {e}", path.display()),
                    ));
                }
            },
        };
        let entry = Arc::new(SessionEntry::new(session, false, journal));
        registry.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    fn entry(&self, name: &str) -> Option<Arc<SessionEntry>> {
        rlock(&self.sessions).get(name).cloned()
    }

    /// Persist every non-empty session to the snapshot directory and
    /// compact its journal. Returns how many were saved; failures are
    /// reported but do not abort the sweep (one bad disk sector must not
    /// lose the rest). Degraded sessions are skipped — their in-memory
    /// state is suspect, and their durable `snapshot + journal` is intact
    /// precisely because nothing overwrites it after the quarantine.
    fn save_all(&self) -> usize {
        let Some(_) = self.snapshot_dir else { return 0 };
        let entries: Vec<(String, Arc<SessionEntry>)> = rlock(&self.sessions)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut saved = 0;
        for (name, entry) in entries {
            let path = self
                .snapshot_path(&name)
                .expect("snapshot_dir checked above");
            // The read guard is held across save *and* compaction: an
            // append cannot interleave (it needs the write lock), so the
            // snapshot provably covers every sequence the compaction
            // truncates.
            let Ok(session) = entry.read_guard(self) else {
                eprintln!(
                    "probdedup-serve: autosave {}: session degraded, keeping last durable state",
                    path.display()
                );
                continue;
            };
            if session.is_empty() {
                continue;
            }
            match session.save(&path) {
                Ok(()) => {
                    saved += 1;
                    match entry.journal_guard(self) {
                        Ok(Some(mut journal)) => {
                            if let Err(e) = journal.compact(session.journal_seq()) {
                                eprintln!(
                                    "probdedup-serve: compact {}: {e}",
                                    journal.path().display()
                                );
                            }
                        }
                        Ok(None) => {}
                        Err(_) => eprintln!(
                            "probdedup-serve: autosave {}: journal poisoned, session quarantined",
                            path.display()
                        ),
                    }
                }
                Err(e) => eprintln!("probdedup-serve: autosave {}: {e}", path.display()),
            }
        }
        saved
    }

    /// Flip into shutdown and unblock the accept loop with a self-connect
    /// (the listener is blocking; without a nudge it would only notice on
    /// the next external connection).
    fn begin_shutdown(&self, addr: SocketAddr) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
    }
}

// ---------------------------------------------------------------------
// Request handlers
// ---------------------------------------------------------------------

fn handle_request(state: &ServerState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => handle_health(state),
        ("GET", "/stats") => handle_stats(state),
        ("GET", "/sessions") => handle_sessions(state),
        ("POST", "/shutdown") => {
            Response::json(200, "{\"status\": \"shutting down\"}\n".to_string())
        }
        (_, "/health" | "/stats" | "/sessions" | "/shutdown") => {
            Response::error(405, "method not allowed")
        }
        _ => handle_session_route(state, req),
    }
}

fn handle_health(state: &ServerState) -> Response {
    let degraded = state.sessions_degraded.load(Ordering::Relaxed);
    Response::json(
        200,
        format!(
            concat!(
                "{{\"status\": \"{}\", \"sessions\": {}, \"sessions_degraded\": {}, ",
                "\"uptime_secs\": {:.3}}}\n"
            ),
            if degraded == 0 { "ok" } else { "degraded" },
            rlock(&state.sessions).len(),
            degraded,
            state.uptime_secs(),
        ),
    )
}

/// `"ok"` / `"degraded"` for a session's health-state field.
fn entry_state(e: &SessionEntry) -> &'static str {
    if e.is_degraded() {
        "degraded"
    } else {
        "ok"
    }
}

fn handle_sessions(state: &ServerState) -> Response {
    let rows: Vec<String> = rlock(&state.sessions)
        .iter()
        .map(|(name, e)| {
            let s = rlock(&e.session);
            format!(
                "{{\"name\": {}, \"rows\": {}, \"sources\": {}, \"restored\": {}, \"state\": \"{}\"}}",
                json_string(name),
                s.rows(),
                s.source_count(),
                e.restored,
                entry_state(e),
            )
        })
        .collect();
    Response::json(200, format!("{{\"sessions\": [{}]}}\n", rows.join(", ")))
}

fn handle_stats(state: &ServerState) -> Response {
    let session_rows: Vec<String> = rlock(&state.sessions)
        .iter()
        .map(|(name, e)| (name.clone(), e.clone()))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|(name, e)| {
            let s = rlock(&e.session);
            let stats = s.stats();
            format!(
                concat!(
                    "{{\"name\": {}, \"rows\": {}, \"sources\": {}, \"candidates\": {}, ",
                    "\"decided_pairs\": {}, \"interned_values\": {}, \"uptime_secs\": {:.3}, ",
                    "\"restored\": {}, \"state\": \"{}\", \"journal_seq\": {}, ",
                    "\"key_renders\": {}, \"key_renders_since_open\": {}, ",
                    "\"cache_hits_since_open\": {}, \"cache_misses_since_open\": {}, ",
                    "\"cache_evictions_since_open\": {}, \"memo_evictions_since_open\": {}}}"
                ),
                json_string(&name),
                s.rows(),
                s.source_count(),
                s.candidate_count(),
                s.decided_count(),
                s.interned_value_count(),
                e.opened.elapsed().as_secs_f64(),
                e.restored,
                entry_state(&e),
                s.journal_seq(),
                s.key_render_count(),
                s.key_render_count() - e.base.key_renders,
                stats.cache_hits - e.base.stats.cache_hits,
                stats.cache_misses - e.base.stats.cache_misses,
                stats.cache_evictions - e.base.stats.cache_evictions,
                stats.memo_evictions - e.base.stats.memo_evictions,
            )
        })
        .collect();
    let wal_replayed = state.wal_replayed.load(Ordering::Relaxed);
    Response::json(
        200,
        format!(
            concat!(
                "{{\"status\": \"ok\", \"uptime_secs\": {:.3}, \"requests\": {}, ",
                "\"errors\": {}, \"pairs_classified\": {}, \"autosaves\": {}, ",
                "\"requests_dedup\": {}, \"requests_ingest\": {}, \"requests_query\": {}, ",
                "\"requests_partition\": {}, \"requests_snapshot\": {}, ",
                "\"requests_entities\": {}, ",
                "\"wal_appends\": {}, \"wal_replayed_records\": {}, ",
                "\"journal_replayed_records\": {}, \"requests_shed\": {}, ",
                "\"panics_caught\": {}, \"sessions_degraded\": {}, \"inflight_peak\": {}, ",
                "\"sessions\": [{}]}}\n"
            ),
            state.uptime_secs(),
            state.requests.load(Ordering::Relaxed),
            state.errors.load(Ordering::Relaxed),
            state.pairs_classified.load(Ordering::Relaxed),
            state.autosaves.load(Ordering::Relaxed),
            state.endpoints.dedup.load(Ordering::Relaxed),
            state.endpoints.ingest.load(Ordering::Relaxed),
            state.endpoints.query.load(Ordering::Relaxed),
            state.endpoints.partition.load(Ordering::Relaxed),
            state.endpoints.snapshot.load(Ordering::Relaxed),
            state.endpoints.entities.load(Ordering::Relaxed),
            state.wal_appends.load(Ordering::Relaxed),
            wal_replayed,
            // Alias of wal_replayed_records (the ops-facing name).
            wal_replayed,
            state.requests_shed.load(Ordering::Relaxed),
            state.panics_caught.load(Ordering::Relaxed),
            state.sessions_degraded.load(Ordering::Relaxed),
            state.inflight_peak.load(Ordering::Relaxed),
            session_rows.join(", "),
        ),
    )
}

/// Routes of the shape `/sessions/{name}/{action}`.
fn handle_session_route(state: &ServerState, req: &Request) -> Response {
    let Some(rest) = req.path.strip_prefix("/sessions/") else {
        return Response::error(404, "no such endpoint");
    };
    let Some((name, action)) = rest.split_once('/') else {
        return Response::error(404, "expected /sessions/{name}/{action}");
    };
    if !valid_name(name) {
        return Response::error(
            400,
            "session names are 1-64 chars of [A-Za-z0-9._-], starting alphanumeric",
        );
    }
    match (req.method.as_str(), action) {
        ("POST", "ingest") => handle_ingest(state, name, &req.body),
        ("POST", "dedup") => handle_dedup(state, name, &req.body),
        ("GET", "query") => handle_query(state, name, req),
        ("GET", "partition") => handle_partition(state, name, req),
        ("GET", "entities") => handle_entities(state, name, req),
        ("POST", "snapshot") => handle_snapshot(state, name),
        ("POST", "debug-panic") if state.debug_endpoints => handle_debug_panic(state, name),
        ("GET", "debug-sleep") if state.debug_endpoints => handle_debug_sleep(req),
        (_, "ingest" | "dedup" | "query" | "partition" | "snapshot" | "entities") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "unknown session action"),
    }
}

/// `POST /sessions/{name}/debug-panic` (chaos injection, test builds of
/// the config only): panic while holding the session's write lock —
/// exactly the failure `catch_unwind` + quarantine must contain.
fn handle_debug_panic(state: &ServerState, name: &str) -> Response {
    let Some(entry) = state.entry(name) else {
        return Response::error(404, "no such session");
    };
    let _guard = entry.write_guard(state);
    panic!("injected panic (debug-panic endpoint)");
}

/// `GET /sessions/{name}/debug-sleep?ms=N` (chaos injection): occupy an
/// in-flight slot for `ms` milliseconds, for deterministic shedding tests.
fn handle_debug_sleep(req: &Request) -> Response {
    let ms: u64 = req
        .query_value("ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
        .min(5_000);
    std::thread::sleep(Duration::from_millis(ms));
    Response::json(200, format!("{{\"slept_ms\": {ms}}}\n"))
}

/// Parse a `.pxr` body and check its arity against the pipeline.
fn parse_body_relation(
    state: &ServerState,
    body: &[u8],
) -> Result<probdedup_model::relation::XRelation, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "body must be UTF-8 .pxr text"))?;
    let rel = parse_xrelation(text).map_err(|e| Response::error(400, &format!("parse: {e}")))?;
    let want = state.pipeline.arity();
    if rel.schema().arity() != want {
        return Err(Response::error(
            409,
            &format!(
                "relation arity {} does not match the serving pipeline arity {want}",
                rel.schema().arity()
            ),
        ));
    }
    Ok(rel)
}

fn handle_ingest(state: &ServerState, name: &str, body: &[u8]) -> Response {
    state.endpoints.ingest.fetch_add(1, Ordering::Relaxed);
    let rel = match parse_body_relation(state, body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let entry = match state.entry_or_create(name) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let mut session = match entry.write_guard(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    // Write-ahead discipline: validate, journal + fsync, then mutate.
    // A journal append failure refuses the batch with memory and disk
    // still in agreement; an accepted batch is durable before this
    // response is even built.
    let step = match entry.journal_guard(state) {
        Err(resp) => return resp,
        Ok(Some(mut journal)) => match journal.ingest(&mut session, &rel) {
            Ok(step) => {
                state.wal_appends.fetch_add(1, Ordering::Relaxed);
                Ok(step)
            }
            Err(SnapshotError::Model(e)) => Err(Response::error(409, &format!("ingest: {e}"))),
            Err(e) => Err(Response::error(500, &format!("journal append: {e}"))),
        },
        Ok(None) => session
            .ingest(&rel)
            .map_err(|e| Response::error(409, &format!("ingest: {e}"))),
    };
    match step {
        Ok(step) => {
            state
                .pairs_classified
                .fetch_add(step.new_decisions.len() as u64, Ordering::Relaxed);
            Response::json(
                200,
                format!(
                    concat!(
                        "{{\"session\": {}, \"rows_added\": {}, \"new_pairs\": {}, ",
                        "\"new_matches\": {}, \"candidates\": {}, \"rows\": {}, ",
                        "\"decided_pairs\": {}}}\n"
                    ),
                    json_string(name),
                    step.rows_added(),
                    step.new_decisions.len(),
                    step.matches().count(),
                    step.candidates,
                    session.rows(),
                    session.decided_count(),
                ),
            )
        }
        Err(resp) => resp,
    }
}

fn result_json(name: &str, result: &DedupResult, full: bool) -> String {
    let decisions = if full {
        let rows: Vec<String> = result
            .decisions
            .iter()
            .map(|d| {
                format!(
                    "{{\"i\": {}, \"j\": {}, \"similarity\": {:.6}, \"class\": \"{}\"}}",
                    d.pair.0,
                    d.pair.1,
                    d.similarity,
                    class_name(d.class),
                )
            })
            .collect();
        format!(", \"decisions\": [{}]", rows.join(", "))
    } else {
        String::new()
    };
    format!(
        concat!(
            "{{\"session\": {}, \"rows\": {}, \"candidates\": {}, \"matches\": {}, ",
            "\"possible\": {}, \"clusters\": {}, \"summary\": {}{}}}\n"
        ),
        json_string(name),
        result.relation.len(),
        result.candidates,
        result.matches().count(),
        result.possible_matches().count(),
        clusters_json(&result.clusters),
        json_string(&result.summary()),
        decisions,
    )
}

/// `POST /sessions/{name}/dedup`: (re)run the session over the posted
/// relation as the whole corpus — warm state carries over, so re-posting
/// an unchanged corpus replays from the caches (zero key renders).
fn handle_dedup(state: &ServerState, name: &str, body: &[u8]) -> Response {
    state.endpoints.dedup.fetch_add(1, Ordering::Relaxed);
    let rel = match parse_body_relation(state, body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let entry = match state.entry_or_create(name) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let mut session = match entry.write_guard(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    // Corpus replacements journal like ingests: recovery must converge to
    // the same resident corpus (see `probdedup_core::wal`).
    let result = match entry.journal_guard(state) {
        Err(resp) => return resp,
        Ok(Some(mut journal)) => match journal.run(&mut session, &rel) {
            Ok(result) => {
                state.wal_appends.fetch_add(1, Ordering::Relaxed);
                Ok(result)
            }
            Err(SnapshotError::Model(e)) => Err(Response::error(409, &format!("dedup: {e}"))),
            Err(e) => Err(Response::error(500, &format!("journal append: {e}"))),
        },
        Ok(None) => session
            .run(&[&rel])
            .map_err(|e| Response::error(409, &format!("dedup: {e}"))),
    };
    match result {
        Ok(result) => {
            state
                .pairs_classified
                .fetch_add(result.decisions.len() as u64, Ordering::Relaxed);
            Response::json(200, result_json(name, &result, false))
        }
        Err(resp) => resp,
    }
}

/// `GET /sessions/{name}/query?i=..&j=..`: classify one resident pair
/// through the session's `&self` read path — concurrent with other
/// readers and blocked only by an in-flight ingest.
fn handle_query(state: &ServerState, name: &str, req: &Request) -> Response {
    state.endpoints.query.fetch_add(1, Ordering::Relaxed);
    let Some(entry) = state.entry(name) else {
        return Response::error(404, "no such session");
    };
    let parse = |key: &str| -> Result<usize, Response> {
        req.query_value(key)
            .ok_or_else(|| Response::error(400, &format!("query needs ?{key}=ROW")))?
            .parse()
            .map_err(|_| Response::error(400, &format!("?{key} must be a row index")))
    };
    let (i, j) = match (parse("i"), parse("j")) {
        (Ok(i), Ok(j)) => (i, j),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let session = match entry.read_guard(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    match session.classify_pair(i, j) {
        Some(d) => {
            state.pairs_classified.fetch_add(1, Ordering::Relaxed);
            Response::json(
                200,
                format!(
                    "{{\"session\": {}, \"i\": {}, \"j\": {}, \"similarity\": {:.6}, \"class\": \"{}\"}}\n",
                    json_string(name),
                    d.pair.0,
                    d.pair.1,
                    d.similarity,
                    class_name(d.class),
                ),
            )
        }
        None => Response::error(
            400,
            &format!(
                "rows ({i}, {j}) out of range for {} resident rows",
                session.rows()
            ),
        ),
    }
}

/// `GET /sessions/{name}/partition[?full=1]`: the merged resident view.
fn handle_partition(state: &ServerState, name: &str, req: &Request) -> Response {
    state.endpoints.partition.fetch_add(1, Ordering::Relaxed);
    let Some(entry) = state.entry(name) else {
        return Response::error(404, "no such session");
    };
    let full = req
        .query_value("full")
        .is_some_and(|v| v == "1" || v == "true");
    let session = match entry.read_guard(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let result = session.result();
    Response::json(200, result_json(name, &result, full))
}

/// `GET /sessions/{name}/entities[?strategy=components|correlation-greedy|correlation-repaired]`:
/// the resident corpus resolved into entities. Takes the session's
/// *write* path so the resolved partition is memoized into the session —
/// subsequent requests (and snapshot save/restore round-trips) replay
/// the cached partition byte-for-byte instead of re-clustering.
fn handle_entities(state: &ServerState, name: &str, req: &Request) -> Response {
    state.endpoints.entities.fetch_add(1, Ordering::Relaxed);
    let Some(entry) = state.entry(name) else {
        return Response::error(404, "no such session");
    };
    let strategy = match req.query_value("strategy") {
        None => ClusterStrategy::Components,
        Some(s) => match ClusterStrategy::from_name(s) {
            Some(s) => s,
            None => {
                return Response::error(
                    400,
                    "?strategy must be components, correlation-greedy or correlation-repaired",
                )
            }
        },
    };
    let mut session = match entry.write_guard(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let res = session.resolve_entities(strategy);
    Response::json(
        200,
        format!(
            concat!(
                "{{\"session\": {}, \"strategy\": {}, \"rows\": {}, \"entities\": {}, ",
                "\"duplicates\": {}, \"max_cluster_size\": {}, \"positive_edges\": {}, ",
                "\"negative_edges\": {}, \"possible_edges\": {}, ",
                "\"inconsistent_triangles\": {}, \"repair_moves\": {}, \"clusters\": {}}}\n"
            ),
            json_string(name),
            json_string(res.strategy.name()),
            res.stats.rows,
            res.stats.entities,
            res.stats.duplicates,
            res.stats.max_cluster_size,
            res.stats.positive_edges,
            res.stats.negative_edges,
            res.stats.possible_edges,
            res.stats.inconsistent_triangles,
            res.stats.repair_moves,
            clusters_json(&res.clusters),
        ),
    )
}

fn handle_snapshot(state: &ServerState, name: &str) -> Response {
    state.endpoints.snapshot.fetch_add(1, Ordering::Relaxed);
    let Some(entry) = state.entry(name) else {
        return Response::error(404, "no such session");
    };
    let Some(path) = state.snapshot_path(name) else {
        return Response::error(400, "no snapshot directory configured (--snapshot-dir)");
    };
    let session = match entry.read_guard(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    match session.save(&path) {
        Ok(()) => {
            // Snapshot durable → the journal tail it covers is redundant.
            // The read guard is still held, so no append can interleave.
            if let Ok(Some(mut journal)) = entry.journal_guard(state) {
                if let Err(e) = journal.compact(session.journal_seq()) {
                    eprintln!("probdedup-serve: compact {}: {e}", journal.path().display());
                }
            }
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            Response::json(
                200,
                format!(
                    "{{\"session\": {}, \"path\": {}, \"bytes\": {}, \"rows\": {}, \"decided_pairs\": {}}}\n",
                    json_string(name),
                    json_string(&path.display().to_string()),
                    bytes,
                    session.rows(),
                    session.decided_count(),
                ),
            )
        }
        Err(e) => Response::error(500, &format!("snapshot: {e}")),
    }
}

// ---------------------------------------------------------------------
// Connection loop
// ---------------------------------------------------------------------

/// Session routes (`/sessions/{name}/{action}`) pass through the
/// admission gate; the ops surface (`/health`, `/stats`, `/sessions`,
/// `/shutdown`) stays exempt so visibility survives overload.
fn is_session_route(path: &str) -> bool {
    path.strip_prefix("/sessions/")
        .is_some_and(|rest| rest.contains('/'))
}

/// Dispatch one request behind the in-flight gate and a panic boundary.
/// The slot guard lives *outside* the `catch_unwind`, so a panicking
/// handler still releases its slot; the panic itself becomes a 500 and
/// the process keeps serving (the touched session is quarantined by its
/// poisoned lock on next access).
fn dispatch(state: &ServerState, req: &Request) -> Response {
    let _slot = if is_session_route(&req.path) {
        match state.try_acquire_slot() {
            Some(slot) => Some(slot),
            None => {
                return Response::shed("server at --max-inflight capacity; retry shortly", 1);
            }
        }
    } else {
        None
    };
    match catch_unwind(AssertUnwindSafe(|| handle_request(state, req))) {
        Ok(resp) => resp,
        Err(_) => {
            state.panics_caught.fetch_add(1, Ordering::Relaxed);
            Response::error(500, "internal panic (caught; connection isolated)")
        }
    }
}

fn handle_connection(state: Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.request_timeout));
    let _ = stream.set_write_timeout(Some(state.request_timeout));
    let mut peer = stream.try_clone();
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                state.errors.fetch_add(1, Ordering::Relaxed);
                if let Ok(ref mut out) = peer {
                    let resp = Response::error(e.status(), &e.detail());
                    let _ = write_response(out, &resp, false);
                }
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);

        let shutdown_request = req.method == "POST" && req.path == "/shutdown";
        let resp = if state.shutting_down.load(Ordering::SeqCst) && !shutdown_request {
            Response::error(503, "shutting down")
        } else {
            dispatch(&state, &req)
        };
        if resp.status >= 400 {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }

        let keep = req.keep_alive && !shutdown_request;
        let Ok(ref mut out) = peer else { return };
        if write_response(out, &resp, keep).is_err() {
            return;
        }
        if shutdown_request {
            // Respond first, then trip the accept loop.
            if let Ok(addr) = out.local_addr() {
                state.begin_shutdown(addr);
            }
            return;
        }
        if !keep {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Signals (unix): a raw libc `signal` registration — std links libc
// already, and the handler only flips an atomic, which is async-signal
// safe. The watcher thread translates the flag into a graceful shutdown.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    pub fn pending() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A bound (not yet serving) daemon. [`Server::bind`] performs the
/// snapshot autoload; [`Server::run`] blocks on the accept loop until a
/// graceful shutdown, [`Server::spawn`] does the same on a background
/// thread.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
    autosave_interval: Option<Duration>,
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<ServeSummary>,
}

impl RunningServer {
    /// The bound address (the actual port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful shutdown and wait for the accept loop to
    /// drain and autosave.
    pub fn shutdown(self) -> std::thread::Result<ServeSummary> {
        self.state.begin_shutdown(self.addr);
        self.thread.join()
    }
}

impl Server {
    /// Bind the listener and autoload any snapshots in the configured
    /// directory. Fails loudly on an unbindable address or a corrupt /
    /// config-mismatched snapshot.
    pub fn bind(config: ServeConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Bind(config.addr.clone(), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(config.addr.clone(), e))?;

        // Boot over the *union* of snapshot and journal names: a session
        // whose snapshot never happened (crash before the first save)
        // still exists durably as `NAME.wal` and must come back.
        let mut boot_names = std::collections::BTreeSet::new();
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir).map_err(|e| ServeError::SnapshotDir(dir.clone(), e))?;
            collect_stems(dir, "snap", &mut boot_names)
                .map_err(|e| ServeError::SnapshotDir(dir.clone(), e))?;
        }
        if let Some(dir) = &config.wal_dir {
            std::fs::create_dir_all(dir).map_err(|e| ServeError::WalDir(dir.clone(), e))?;
            // Probe writability now: an ingest that cannot journal would
            // otherwise only surface after the daemon accepted traffic.
            let probe = dir.join(".wal-write-probe");
            std::fs::write(&probe, b"probe").map_err(|e| ServeError::WalDir(dir.clone(), e))?;
            std::fs::remove_file(&probe).map_err(|e| ServeError::WalDir(dir.clone(), e))?;
            collect_stems(dir, "wal", &mut boot_names)
                .map_err(|e| ServeError::WalDir(dir.clone(), e))?;
        }

        let mut sessions = BTreeMap::new();
        let mut wal_replayed_total = 0u64;
        for name in boot_names {
            let snap_path = config
                .snapshot_dir
                .as_ref()
                .map(|d| d.join(format!("{name}.snap")))
                .filter(|p| p.is_file());
            let mut restored = snap_path.is_some();
            let mut session = match &snap_path {
                Some(path) => DedupSession::open(path, &config.pipeline)
                    .map_err(|e| ServeError::Snapshot(path.clone(), e))?,
                None => config.pipeline.session(),
            };
            let journal = match &config.wal_dir {
                None => None,
                Some(dir) => {
                    let path = dir.join(format!("{name}.wal"));
                    let (journal, replay) = SessionJournal::open_and_replay(&path, &mut session)
                        .map_err(|e| ServeError::Wal(path.clone(), e))?;
                    wal_replayed_total += replay.replayed;
                    restored |= replay.replayed > 0;
                    Some(journal)
                }
            };
            sessions.insert(
                name,
                Arc::new(SessionEntry::new(session, restored, journal)),
            );
        }

        let state = Arc::new(ServerState {
            pipeline: config.pipeline,
            snapshot_dir: config.snapshot_dir,
            wal_dir: config.wal_dir,
            sessions: RwLock::new(sessions),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            pairs_classified: AtomicU64::new(0),
            autosaves: AtomicU64::new(0),
            endpoints: EndpointCounters::default(),
            max_inflight: config.max_inflight,
            inflight: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            sessions_degraded: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_replayed: AtomicU64::new(wal_replayed_total),
            request_timeout: config.request_timeout,
            debug_endpoints: config.debug_endpoints,
        });
        Ok(Self {
            listener,
            addr,
            state,
            autosave_interval: config.autosave_interval,
        })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Names of the sessions restored by the boot autoload.
    pub fn restored_sessions(&self) -> Vec<String> {
        rlock(&self.state.sessions).keys().cloned().collect()
    }

    /// Serve until graceful shutdown (`POST /shutdown`, SIGTERM or
    /// SIGINT), then autosave every session and return the summary.
    pub fn run(self) -> ServeSummary {
        signals::install();
        let state = self.state.clone();
        let addr = self.addr;

        // Watcher: translate a signal into the same graceful path as
        // POST /shutdown (flag + accept-loop nudge).
        let watcher = {
            let state = state.clone();
            std::thread::spawn(move || loop {
                if state.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if signals::pending() {
                    state.begin_shutdown(addr);
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
        };

        // Interval autosave (only with a snapshot dir).
        let autosaver = self
            .autosave_interval
            .filter(|_| state.snapshot_dir.is_some())
            .map(|interval| {
                let state = state.clone();
                std::thread::spawn(move || {
                    let mut last = Instant::now();
                    loop {
                        if state.shutting_down.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(interval.min(Duration::from_millis(200)));
                        if last.elapsed() >= interval {
                            state.save_all();
                            state.autosaves.fetch_add(1, Ordering::Relaxed);
                            last = Instant::now();
                        }
                    }
                })
            });

        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = state.clone();
            workers.push(std::thread::spawn(move || handle_connection(state, stream)));
            workers.retain(|w| !w.is_finished());
        }
        drop(self.listener);
        for w in workers {
            let _ = w.join();
        }
        let _ = watcher.join();
        if let Some(a) = autosaver {
            let _ = a.join();
        }

        let sessions_saved = state.save_all();
        ServeSummary {
            requests: state.requests.load(Ordering::Relaxed),
            sessions_saved,
        }
    }

    /// Run on a background thread; shut down via
    /// [`RunningServer::shutdown`] (or a client `POST /shutdown`).
    pub fn spawn(self) -> RunningServer {
        let addr = self.addr;
        let state = self.state.clone();
        let thread = std::thread::spawn(move || self.run());
        RunningServer {
            addr,
            state,
            thread,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_names_are_validated() {
        assert!(valid_name("census"));
        assert!(valid_name("a"));
        assert!(valid_name("run-2.v1_final"));
        assert!(!valid_name(""));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("has/slash"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(&"x".repeat(65)));
        assert!(!valid_name("-leading-dash"));
    }

    #[test]
    fn default_pipeline_matches_requested_arity() {
        for arity in [1, 2, 4, 7] {
            assert_eq!(ServeConfig::default_pipeline(arity).arity(), arity);
        }
    }

    #[test]
    fn clusters_render_as_nested_arrays() {
        assert_eq!(clusters_json(&[]), "[]");
        assert_eq!(
            clusters_json(&[vec![0, 3], vec![5, 6, 9]]),
            "[[0, 3], [5, 6, 9]]"
        );
    }
}
