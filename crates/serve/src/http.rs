//! A deliberately small HTTP/1.1 implementation over [`std::net`].
//!
//! The offline-shims policy (no crates.io) rules out hyper/axum; the
//! daemon's protocol needs are tiny — method + path + query, a few
//! headers, `Content-Length` bodies, keep-alive — so this module
//! hand-rolls exactly that and nothing more. Every parse failure is a
//! typed [`HttpError`] carrying the status code the connection loop
//! should answer with; nothing panics on wire input.
//!
//! Out of scope on purpose: chunked transfer encoding, multipart,
//! compression, TLS, percent-decoding (session names are restricted to
//! URL-safe characters by the router, and `.pxr` bodies are plain text).

use std::io::{BufReader, Read, Write};

/// Upper bound on the request line + each header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (a `.pxr` corpus posted to `ingest`).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parse/protocol failure with the HTTP status the server answers.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or length (→ 400).
    BadRequest(&'static str),
    /// Body larger than [`MAX_BODY`] (→ 413).
    TooLarge,
    /// The socket failed mid-request.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this failure is reported as.
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) => 400,
            Self::TooLarge => 413,
            Self::Io(_) => 500,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            Self::BadRequest(m) => (*m).to_string(),
            Self::TooLarge => format!("body exceeds {MAX_BODY} bytes"),
            Self::Io(e) => e.to_string(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component, query string stripped (`/sessions/a/query`).
    pub path: String,
    /// Parsed `k=v` query pairs, in order (no percent-decoding).
    pub query: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one line up to CRLF (or bare LF), enforcing [`MAX_LINE`]. Returns
/// `None` on clean EOF before any byte (idle keep-alive close).
fn read_line<R: Read>(reader: &mut BufReader<R>) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated request line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request line"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::BadRequest("request line too long"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Parse one request off the connection. `Ok(None)` means the peer closed
/// cleanly between requests (the keep-alive loop's exit). Generic over the
/// byte source so the framing tests can drive it from in-memory buffers.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?.ok_or(HttpError::BadRequest("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("bad Content-Length"))?;
            if content_length > MAX_BODY {
                return Err(HttpError::TooLarge);
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::BadRequest("chunked bodies are not supported"));
        }
    }

    // Read exactly `Content-Length` bytes, treating a premature EOF as a
    // protocol violation (→ 400), not an I/O failure: a client that closes
    // mid-body sent a frame that disagrees with its own declared length,
    // and the truncated bytes must never be parsed as a complete body.
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(HttpError::BadRequest("body shorter than Content-Length"));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(Some(Request {
        method,
        path: path.to_string(),
        query,
        body,
        keep_alive,
    }))
}

/// A response about to be written.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` header value in seconds (load-shedding responses).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A JSON error body `{"error": detail}`.
    pub fn error(status: u16, detail: &str) -> Self {
        Self::json(status, format!("{{\"error\": {}}}\n", json_string(detail)))
    }

    /// A load-shedding `503` carrying `Retry-After: {seconds}` — the
    /// overload answer: refuse now, tell the client when to come back.
    pub fn shed(detail: &str, seconds: u32) -> Self {
        let mut resp = Self::error(503, detail);
        resp.retry_after = Some(seconds);
        resp
    }
}

/// The reason phrase for the handful of statuses the daemon uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize `response` onto the stream (one write syscall via a local
/// buffer; `Connection: close` is advertised when the loop will close).
pub fn write_response<W: Write>(
    stream: &mut W,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(response.body.len() + 128);
    let retry_after = response
        .retry_after
        .map(|s| format!("Retry-After: {s}\r\n"))
        .unwrap_or_default();
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
            response.status,
            reason(response.status),
            response.content_type,
            response.body.len(),
            retry_after,
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(&response.body);
    stream.write_all(&out)?;
    stream.flush()
}

/// JSON-escape `s` into a quoted string literal (the subset of escapes
/// the daemon's payloads can contain: quotes, backslash, control bytes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn reason_phrases_cover_used_statuses() {
        for status in [200, 400, 404, 405, 409, 413, 503, 500] {
            assert!(!reason(status).is_empty());
        }
    }

    /// Drive the parser from an in-memory buffer, as a socket would.
    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn well_framed_request_parses() {
        let req = parse(b"POST /sessions/a/ingest?x=1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/a/ingest");
        assert_eq!(req.query_value("x"), Some("1"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn body_shorter_than_content_length_is_a_bad_request() {
        // The client declared 100 bytes and hung up after 9: the truncated
        // body must never surface as a parsed request (it would be handed
        // to the ingest parser as a truncated corpus).
        let err =
            parse(b"POST /sessions/a/ingest HTTP/1.1\r\nContent-Length: 100\r\n\r\ntruncated")
                .unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)), "{err:?}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn eof_immediately_after_headers_is_a_bad_request() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn zero_length_body_needs_no_bytes() {
        let req = parse(b"GET /health HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(req.body.is_empty());
        assert!(req.keep_alive);
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        for (raw, label) in [
            (b"GET /x\r\n\r\n".as_slice(), "missing version"),
            (b"GET /x SMTP/1.0\r\n\r\n".as_slice(), "bad protocol"),
            (
                b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n".as_slice(),
                "header without colon",
            ),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: many\r\n\r\n".as_slice(),
                "non-numeric length",
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
                "chunked body",
            ),
        ] {
            let err = parse(raw).unwrap_err();
            assert!(matches!(err, HttpError::BadRequest(_)), "{label}: {err:?}");
        }
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge), "{err:?}");
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::shed("overloaded", 1), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        // Plain responses must not grow the header.
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }
}
