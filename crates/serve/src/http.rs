//! A deliberately small HTTP/1.1 implementation over [`std::net`].
//!
//! The offline-shims policy (no crates.io) rules out hyper/axum; the
//! daemon's protocol needs are tiny — method + path + query, a few
//! headers, `Content-Length` bodies, keep-alive — so this module
//! hand-rolls exactly that and nothing more. Every parse failure is a
//! typed [`HttpError`] carrying the status code the connection loop
//! should answer with; nothing panics on wire input.
//!
//! Out of scope on purpose: chunked transfer encoding, multipart,
//! compression, TLS, percent-decoding (session names are restricted to
//! URL-safe characters by the router, and `.pxr` bodies are plain text).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + each header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (a `.pxr` corpus posted to `ingest`).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parse/protocol failure with the HTTP status the server answers.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or length (→ 400).
    BadRequest(&'static str),
    /// Body larger than [`MAX_BODY`] (→ 413).
    TooLarge,
    /// The socket failed mid-request.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this failure is reported as.
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) => 400,
            Self::TooLarge => 413,
            Self::Io(_) => 500,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            Self::BadRequest(m) => (*m).to_string(),
            Self::TooLarge => format!("body exceeds {MAX_BODY} bytes"),
            Self::Io(e) => e.to_string(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component, query string stripped (`/sessions/a/query`).
    pub path: String,
    /// Parsed `k=v` query pairs, in order (no percent-decoding).
    pub query: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one line up to CRLF (or bare LF), enforcing [`MAX_LINE`]. Returns
/// `None` on clean EOF before any byte (idle keep-alive close).
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated request line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request line"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::BadRequest("request line too long"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Parse one request off the connection. `Ok(None)` means the peer closed
/// cleanly between requests (the keep-alive loop's exit).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?.ok_or(HttpError::BadRequest("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("bad Content-Length"))?;
            if content_length > MAX_BODY {
                return Err(HttpError::TooLarge);
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::BadRequest("chunked bodies are not supported"));
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(Some(Request {
        method,
        path: path.to_string(),
        query,
        body,
        keep_alive,
    }))
}

/// A response about to be written.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A JSON error body `{"error": detail}`.
    pub fn error(status: u16, detail: &str) -> Self {
        Self::json(status, format!("{{\"error\": {}}}\n", json_string(detail)))
    }
}

/// The reason phrase for the handful of statuses the daemon uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize `response` onto the stream (one write syscall via a local
/// buffer; `Connection: close` is advertised when the loop will close).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(response.body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            response.status,
            reason(response.status),
            response.content_type,
            response.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(&response.body);
    stream.write_all(&out)?;
    stream.flush()
}

/// JSON-escape `s` into a quoted string literal (the subset of escapes
/// the daemon's payloads can contain: quotes, backslash, control bytes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn reason_phrases_cover_used_statuses() {
        for status in [200, 400, 404, 405, 409, 413, 503, 500] {
            assert!(!reason(status).is_empty());
        }
    }
}
