//! # probdedup-serve — the serving front door
//!
//! A std-only HTTP/1.1 daemon that keeps warm
//! [`DedupSession`](probdedup_core::session::DedupSession)s resident and
//! exposes them to clients over named sessions: `dedup`, `ingest`,
//! `query`, `partition` and `snapshot` endpoints, plus `/stats`,
//! `/health`, `/sessions` and `/shutdown`. No async runtime and no HTTP
//! crate — the build environment is offline, and the protocol surface is
//! small enough that [`http`] hand-rolls it over
//! [`std::net::TcpListener`] with a thread per connection.
//!
//! ## Concurrency model
//!
//! Each named session is an `Arc<RwLock<DedupSession>>` inside a
//! registry. `query` and `partition` are **read** endpoints: they take
//! the session's read lock and classify through
//! [`classify_pair`](probdedup_core::session::DedupSession::classify_pair)
//! / [`result`](probdedup_core::session::DedupSession::result), both
//! `&self` — concurrent readers share the warm sharded caches (interior
//! mutability: lock-striped shards, atomic counters). `ingest`, `dedup`
//! and `snapshot`-restore take the write lock. A reader therefore
//! observes either the pre-ingest or the post-ingest partition, never a
//! torn one.
//!
//! ## Snapshot lifecycle
//!
//! With a snapshot directory configured, boot scans it for `NAME.snap`
//! files and re-opens each as warm session `NAME` (a corrupt or
//! config-mismatched file fails the boot loudly — the daemon never
//! silently discards persisted state). Sessions autosave on graceful
//! shutdown (`/shutdown`, SIGTERM, SIGINT) and on a configurable
//! interval, through the same atomic temp+fsync+rename writes the
//! snapshot codec always uses.
//!
//! ```
//! use probdedup_serve::server::{ServeConfig, Server};
//! use probdedup_serve::client::Client;
//!
//! // A default pipeline over 2-attribute relations, bound to an
//! // ephemeral port:
//! let config = ServeConfig::new("127.0.0.1:0", ServeConfig::default_pipeline(2));
//! let running = Server::bind(config).unwrap().spawn();
//! let client = Client::new(running.addr());
//!
//! let (status, body) = client.get("/health").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"status\": \"ok\""));
//!
//! let summary = running.shutdown().unwrap();
//! assert_eq!(summary.requests, 1);
//! ```

pub mod client;
pub mod http;
pub mod server;

pub use client::Client;
pub use server::{RunningServer, ServeConfig, ServeError, ServeSummary, Server};
