//! # probdedup-serve — the serving front door
//!
//! A std-only HTTP/1.1 daemon that keeps warm
//! [`DedupSession`](probdedup_core::session::DedupSession)s resident and
//! exposes them to clients over named sessions: `dedup`, `ingest`,
//! `query`, `partition` and `snapshot` endpoints, plus `/stats`,
//! `/health`, `/sessions` and `/shutdown`. No async runtime and no HTTP
//! crate — the build environment is offline, and the protocol surface is
//! small enough that [`http`] hand-rolls it over
//! [`std::net::TcpListener`] with a thread per connection.
//!
//! ## Concurrency model
//!
//! Each named session is an `Arc<RwLock<DedupSession>>` inside a
//! registry. `query` and `partition` are **read** endpoints: they take
//! the session's read lock and classify through
//! [`classify_pair`](probdedup_core::session::DedupSession::classify_pair)
//! / [`result`](probdedup_core::session::DedupSession::result), both
//! `&self` — concurrent readers share the warm sharded caches (interior
//! mutability: lock-striped shards, atomic counters). `ingest`, `dedup`
//! and `snapshot`-restore take the write lock. A reader therefore
//! observes either the pre-ingest or the post-ingest partition, never a
//! torn one.
//!
//! ## Snapshot lifecycle
//!
//! With a snapshot directory configured, boot scans it for `NAME.snap`
//! files and re-opens each as warm session `NAME` (a corrupt or
//! config-mismatched file fails the boot loudly — the daemon never
//! silently discards persisted state). Sessions autosave on graceful
//! shutdown (`/shutdown`, SIGTERM, SIGINT) and on a configurable
//! interval, through the same atomic temp+fsync+rename writes the
//! snapshot codec always uses.
//!
//! ## Durability: the write-ahead journal
//!
//! With a WAL directory configured
//! ([`wal_dir`](server::ServeConfig::wal_dir)), every accepted `ingest`
//! and `dedup` batch is appended to `NAME.wal` and fsynced *before* it
//! mutates the session
//! ([`SessionJournal`](probdedup_core::wal::SessionJournal)). Boot then
//! recovers `snapshot + journal tail` — a `kill -9` at any instant loses
//! no acknowledged batch. Each durable snapshot compacts the journal it
//! covers; a torn trailing record (crash mid-append) is truncated away on
//! the next open. The record format and the compaction protocol live in
//! `ARCHITECTURE.md` under *Durability & degradation*.
//!
//! ## Degradation under overload and panics
//!
//! Three hardening layers keep one bad client or one bug from taking the
//! daemon down: a per-connection read/write deadline
//! ([`request_timeout`](server::ServeConfig::request_timeout)) disconnects
//! stalled peers; an admission gate
//! ([`max_inflight`](server::ServeConfig::max_inflight)) sheds session
//! requests past the bound with `503` + `Retry-After` instead of queueing
//! unboundedly (the ops surface — `/health`, `/stats` — stays exempt);
//! and a `catch_unwind` boundary per request turns a handler panic into a
//! `500` while the process keeps serving. A session whose lock was
//! poisoned by such a panic is *quarantined*: it answers `503` and is
//! skipped by autosave (its durable `snapshot + journal` state is intact,
//! because journaling precedes mutation) until a restart replays it back.
//! `/health` reports `"degraded"` while any session is quarantined, and
//! `/stats` carries the full counter set (`wal_appends`,
//! `wal_replayed_records`, `requests_shed`, `panics_caught`,
//! `sessions_degraded`, `inflight_peak`).
//!
//! ```
//! use probdedup_serve::server::{ServeConfig, Server};
//! use probdedup_serve::client::Client;
//!
//! // A default pipeline over 2-attribute relations, bound to an
//! // ephemeral port:
//! let config = ServeConfig::new("127.0.0.1:0", ServeConfig::default_pipeline(2));
//! let running = Server::bind(config).unwrap().spawn();
//! let client = Client::new(running.addr());
//!
//! let (status, body) = client.get("/health").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"status\": \"ok\""));
//!
//! let summary = running.shutdown().unwrap();
//! assert_eq!(summary.requests, 1);
//! ```

pub mod client;
pub mod http;
pub mod server;

pub use client::Client;
pub use server::{RunningServer, ServeConfig, ServeError, ServeSummary, Server};
