//! A minimal blocking HTTP client for the daemon — what the integration
//! tests, the CI smoke script and the serve benchmark drive requests
//! with (and a convenient library entry point for scripting against a
//! running daemon without `curl`).
//!
//! One request per connection (`Connection: close`): the daemon's
//! thread-per-connection model makes connection reuse an optimization,
//! not a requirement, and close-delimited responses keep the client
//! trivial to reason about. [`Client::keep_alive`] opens a pipelined
//! connection when a caller (the benchmark) wants to measure without
//! per-request connect cost.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Blocking client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the per-request socket timeout (default 30 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET path` → `(status, body)`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, b"")
    }

    /// `POST path` with `body` → `(status, body)`.
    pub fn post(&self, path: &str, body: &[u8]) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// One request over a fresh connection.
    pub fn request(&self, method: &str, path: &str, body: &[u8]) -> std::io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_request(&mut stream, method, path, body, false)?;
        let mut reader = BufReader::new(stream);
        read_response(&mut reader)
    }

    /// Open a keep-alive connection for a sequence of requests (the
    /// benchmark's hot loop — connect once, measure request cost only).
    pub fn keep_alive(&self) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            reader: BufReader::new(stream),
        })
    }
}

/// A persistent keep-alive connection from [`Client::keep_alive`].
pub struct Connection {
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// One request on the shared connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, String)> {
        write_request(self.reader.get_mut(), method, path, body, true)?;
        read_response(&mut self.reader)
    }
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: probdedup\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    stream.write_all(&out)?;
    stream.flush()
}

fn bad(detail: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string())
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("server closed the connection before responding"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad Content-Length in response"))?,
                );
            }
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| bad("non-UTF-8 response body"))
}

/// Extract the raw value of a top-level `"key": value` field from one of
/// the daemon's JSON bodies — enough for tests and scripts to assert on
/// counters without a JSON parser. Returns the value token with quotes
/// stripped for strings; `None` when the key is absent.
///
/// This is a scanner for the daemon's *own* flat output (no nested
/// objects share key names), not a general JSON parser.
pub fn json_field(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut out = String::new();
        let mut chars = stripped.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => return Some(out),
                '\\' => match chars.next()? {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    other => out.push(other),
                },
                c => out.push(c),
            }
        }
        None
    } else {
        // Number / bool / null: scan to a delimiter.
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
            .unwrap_or(rest.len());
        if end == 0 {
            None
        } else {
            Some(rest[..end].to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json_field;

    #[test]
    fn json_field_extracts_values() {
        let body = "{\"status\": \"ok\", \"rows\": 12, \"uptime_secs\": 0.5, \"warm\": true}";
        assert_eq!(json_field(body, "status").as_deref(), Some("ok"));
        assert_eq!(json_field(body, "rows").as_deref(), Some("12"));
        assert_eq!(json_field(body, "uptime_secs").as_deref(), Some("0.5"));
        assert_eq!(json_field(body, "warm").as_deref(), Some("true"));
        assert_eq!(json_field(body, "absent"), None);
    }

    #[test]
    fn json_field_unescapes_strings() {
        let body = "{\"error\": \"line\\nbreak \\\"quoted\\\"\"}";
        assert_eq!(
            json_field(body, "error").as_deref(),
            Some("line\nbreak \"quoted\"")
        );
    }
}
