//! Value interning: dense `u32` symbols for distinct [`Value`]s.
//!
//! The matching hot path evaluates Eq. 5 over the supports of two uncertain
//! values — every term hashes, compares or clones a [`Value`] (usually a
//! heap-allocated string). Across a relation the distinct values are few
//! relative to the number of candidate pairs, so the pipeline interns every
//! value once up front into a [`ValuePool`] and works with [`Symbol`]s from
//! there on: similarity-cache keys become a single `u64`, equality becomes
//! an integer compare, and no string is touched again until a cache miss
//! actually needs the kernel.
//!
//! ⊥ ([`Value::Null`]) is special-cased as [`Symbol::NULL`] (symbol 0),
//! reserved at construction so the paper's non-existence conventions
//! (`sim(⊥,⊥) = 1`, `sim(⊥, v) = 0`) can be tested without resolving
//! anything.

use crate::util::FxHashMap;
use crate::value::Value;

/// A dense handle for one distinct [`Value`] in a [`ValuePool`].
///
/// Symbols are only meaningful relative to the pool that issued them; they
/// are assigned contiguously from 0 in interning order, so they can index
/// side tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The reserved symbol of the non-existence marker `⊥`
    /// ([`Value::Null`]). Every pool assigns it at construction.
    pub const NULL: Symbol = Symbol(0);

    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` (for packing into cache keys).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the `⊥` symbol.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// An interner mapping each distinct [`Value`] to a dense [`Symbol`].
///
/// Interning is idempotent: the same value always yields the same symbol,
/// and `resolve` returns a value equal to the one interned. Typical use is
/// a single-threaded interning pass over a prepared relation followed by
/// read-only shared access from worker threads (all query methods take
/// `&self`).
#[derive(Debug, Clone)]
pub struct ValuePool {
    map: FxHashMap<Value, Symbol>,
    values: Vec<Value>,
}

impl Default for ValuePool {
    fn default() -> Self {
        Self::new()
    }
}

impl ValuePool {
    /// An empty pool (containing only the reserved `⊥` entry).
    pub fn new() -> Self {
        let mut pool = Self {
            map: FxHashMap::default(),
            values: Vec::new(),
        };
        let null = pool.intern(&Value::Null);
        debug_assert_eq!(null, Symbol::NULL);
        pool
    }

    /// Intern `v`, returning its (new or existing) symbol.
    pub fn intern(&mut self, v: &Value) -> Symbol {
        if let Some(&sym) = self.map.get(v) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.values.len()).expect("more than u32::MAX distinct values interned"),
        );
        self.values.push(v.clone());
        self.map.insert(v.clone(), sym);
        sym
    }

    /// The symbol of `v`, if it has been interned.
    pub fn lookup(&self, v: &Value) -> Option<Symbol> {
        self.map.get(v).copied()
    }

    /// The value behind a symbol issued by this pool.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was issued by a different (larger) pool.
    pub fn resolve(&self, sym: Symbol) -> &Value {
        &self.values[sym.index()]
    }

    /// Number of distinct interned values (including the reserved `⊥`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pool holds only the reserved `⊥` entry.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 1
    }

    /// All interned `(Symbol, Value)` entries in symbol order (starting at
    /// the reserved `⊥`).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (Symbol(i as u32), v))
    }
}

/// Dense per-symbol side storage over a frozen [`ValuePool`].
///
/// Symbols are assigned contiguously from 0, so a sidecar is just a slab
/// indexed by [`Symbol::index`] — this is where derived per-value state
/// (e.g. the precomputed text-kernel tables of `probdedup-matching`'s
/// interned miss path) hangs off the interner without touching the pool
/// itself. Built once single-threaded, then shared read-only.
#[derive(Debug, Clone)]
pub struct SymbolMap<T> {
    slots: Box<[T]>,
}

impl<T> SymbolMap<T> {
    /// Build one entry per interned symbol of `pool` (including `⊥`).
    pub fn build(pool: &ValuePool, f: impl FnMut((Symbol, &Value)) -> T) -> Self {
        Self {
            slots: pool.iter().map(f).collect(),
        }
    }

    /// The entry of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was issued by a different (larger) pool.
    #[inline]
    pub fn get(&self, sym: Symbol) -> &T {
        &self.slots[sym.index()]
    }

    /// Number of entries (== the pool's [`ValuePool::len`] at build time).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map has no entries (only for maps built off a
    /// non-standard empty pool).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut pool = ValuePool::new();
        let a1 = pool.intern(&Value::from("Tim"));
        let a2 = pool.intern(&Value::from("Tim"));
        assert_eq!(a1, a2);
        assert_eq!(pool.len(), 2); // ⊥ + "Tim"
    }

    #[test]
    fn symbols_are_dense_and_stable() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let kim = pool.intern(&Value::from("Kim"));
        let n30 = pool.intern(&Value::Int(30));
        assert_eq!(tim.index(), 1);
        assert_eq!(kim.index(), 2);
        assert_eq!(n30.index(), 3);
        // Re-interning earlier values does not disturb assignments.
        assert_eq!(pool.intern(&Value::from("Tim")), tim);
        assert_eq!(pool.resolve(kim), &Value::from("Kim"));
        assert_eq!(pool.resolve(n30), &Value::Int(30));
    }

    #[test]
    fn null_is_reserved_symbol_zero() {
        let mut pool = ValuePool::new();
        assert_eq!(pool.intern(&Value::Null), Symbol::NULL);
        assert!(Symbol::NULL.is_null());
        assert!(pool.lookup(&Value::Null).expect("⊥ preinterned").is_null());
        assert_eq!(pool.resolve(Symbol::NULL), &Value::Null);
        // A fresh pool is "empty" despite the reserved entry.
        assert!(ValuePool::new().is_empty());
        assert!(!pool.is_empty() || pool.len() == 1);
    }

    #[test]
    fn distinct_values_get_distinct_symbols() {
        let mut pool = ValuePool::new();
        // Cross-variant values that render identically must stay distinct.
        let text = pool.intern(&Value::from("30"));
        let int = pool.intern(&Value::Int(30));
        let real = pool.intern(&Value::Real(30.0));
        assert_ne!(text, int);
        assert_ne!(int, real);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn lookup_misses_report_none() {
        let pool = ValuePool::new();
        assert_eq!(pool.lookup(&Value::from("absent")), None);
    }

    #[test]
    fn iter_yields_symbols_in_order() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let n30 = pool.intern(&Value::Int(30));
        let entries: Vec<(Symbol, Value)> = pool.iter().map(|(s, v)| (s, v.clone())).collect();
        assert_eq!(
            entries,
            vec![
                (Symbol::NULL, Value::Null),
                (tim, Value::from("Tim")),
                (n30, Value::Int(30)),
            ]
        );
    }

    #[test]
    fn symbol_map_is_dense_per_symbol_storage() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let kim = pool.intern(&Value::from("Kimberly"));
        let map = SymbolMap::build(&pool, |(_, v)| match v {
            Value::Text(s) => s.len(),
            _ => 0,
        });
        assert_eq!(map.len(), pool.len());
        assert!(!map.is_empty());
        assert_eq!(*map.get(Symbol::NULL), 0);
        assert_eq!(*map.get(tim), 3);
        assert_eq!(*map.get(kim), 8);
    }

    #[test]
    fn float_canonicalization_is_respected() {
        // Value's Eq unifies -0.0/0.0 and NaNs; interning must follow.
        let mut pool = ValuePool::new();
        let zero = pool.intern(&Value::Real(0.0));
        let neg_zero = pool.intern(&Value::Real(-0.0));
        assert_eq!(zero, neg_zero);
    }
}
