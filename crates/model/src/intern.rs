//! Value interning: dense `u32` symbols for distinct [`Value`]s.
//!
//! The matching hot path evaluates Eq. 5 over the supports of two uncertain
//! values — every term hashes, compares or clones a [`Value`] (usually a
//! heap-allocated string). Across a relation the distinct values are few
//! relative to the number of candidate pairs, so the pipeline interns every
//! value once up front into a [`ValuePool`] and works with [`Symbol`]s from
//! there on: similarity-cache keys become a single `u64`, equality becomes
//! an integer compare, and no string is touched again until a cache miss
//! actually needs the kernel.
//!
//! ⊥ ([`Value::Null`]) is special-cased as [`Symbol::NULL`] (symbol 0),
//! reserved at construction so the paper's non-existence conventions
//! (`sim(⊥,⊥) = 1`, `sim(⊥, v) = 0`) can be tested without resolving
//! anything.
//!
//! The reduction layer gets the same treatment through the [`KeyPool`]
//! sidecar: sorting/blocking **key prefixes** are rendered once per
//! distinct `(value, prefix length)` at intern time and handled as dense
//! [`KeySymbol`]s from there on, so multi-pass sorted-neighborhood and
//! blocking never allocate key strings in their passes (see
//! `probdedup_reduction::key::KeyTable`).

use crate::util::FxHashMap;
use crate::value::Value;

/// A dense handle for one distinct [`Value`] in a [`ValuePool`].
///
/// Symbols are only meaningful relative to the pool that issued them; they
/// are assigned contiguously from 0 in interning order, so they can index
/// side tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The reserved symbol of the non-existence marker `⊥`
    /// ([`Value::Null`]). Every pool assigns it at construction.
    pub const NULL: Symbol = Symbol(0);

    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` (for packing into cache keys).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the `⊥` symbol.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// An interner mapping each distinct [`Value`] to a dense [`Symbol`].
///
/// Interning is idempotent: the same value always yields the same symbol,
/// and `resolve` returns a value equal to the one interned. Typical use is
/// a single-threaded interning pass over a prepared relation followed by
/// read-only shared access from worker threads (all query methods take
/// `&self`).
#[derive(Debug, Clone)]
pub struct ValuePool {
    map: FxHashMap<Value, Symbol>,
    values: Vec<Value>,
}

impl Default for ValuePool {
    fn default() -> Self {
        Self::new()
    }
}

impl ValuePool {
    /// An empty pool (containing only the reserved `⊥` entry).
    pub fn new() -> Self {
        let mut pool = Self {
            map: FxHashMap::default(),
            values: Vec::new(),
        };
        let null = pool.intern(&Value::Null);
        debug_assert_eq!(null, Symbol::NULL);
        pool
    }

    /// Intern `v`, returning its (new or existing) symbol.
    pub fn intern(&mut self, v: &Value) -> Symbol {
        if let Some(&sym) = self.map.get(v) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.values.len()).expect("more than u32::MAX distinct values interned"),
        );
        self.values.push(v.clone());
        self.map.insert(v.clone(), sym);
        sym
    }

    /// The symbol of `v`, if it has been interned.
    pub fn lookup(&self, v: &Value) -> Option<Symbol> {
        self.map.get(v).copied()
    }

    /// The value behind a symbol issued by this pool.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was issued by a different (larger) pool.
    pub fn resolve(&self, sym: Symbol) -> &Value {
        &self.values[sym.index()]
    }

    /// Number of distinct interned values (including the reserved `⊥`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pool holds only the reserved `⊥` entry.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 1
    }

    /// All interned `(Symbol, Value)` entries in symbol order (starting at
    /// the reserved `⊥`).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (Symbol(i as u32), v))
    }
}

/// Dense per-symbol side storage over a [`ValuePool`].
///
/// Symbols are assigned contiguously from 0, so a sidecar is just a slab
/// indexed by [`Symbol::index`] — this is where derived per-value state
/// (e.g. the precomputed text-kernel tables of `probdedup-matching`'s
/// interned miss path) hangs off the interner without touching the pool
/// itself. Built once single-threaded, then shared read-only; a persistent
/// session that grows its pool append-only catches the map up with
/// [`SymbolMap::extend`] between (not during) read phases.
#[derive(Debug, Clone)]
pub struct SymbolMap<T> {
    slots: Vec<T>,
}

impl<T> SymbolMap<T> {
    /// Build one entry per interned symbol of `pool` (including `⊥`).
    pub fn build(pool: &ValuePool, f: impl FnMut((Symbol, &Value)) -> T) -> Self {
        Self {
            slots: pool.iter().map(f).collect(),
        }
    }

    /// Grow the map to cover symbols interned into `pool` after this map
    /// was built (or last extended): `f` runs once for each symbol in
    /// `self.len()..pool.len()`, in symbol order. A no-op when the pool
    /// has not grown. Existing entries are untouched, so side state keyed
    /// on old symbols (caches, tables) stays valid — this is how warm
    /// sessions carry per-symbol state across incremental ingests.
    pub fn extend(&mut self, pool: &ValuePool, f: impl FnMut((Symbol, &Value)) -> T) {
        debug_assert!(pool.len() >= self.slots.len(), "pools only grow");
        self.slots.extend(pool.iter().skip(self.slots.len()).map(f));
    }

    /// The entry of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was issued by a different (larger) pool.
    #[inline]
    pub fn get(&self, sym: Symbol) -> &T {
        &self.slots[sym.index()]
    }

    /// Number of entries (== the pool's [`ValuePool::len`] at build time).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map has no entries (only for maps built off a
    /// non-standard empty pool).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A point-in-time view of a pool's size and render counter.
///
/// Persistent sessions take one before and one after an operation to
/// **certify reuse**: a warm rerun over already-seen data must show zero
/// growth (`len` unchanged) and zero renders (`renders` unchanged), and an
/// incremental ingest's growth is exactly the new data's distinct values.
/// See [`ValuePool::snapshot`] and [`KeyPool::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    /// Distinct interned entries at snapshot time (including the reserved
    /// `⊥` / `""` entry).
    pub len: usize,
    /// Render counter at snapshot time (always 0 for [`ValuePool`]s, which
    /// never render).
    pub renders: u64,
}

impl PoolSnapshot {
    /// Entries added between `self` and the `later` snapshot.
    pub fn grown_by(&self, later: PoolSnapshot) -> usize {
        later.len.saturating_sub(self.len)
    }

    /// Renders performed between `self` and the `later` snapshot.
    pub fn rendered_by(&self, later: PoolSnapshot) -> u64 {
        later.renders.saturating_sub(self.renders)
    }
}

impl ValuePool {
    /// The pool's current [`PoolSnapshot`] (growth counter; value pools
    /// never render, so `renders` is always 0).
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            len: self.values.len(),
            renders: 0,
        }
    }
}

/// A dense handle for one distinct **rendered key string** in a [`KeyPool`].
///
/// Key symbols are the reduction layer's analogue of [`Symbol`]: blocking
/// buckets and sorted-neighborhood entries carry a `KeySymbol` instead of an
/// owned `String`, so multi-pass methods never re-render or re-hash key
/// text. Like value symbols they are dense (assigned contiguously from 0 in
/// interning order) and only meaningful relative to the pool that issued
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeySymbol(u32);

impl KeySymbol {
    /// The reserved symbol of the empty key `""` — the key a `⊥` value
    /// contributes (the paper's `(John, ⊥) → "Joh"` convention renders ⊥
    /// as the empty string). Every pool assigns it at construction.
    pub const EMPTY: KeySymbol = KeySymbol(0);

    /// The raw dense index (usable against side tables such as
    /// [`KeyRanks`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32`.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the empty-key symbol.
    #[inline]
    pub fn is_empty_key(self) -> bool {
        self.0 == 0
    }

    /// Rebuild a symbol from its raw index (snapshot restore only — the
    /// caller is responsible for range-checking against the owning pool).
    #[inline]
    pub(crate) fn from_raw(raw: u32) -> Self {
        KeySymbol(raw)
    }
}

/// An interner for **rendered key prefixes**: the sidecar that makes
/// blocking and sorted-neighborhood keys allocation-free after the first
/// sight of a value.
///
/// Sorting/blocking keys are concatenations of per-attribute value prefixes
/// (e.g. the paper's `(John, pilot) → "Johpi"`). The string-rendering path
/// re-renders those prefixes for every pass of every multi-pass method; a
/// `KeyPool` instead renders each distinct `(value, prefix length)`
/// combination **once** ([`KeyPool::prefix_of`]), interns the result, and
/// memoizes part concatenations ([`KeyPool::concat`]), so later passes are
/// pure integer work. [`KeyPool::render_count`] counts prefix-cache
/// misses — the only events that read a value's text (via
/// [`Value::render`] or the in-place text fast path) — and the reduction
/// property tests assert it stays flat across SNM passes ≥ 2.
///
/// Lexicographic order (what SNM sorts by) is recovered without touching
/// strings via [`KeyPool::lexicographic_ranks`].
#[derive(Debug, Clone)]
pub struct KeyPool {
    /// Hash-bucketed dedup index: `FxHash(key) → symbols with that hash`
    /// (almost always exactly one — collisions chain through
    /// [`KeyBucket`]). Keying on the hash instead of an owned string means
    /// interning a **new** key stores its text exactly once, in `keys`;
    /// the old `FxHashMap<Box<str>, _>` design paid a second allocation
    /// per distinct key for the map's own copy.
    map: FxHashMap<u64, KeyBucket>,
    keys: Vec<Box<str>>,
    /// `(value symbol, prefix length) → key symbol` memo; the only place
    /// values are rendered.
    prefix_cache: FxHashMap<u64, KeySymbol>,
    /// `(left, right) key symbols → concatenated key symbol` memo, packed
    /// into one `u64` so a cache hit allocates nothing.
    concat_cache: FxHashMap<u64, KeySymbol>,
    renders: u64,
}

impl Default for KeyPool {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyPool {
    /// An empty pool (containing only the reserved `""` entry).
    pub fn new() -> Self {
        let mut pool = Self {
            map: FxHashMap::default(),
            keys: Vec::new(),
            prefix_cache: FxHashMap::default(),
            concat_cache: FxHashMap::default(),
            renders: 0,
        };
        let empty = pool.intern_str("");
        debug_assert_eq!(empty, KeySymbol::EMPTY);
        pool
    }

    /// Intern an already-rendered key string (idempotent). A distinct key
    /// costs exactly **one** allocation — the `Box<str>` in the symbol
    /// table; the dedup index stores only its hash.
    pub fn intern_str(&mut self, s: &str) -> KeySymbol {
        let h = hash_key_str(s);
        if let Some(bucket) = self.map.get(&h) {
            for k in bucket.iter() {
                if &*self.keys[k.index()] == s {
                    return k;
                }
            }
        }
        let k = KeySymbol(
            u32::try_from(self.keys.len()).expect("more than u32::MAX distinct keys interned"),
        );
        self.keys.push(s.into());
        self.map
            .entry(h)
            .and_modify(|bucket| bucket.push(k))
            .or_insert(KeyBucket::One(k));
        k
    }

    /// The key symbol of the first `prefix_len` characters of `sym`'s
    /// rendered value (`0` = the whole value). The value is rendered **at
    /// most once per distinct `(sym, prefix_len)`**; `⊥` short-circuits to
    /// [`KeySymbol::EMPTY`] without rendering anything.
    ///
    /// The prefix memo is keyed on the symbol's raw index, so a `KeyPool`
    /// must only ever be used with **one** `ValuePool`: feeding symbols
    /// from a second pool would alias its indices onto the first pool's
    /// cached prefixes and silently return wrong keys. Debug builds assert
    /// this by re-deriving cached prefixes.
    pub fn prefix_of(&mut self, pool: &ValuePool, sym: Symbol, prefix_len: usize) -> KeySymbol {
        if sym.is_null() {
            return KeySymbol::EMPTY;
        }
        let len32 = u32::try_from(prefix_len).unwrap_or(u32::MAX);
        let cache_key = (u64::from(sym.raw()) << 32) | u64::from(len32);
        if let Some(&k) = self.prefix_cache.get(&cache_key) {
            debug_assert_eq!(
                self.resolve(k),
                str_prefix(&pool.resolve(sym).render(), prefix_len),
                "KeyPool used with a second ValuePool: symbol {} aliases a cached prefix",
                sym.raw(),
            );
            return k;
        }
        self.renders += 1;
        let value = pool.resolve(sym);
        // Text values (the typical key attribute) are sliced in place —
        // a miss allocates only inside `intern_str`, nothing transient.
        let k = match value.as_text() {
            Some(s) => self.intern_str(str_prefix(s, prefix_len)),
            None => {
                let rendered = value.render();
                self.intern_str(str_prefix(&rendered, prefix_len))
            }
        };
        self.prefix_cache.insert(cache_key, k);
        k
    }

    /// The key symbol of `a` followed by `b` (memoized under the packed
    /// `(a, b)` pair — a hit is one hash probe, no allocation). Empty
    /// operands short-circuit.
    pub fn concat2(&mut self, a: KeySymbol, b: KeySymbol) -> KeySymbol {
        if a.is_empty_key() {
            return b;
        }
        if b.is_empty_key() {
            return a;
        }
        let cache_key = (u64::from(a.raw()) << 32) | u64::from(b.raw());
        if let Some(&k) = self.concat_cache.get(&cache_key) {
            return k;
        }
        let mut s = String::with_capacity(self.resolve(a).len() + self.resolve(b).len());
        s.push_str(self.resolve(a));
        s.push_str(self.resolve(b));
        let k = self.intern_str(&s);
        self.concat_cache.insert(cache_key, k);
        k
    }

    /// The key symbol of the concatenation of `parts`: a left fold over
    /// [`KeyPool::concat2`], so every prefix of the part sequence is
    /// memoized too. Zero parts yield [`KeySymbol::EMPTY`].
    pub fn concat(&mut self, parts: &[KeySymbol]) -> KeySymbol {
        parts
            .iter()
            .fold(KeySymbol::EMPTY, |acc, &p| self.concat2(acc, p))
    }

    /// The rendered key string behind a symbol issued by this pool.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was issued by a different (larger) pool.
    #[inline]
    pub fn resolve(&self, k: KeySymbol) -> &str {
        &self.keys[k.index()]
    }

    /// Number of distinct interned keys (including the reserved `""`).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the pool holds only the reserved `""` entry.
    pub fn is_empty(&self) -> bool {
        self.keys.len() <= 1
    }

    /// How many prefix-cache misses have occurred — i.e. how many times a
    /// [`Value`]'s text was actually read to extract a key prefix (text
    /// values are sliced in place; other variants go through
    /// [`Value::render`]). Flat counts across repeated key extraction
    /// prove the caching works — the reduction layer's multi-pass tests
    /// assert passes ≥ 2 add **zero**.
    pub fn render_count(&self) -> u64 {
        self.renders
    }

    /// The pool's current [`PoolSnapshot`] (size + render counter).
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            len: self.keys.len(),
            renders: self.renders,
        }
    }

    /// All interned `(KeySymbol, &str)` entries in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (KeySymbol, &str)> + '_ {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, s)| (KeySymbol(i as u32), s.as_ref()))
    }

    /// Freeze the pool's current contents into a rank table:
    /// `rank(a) < rank(b) ⟺ resolve(a) < resolve(b)`. Sorting entries by
    /// rank is byte-identical to sorting by key string, in `O(1)` integer
    /// compares — this is what makes SNM passes ≥ 2 sort-only.
    ///
    /// Ranks cover the keys interned so far; symbols interned later are out
    /// of range for the returned table.
    pub fn lexicographic_ranks(&self) -> KeyRanks {
        let mut order: Vec<u32> = (0..self.keys.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
        let mut ranks = vec![0u32; self.keys.len()].into_boxed_slice();
        for (rank, &sym) in order.iter().enumerate() {
            ranks[sym as usize] = rank as u32;
        }
        KeyRanks { ranks }
    }

    /// The prefix-memo entries `(packed (value symbol, prefix len) key,
    /// key symbol)` — exported by the snapshot codec so a restored pool
    /// renders nothing on its first warm pass.
    pub(crate) fn prefix_cache_entries(&self) -> impl Iterator<Item = (u64, KeySymbol)> + '_ {
        self.prefix_cache.iter().map(|(&k, &v)| (k, v))
    }

    /// The concat-memo entries `(packed (left, right) key, key symbol)`.
    pub(crate) fn concat_cache_entries(&self) -> impl Iterator<Item = (u64, KeySymbol)> + '_ {
        self.concat_cache.iter().map(|(&k, &v)| (k, v))
    }

    /// Re-seed one prefix-memo entry (snapshot restore; the codec has
    /// already range-checked `sym` against this pool).
    pub(crate) fn restore_prefix_entry(&mut self, cache_key: u64, sym: KeySymbol) {
        self.prefix_cache.insert(cache_key, sym);
    }

    /// Re-seed one concat-memo entry (snapshot restore).
    pub(crate) fn restore_concat_entry(&mut self, cache_key: u64, sym: KeySymbol) {
        self.concat_cache.insert(cache_key, sym);
    }

    /// Restore the render counter (snapshot restore): a reopened session
    /// reports the same lifetime render count it had when saved, so the
    /// "warm reruns render nothing" delta assertions keep working across
    /// a save/open boundary.
    pub(crate) fn set_render_count(&mut self, renders: u64) {
        self.renders = renders;
    }

    /// The shard a key symbol belongs to under a `shards`-way partition of
    /// the key space: `stable_key_hash(resolve(k)) % shards`.
    ///
    /// The assignment depends only on the key **string**, never on the
    /// symbol index — two pools that interned the same keys in different
    /// orders agree on every shard, which is what lets a sharded pipeline
    /// partition blocks deterministically. `shards` is clamped to ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was issued by a different (larger) pool.
    pub fn shard_of(&self, k: KeySymbol, shards: usize) -> usize {
        shard_of_key(self.resolve(k), shards)
    }
}

/// One hash bucket of the [`KeyPool`] dedup index: the symbols whose key
/// strings share an `FxHash` value. Inline for the overwhelmingly common
/// singleton case (no allocation), spilling into a `Vec` on collision.
#[derive(Debug, Clone)]
enum KeyBucket {
    One(KeySymbol),
    Many(Vec<KeySymbol>),
}

impl KeyBucket {
    fn iter(&self) -> impl Iterator<Item = KeySymbol> + '_ {
        match self {
            KeyBucket::One(k) => std::slice::from_ref(k).iter().copied(),
            KeyBucket::Many(ks) => ks.iter().copied(),
        }
    }

    fn push(&mut self, k: KeySymbol) {
        match self {
            KeyBucket::One(first) => *self = KeyBucket::Many(vec![*first, k]),
            KeyBucket::Many(ks) => ks.push(k),
        }
    }
}

/// A stable hash of a blocking-key string, for shard assignment.
///
/// FNV-1a over the UTF-8 bytes: the value depends only on the string
/// itself, so it is identical across processes, platforms, pool
/// interning orders, and library versions — the properties a sharded
/// pipeline needs so that re-running with the same shard count always
/// routes a key to the same shard. This is deliberately **not**
/// `hash_key_str` (the `FxHash` dedup-index hash), whose output we
/// keep free to change.
pub fn stable_key_hash(key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The shard a key string belongs to under a `shards`-way partition:
/// `stable_key_hash(key) % shards`, with `shards` clamped to ≥ 1.
pub fn shard_of_key(key: &str, shards: usize) -> usize {
    (stable_key_hash(key) % shards.max(1) as u64) as usize
}

/// The `FxHash` of a key string (the [`KeyPool`] dedup index key).
fn hash_key_str(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::util::FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

/// The first `prefix_len` characters of `s` as a subslice (`0` = all of
/// `s`), without allocating.
fn str_prefix(s: &str, prefix_len: usize) -> &str {
    if prefix_len == 0 {
        return s;
    }
    match s.char_indices().nth(prefix_len) {
        Some((end, _)) => &s[..end],
        None => s,
    }
}

/// Lexicographic ranks of a frozen [`KeyPool`] (see
/// [`KeyPool::lexicographic_ranks`]): a dense `KeySymbol → u32` table whose
/// order agrees with the key strings' byte order.
#[derive(Debug, Clone)]
pub struct KeyRanks {
    ranks: Box<[u32]>,
}

impl KeyRanks {
    /// Build a rank table from a **complete sorted order** of a pool's
    /// symbols: `order[i]` is the symbol with rank `i`, and every symbol
    /// of the pool appears exactly once. This is the incremental-growth
    /// companion of [`KeyPool::lexicographic_ranks`]: a session that keeps
    /// the sorted symbol order resident only has to *insert* newly
    /// interned keys into it (no re-sort) and rebuild the dense rank array
    /// in `O(len)`.
    pub fn from_sorted(order: &[KeySymbol]) -> Self {
        let mut ranks = vec![0u32; order.len()].into_boxed_slice();
        for (rank, &sym) in order.iter().enumerate() {
            ranks[sym.index()] = rank as u32;
        }
        Self { ranks }
    }

    /// The rank of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` was interned after this table was built (or by a
    /// different pool).
    #[inline]
    pub fn rank(&self, k: KeySymbol) -> u32 {
        self.ranks[k.index()]
    }

    /// Number of ranked keys.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the table is empty (built off a non-standard empty pool).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_key_hash_matches_fnv1a_reference() {
        // Pinned FNV-1a test vectors: the shard assignment is part of the
        // sharded pipeline's determinism contract, so the hash must never
        // silently change.
        assert_eq!(stable_key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_key_hash("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn shard_of_is_interning_order_independent() {
        let mut fwd = KeyPool::new();
        let mut rev = KeyPool::new();
        let keys = ["smi49", "jon22", "doe31", "smi50"];
        let fwd_syms: Vec<_> = keys.iter().map(|k| fwd.intern_str(k)).collect();
        let rev_syms: Vec<_> = keys.iter().rev().map(|k| rev.intern_str(k)).collect();
        for shards in 1..=8 {
            for (i, &s) in fwd_syms.iter().enumerate() {
                let r = rev_syms[keys.len() - 1 - i];
                assert_eq!(fwd.shard_of(s, shards), rev.shard_of(r, shards));
                assert!(fwd.shard_of(s, shards) < shards);
                assert_eq!(fwd.shard_of(s, shards), shard_of_key(keys[i], shards));
            }
        }
    }

    #[test]
    fn shard_of_clamps_zero_shards_to_one() {
        let mut pool = KeyPool::new();
        let s = pool.intern_str("anything");
        assert_eq!(pool.shard_of(s, 0), 0);
        assert_eq!(shard_of_key("anything", 0), 0);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut pool = ValuePool::new();
        let a1 = pool.intern(&Value::from("Tim"));
        let a2 = pool.intern(&Value::from("Tim"));
        assert_eq!(a1, a2);
        assert_eq!(pool.len(), 2); // ⊥ + "Tim"
    }

    #[test]
    fn symbols_are_dense_and_stable() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let kim = pool.intern(&Value::from("Kim"));
        let n30 = pool.intern(&Value::Int(30));
        assert_eq!(tim.index(), 1);
        assert_eq!(kim.index(), 2);
        assert_eq!(n30.index(), 3);
        // Re-interning earlier values does not disturb assignments.
        assert_eq!(pool.intern(&Value::from("Tim")), tim);
        assert_eq!(pool.resolve(kim), &Value::from("Kim"));
        assert_eq!(pool.resolve(n30), &Value::Int(30));
    }

    #[test]
    fn null_is_reserved_symbol_zero() {
        let mut pool = ValuePool::new();
        assert_eq!(pool.intern(&Value::Null), Symbol::NULL);
        assert!(Symbol::NULL.is_null());
        assert!(pool.lookup(&Value::Null).expect("⊥ preinterned").is_null());
        assert_eq!(pool.resolve(Symbol::NULL), &Value::Null);
        // A fresh pool is "empty" despite the reserved entry.
        assert!(ValuePool::new().is_empty());
        assert!(!pool.is_empty() || pool.len() == 1);
    }

    #[test]
    fn distinct_values_get_distinct_symbols() {
        let mut pool = ValuePool::new();
        // Cross-variant values that render identically must stay distinct.
        let text = pool.intern(&Value::from("30"));
        let int = pool.intern(&Value::Int(30));
        let real = pool.intern(&Value::Real(30.0));
        assert_ne!(text, int);
        assert_ne!(int, real);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn lookup_misses_report_none() {
        let pool = ValuePool::new();
        assert_eq!(pool.lookup(&Value::from("absent")), None);
    }

    #[test]
    fn iter_yields_symbols_in_order() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let n30 = pool.intern(&Value::Int(30));
        let entries: Vec<(Symbol, Value)> = pool.iter().map(|(s, v)| (s, v.clone())).collect();
        assert_eq!(
            entries,
            vec![
                (Symbol::NULL, Value::Null),
                (tim, Value::from("Tim")),
                (n30, Value::Int(30)),
            ]
        );
    }

    #[test]
    fn symbol_map_is_dense_per_symbol_storage() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let kim = pool.intern(&Value::from("Kimberly"));
        let map = SymbolMap::build(&pool, |(_, v)| match v {
            Value::Text(s) => s.len(),
            _ => 0,
        });
        assert_eq!(map.len(), pool.len());
        assert!(!map.is_empty());
        assert_eq!(*map.get(Symbol::NULL), 0);
        assert_eq!(*map.get(tim), 3);
        assert_eq!(*map.get(kim), 8);
    }

    #[test]
    fn float_canonicalization_is_respected() {
        // Value's Eq unifies -0.0/0.0 and NaNs; interning must follow.
        let mut pool = ValuePool::new();
        let zero = pool.intern(&Value::Real(0.0));
        let neg_zero = pool.intern(&Value::Real(-0.0));
        assert_eq!(zero, neg_zero);
    }

    #[test]
    fn key_pool_renders_each_prefix_once() {
        let mut vp = ValuePool::new();
        let john = vp.intern(&Value::from("John"));
        let mut kp = KeyPool::new();
        let k1 = kp.prefix_of(&vp, john, 3);
        assert_eq!(kp.resolve(k1), "Joh");
        assert_eq!(kp.render_count(), 1);
        // Same (symbol, len): cached, no new render.
        assert_eq!(kp.prefix_of(&vp, john, 3), k1);
        assert_eq!(kp.render_count(), 1);
        // Different len: one more render, distinct key.
        let k2 = kp.prefix_of(&vp, john, 2);
        assert_eq!(kp.resolve(k2), "Jo");
        assert_eq!(kp.render_count(), 2);
    }

    #[test]
    fn key_pool_null_is_empty_without_render() {
        let vp = ValuePool::new();
        let mut kp = KeyPool::new();
        assert_eq!(kp.prefix_of(&vp, Symbol::NULL, 3), KeySymbol::EMPTY);
        assert!(KeySymbol::EMPTY.is_empty_key());
        assert_eq!(kp.resolve(KeySymbol::EMPTY), "");
        assert_eq!(kp.render_count(), 0);
    }

    #[test]
    fn key_pool_prefix_len_zero_takes_whole_value() {
        let mut vp = ValuePool::new();
        let sym = vp.intern(&Value::from("Johannes"));
        let mut kp = KeyPool::new();
        let k = kp.prefix_of(&vp, sym, 0);
        assert_eq!(kp.resolve(k), "Johannes");
    }

    #[test]
    fn key_pool_prefix_counts_chars_not_bytes() {
        let mut vp = ValuePool::new();
        let sym = vp.intern(&Value::from("Łukasz"));
        let mut kp = KeyPool::new();
        let k = kp.prefix_of(&vp, sym, 3);
        assert_eq!(kp.resolve(k), "Łuk");
    }

    #[test]
    fn key_pool_concat_memoizes() {
        let mut kp = KeyPool::new();
        let a = kp.intern_str("Joh");
        let b = kp.intern_str("pi");
        let ab = kp.concat(&[a, b]);
        assert_eq!(kp.resolve(ab), "Johpi");
        assert_eq!(kp.concat(&[a, b]), ab);
        // Degenerate shapes.
        assert_eq!(kp.concat(&[]), KeySymbol::EMPTY);
        assert_eq!(kp.concat(&[a]), a);
        assert_eq!(kp.concat(&[KeySymbol::EMPTY, a]), a); // "" + "Joh" = "Joh"
    }

    #[test]
    fn key_bucket_collision_chain_stays_ordered() {
        let mut b = KeyBucket::One(KeySymbol(1));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![KeySymbol(1)]);
        b.push(KeySymbol(7));
        b.push(KeySymbol(3));
        assert_eq!(
            b.iter().collect::<Vec<_>>(),
            vec![KeySymbol(1), KeySymbol(7), KeySymbol(3)]
        );
    }

    #[test]
    fn intern_str_dedups_across_many_keys() {
        let mut kp = KeyPool::new();
        let syms: Vec<KeySymbol> = (0..500)
            .map(|i| kp.intern_str(&format!("k{i:03}")))
            .collect();
        assert_eq!(kp.len(), 501); // + reserved ""
        for (i, &k) in syms.iter().enumerate() {
            assert_eq!(kp.resolve(k), format!("k{i:03}"));
            assert_eq!(
                kp.intern_str(&format!("k{i:03}")),
                k,
                "re-intern changed symbol"
            );
        }
        assert_eq!(kp.len(), 501);
    }

    #[test]
    fn symbol_map_extend_covers_pool_growth() {
        let mut pool = ValuePool::new();
        let tim = pool.intern(&Value::from("Tim"));
        let mut map = SymbolMap::build(&pool, |(_, v)| v.render().len());
        assert_eq!(map.len(), 2);
        let kim = pool.intern(&Value::from("Kimberly"));
        map.extend(&pool, |(_, v)| v.render().len());
        assert_eq!(map.len(), pool.len());
        assert_eq!(*map.get(tim), 3); // untouched
        assert_eq!(*map.get(kim), 8);
        // No growth → no-op (the closure must not run).
        map.extend(&pool, |_| panic!("no new symbols"));
    }

    #[test]
    fn pool_snapshots_certify_reuse() {
        let mut vp = ValuePool::new();
        let before = vp.snapshot();
        let tim = vp.intern(&Value::from("Tim"));
        let after = vp.snapshot();
        assert_eq!(before.grown_by(after), 1);
        assert_eq!(before.rendered_by(after), 0);
        // Re-interning is growth-free.
        vp.intern(&Value::from("Tim"));
        assert_eq!(vp.snapshot(), after);

        let mut kp = KeyPool::new();
        let kbefore = kp.snapshot();
        kp.prefix_of(&vp, tim, 2);
        let kafter = kp.snapshot();
        assert_eq!(kbefore.grown_by(kafter), 1);
        assert_eq!(kbefore.rendered_by(kafter), 1);
        // A warm repeat neither grows nor renders.
        kp.prefix_of(&vp, tim, 2);
        assert_eq!(kp.snapshot(), kafter);
    }

    #[test]
    fn key_ranks_from_sorted_matches_full_rebuild() {
        let mut kp = KeyPool::new();
        for s in ["Johpi", "Jimba", "Tomme", "Łuk"] {
            kp.intern_str(s);
        }
        let full = kp.lexicographic_ranks();
        let mut order: Vec<KeySymbol> = kp.iter().map(|(k, _)| k).collect();
        order.sort_by(|&a, &b| kp.resolve(a).cmp(kp.resolve(b)));
        let incremental = KeyRanks::from_sorted(&order);
        for (k, _) in kp.iter() {
            assert_eq!(incremental.rank(k), full.rank(k));
        }
    }

    #[test]
    fn key_ranks_agree_with_string_order() {
        let mut kp = KeyPool::new();
        let strings = ["Johpi", "Jimba", "", "Tomme", "Joh", "Łuk", "Seapi"];
        let syms: Vec<KeySymbol> = strings.iter().map(|s| kp.intern_str(s)).collect();
        let ranks = kp.lexicographic_ranks();
        assert_eq!(ranks.len(), kp.len());
        for (i, &a) in syms.iter().enumerate() {
            for &b in &syms[i + 1..] {
                assert_eq!(
                    ranks.rank(a).cmp(&ranks.rank(b)),
                    kp.resolve(a).cmp(kp.resolve(b)),
                    "{:?} vs {:?}",
                    kp.resolve(a),
                    kp.resolve(b)
                );
            }
        }
    }
}
