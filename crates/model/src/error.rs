//! Error type for model construction and world enumeration.

use std::fmt;

/// Errors raised while building or manipulating probabilistic data.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A probability was outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// What the probability was attached to.
        context: &'static str,
    },
    /// The probabilities of a distribution summed to more than 1.
    MassExceeded {
        /// The offending sum.
        sum: f64,
        /// What the distribution describes.
        context: &'static str,
    },
    /// A tuple's arity did not match its schema.
    SchemaMismatch {
        /// Number of attributes the schema defines.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// Attempted to union / compare relations with different schemas.
    IncompatibleSchemas,
    /// A pattern value (e.g. `mu*`) matched nothing in its domain.
    PatternNoMatch {
        /// The pattern as written.
        pattern: String,
        /// The domain searched.
        domain: String,
    },
    /// An x-tuple must contain at least one alternative.
    EmptyXTuple,
    /// A value distribution must contain at least ⊥ or one alternative —
    /// raised when explicit construction yields literally nothing.
    EmptyDistribution,
    /// Possible-world enumeration would exceed the configured limit.
    WorldLimitExceeded {
        /// Number of worlds that full enumeration would produce.
        count: u128,
        /// The configured limit.
        limit: u128,
    },
    /// Expanding attribute-level uncertainty into alternatives would exceed
    /// the configured limit.
    ExpansionLimitExceeded {
        /// Number of alternatives expansion would produce.
        count: u128,
        /// The configured limit.
        limit: u128,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProbability { value, context } => {
                write!(
                    f,
                    "invalid probability {value} for {context}: must be in [0, 1]"
                )
            }
            Self::MassExceeded { sum, context } => {
                write!(f, "probability mass {sum} exceeds 1 for {context}")
            }
            Self::SchemaMismatch { expected, got } => {
                write!(
                    f,
                    "schema mismatch: expected {expected} attributes, got {got}"
                )
            }
            Self::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            Self::IncompatibleSchemas => write!(f, "relations have incompatible schemas"),
            Self::PatternNoMatch { pattern, domain } => {
                write!(
                    f,
                    "pattern {pattern:?} matches nothing in domain {domain:?}"
                )
            }
            Self::EmptyXTuple => write!(f, "x-tuple must have at least one alternative"),
            Self::EmptyDistribution => write!(f, "distribution must not be empty"),
            Self::WorldLimitExceeded { count, limit } => {
                write!(
                    f,
                    "possible-world enumeration of {count} worlds exceeds limit {limit}"
                )
            }
            Self::ExpansionLimitExceeded { count, limit } => {
                write!(
                    f,
                    "expansion into {count} alternatives exceeds limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Validate that `p` is a probability in `[0, 1]`.
pub(crate) fn check_probability(p: f64, context: &'static str) -> Result<f64, ModelError> {
    if p.is_nan() || !(0.0..=1.0 + 1e-9).contains(&p) {
        return Err(ModelError::InvalidProbability { value: p, context });
    }
    Ok(p.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (
                ModelError::InvalidProbability {
                    value: -0.2,
                    context: "tuple",
                },
                "invalid probability",
            ),
            (
                ModelError::MassExceeded {
                    sum: 1.4,
                    context: "pvalue",
                },
                "exceeds 1",
            ),
            (
                ModelError::SchemaMismatch {
                    expected: 2,
                    got: 3,
                },
                "schema mismatch",
            ),
            (
                ModelError::UnknownAttribute("x".into()),
                "unknown attribute",
            ),
            (ModelError::IncompatibleSchemas, "incompatible"),
            (
                ModelError::PatternNoMatch {
                    pattern: "mu*".into(),
                    domain: "jobs".into(),
                },
                "matches nothing",
            ),
            (ModelError::EmptyXTuple, "at least one alternative"),
            (ModelError::EmptyDistribution, "must not be empty"),
            (
                ModelError::WorldLimitExceeded {
                    count: 10,
                    limit: 5,
                },
                "exceeds limit",
            ),
            (
                ModelError::ExpansionLimitExceeded {
                    count: 10,
                    limit: 5,
                },
                "exceeds limit",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn check_probability_accepts_unit_interval() {
        assert_eq!(check_probability(0.0, "t").unwrap(), 0.0);
        assert_eq!(check_probability(1.0, "t").unwrap(), 1.0);
        assert_eq!(check_probability(0.5, "t").unwrap(), 0.5);
        // Tolerates tiny floating-point overshoot, clamping to 1.
        assert_eq!(check_probability(1.0 + 1e-12, "t").unwrap(), 1.0);
    }

    #[test]
    fn check_probability_rejects_out_of_range() {
        assert!(check_probability(-0.1, "t").is_err());
        assert!(check_probability(1.1, "t").is_err());
        assert!(check_probability(f64::NAN, "t").is_err());
        assert!(check_probability(f64::INFINITY, "t").is_err());
    }
}
