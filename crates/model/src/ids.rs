//! Lightweight identifiers for tuples across one or more source relations.

use std::fmt;

/// Identifies a source relation in a multi-source integration scenario
/// (e.g. ℛ3 and ℛ4 of the paper are two sources being consolidated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SourceId(pub u16);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A stable handle to one (x-)tuple: source relation + row index.
///
/// Candidate pairs, executed-matching matrices (Fig. 12) and ground-truth
/// maps are all expressed over `TupleHandle`s, so intra-source *and*
/// inter-source matchings are representable (the paper's Section V example
/// applies SNM to ℛ34 = ℛ3 ∪ ℛ4 and counts both kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TupleHandle {
    /// The source relation.
    pub source: SourceId,
    /// Row index within the source.
    pub row: u32,
}

impl TupleHandle {
    /// A handle for row `row` of source `source`.
    pub fn new(source: u16, row: u32) -> Self {
        Self {
            source: SourceId(source),
            row,
        }
    }
}

impl fmt::Display for TupleHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.source, self.row)
    }
}

/// An unordered pair of tuple handles, canonicalized so that
/// `(a, b) == (b, a)`. This is the unit the decision layer classifies and
/// the unit the reduction layer generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PairHandle {
    /// Smaller handle (by `(source, row)` order).
    pub a: TupleHandle,
    /// Larger handle.
    pub b: TupleHandle,
}

impl PairHandle {
    /// Canonicalize a pair; returns `None` for a self-pair, which is
    /// meaningless in duplicate detection (the paper's sorting-alternatives
    /// method explicitly skips them).
    pub fn new(x: TupleHandle, y: TupleHandle) -> Option<Self> {
        use std::cmp::Ordering;
        match x.cmp(&y) {
            Ordering::Less => Some(Self { a: x, b: y }),
            Ordering::Greater => Some(Self { a: y, b: x }),
            Ordering::Equal => None,
        }
    }

    /// Whether the pair crosses two different sources.
    pub fn is_intersource(&self) -> bool {
        self.a.source != self.b.source
    }
}

impl fmt::Display for PairHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_canonical() {
        let t1 = TupleHandle::new(0, 5);
        let t2 = TupleHandle::new(1, 2);
        let p1 = PairHandle::new(t1, t2).unwrap();
        let p2 = PairHandle::new(t2, t1).unwrap();
        assert_eq!(p1, p2);
        assert!(p1.a < p1.b);
    }

    #[test]
    fn self_pair_rejected() {
        let t = TupleHandle::new(3, 3);
        assert!(PairHandle::new(t, t).is_none());
    }

    #[test]
    fn intersource_detection() {
        let same = PairHandle::new(TupleHandle::new(0, 1), TupleHandle::new(0, 2)).unwrap();
        let cross = PairHandle::new(TupleHandle::new(0, 1), TupleHandle::new(1, 1)).unwrap();
        assert!(!same.is_intersource());
        assert!(cross.is_intersource());
    }

    #[test]
    fn display_formats() {
        let t = TupleHandle::new(3, 2);
        assert_eq!(t.to_string(), "R3[2]");
        let p = PairHandle::new(TupleHandle::new(0, 1), TupleHandle::new(1, 0)).unwrap();
        assert_eq!(p.to_string(), "(R0[1], R1[0])");
    }
}
