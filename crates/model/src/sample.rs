//! Monte Carlo sampling of possible worlds.
//!
//! Exact world enumeration is exponential in the number of x-tuples; for
//! expectations over many tuples (or as a cross-check of the closed-form
//! Eq. 6 machinery) independent sampling converges at the usual `1/√n`
//! rate. The sampler is deterministic under a seed, like everything else
//! in this workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::world::World;
use crate::xtuple::XTuple;

/// A seeded sampler of possible worlds over a fixed set of x-tuples.
#[derive(Debug)]
pub struct WorldSampler<'a> {
    tuples: &'a [XTuple],
    rng: StdRng,
    /// Per tuple: cumulative probabilities of its outcomes
    /// (alternatives…, absence).
    cumulative: Vec<Vec<f64>>,
}

impl<'a> WorldSampler<'a> {
    /// A sampler over `tuples` with the given seed.
    pub fn new(tuples: &'a [XTuple], seed: u64) -> Self {
        let cumulative = tuples
            .iter()
            .map(|t| {
                let mut acc = 0.0;
                let mut cum: Vec<f64> = t
                    .alternatives()
                    .iter()
                    .map(|a| {
                        acc += a.probability();
                        acc
                    })
                    .collect();
                cum.push(1.0); // absence absorbs the remaining mass
                cum
            })
            .collect();
        Self {
            tuples,
            rng: StdRng::seed_from_u64(seed),
            cumulative,
        }
    }

    /// Draw one world from the exact distribution (absence included for
    /// maybe tuples).
    pub fn sample(&mut self) -> World {
        let mut choices = Vec::with_capacity(self.tuples.len());
        let mut probability = 1.0;
        for (t, cum) in self.tuples.iter().zip(&self.cumulative) {
            let u: f64 = self.rng.random();
            let idx = cum.partition_point(|&c| c < u);
            if idx < t.len() {
                choices.push(Some(idx));
                probability *= t.alternatives()[idx].probability();
            } else {
                choices.push(None);
                probability *= 1.0 - t.probability();
            }
        }
        World {
            choices,
            probability,
        }
    }

    /// Draw one world **conditioned on the event B** (every tuple present):
    /// each tuple's alternative is drawn from its conditioned distribution
    /// `p(tⁱ)/p(t)` — the sampling analogue of Eq. 6's conditioning.
    pub fn sample_full(&mut self) -> World {
        let mut choices = Vec::with_capacity(self.tuples.len());
        let mut probability = 1.0;
        for (t, cum) in self.tuples.iter().zip(&self.cumulative) {
            let total = t.probability();
            let u: f64 = self.rng.random::<f64>() * total;
            let idx = cum[..t.len()].partition_point(|&c| c < u).min(t.len() - 1);
            choices.push(Some(idx));
            probability *= t.alternatives()[idx].probability();
        }
        World {
            choices,
            probability,
        }
    }

    /// Monte Carlo estimate of `E[f(world) | B]` from `n` conditioned
    /// samples.
    pub fn estimate_full<F: FnMut(&World) -> f64>(&mut self, n: usize, mut f: F) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for _ in 0..n {
            let w = self.sample_full();
            acc += f(&w);
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::world::enumerate_worlds;

    fn fig7_tuples() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        vec![
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn unconditioned_sampling_matches_world_distribution() {
        let ts = fig7_tuples();
        let mut sampler = WorldSampler::new(&ts, 42);
        let n = 60_000;
        let mut counts: std::collections::HashMap<Vec<Option<usize>>, usize> =
            std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(sampler.sample().choices).or_insert(0) += 1;
        }
        for w in enumerate_worlds(&ts, 100).unwrap() {
            let got = *counts.get(&w.choices).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (got - w.probability).abs() < 0.01,
                "world {:?}: {} vs {}",
                w.choices,
                got,
                w.probability
            );
        }
    }

    #[test]
    fn conditioned_sampling_reproduces_fig7_posterior() {
        // P(I1|B) = 1/3, P(I2|B) = 2/9, P(I3|B) = 4/9.
        let ts = fig7_tuples();
        let mut sampler = WorldSampler::new(&ts, 7);
        let n = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let w = sampler.sample_full();
            assert!(w.is_full());
            counts[w.choices[0].unwrap()] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 1.0 / 3.0).abs() < 0.01, "{freqs:?}");
        assert!((freqs[1] - 2.0 / 9.0).abs() < 0.01, "{freqs:?}");
        assert!((freqs[2] - 4.0 / 9.0).abs() < 0.01, "{freqs:?}");
    }

    #[test]
    fn monte_carlo_expectation_approaches_eq6() {
        // E[sim | B] over Fig. 7's pair: exactly 7/15 (see the decision
        // crate); the MC estimate over the per-world similarities converges.
        let ts = fig7_tuples();
        let sims = [11.0 / 15.0, 7.0 / 15.0, 4.0 / 15.0];
        let mut sampler = WorldSampler::new(&ts, 99);
        let estimate = sampler.estimate_full(40_000, |w| sims[w.choices[0].unwrap()]);
        assert!(
            (estimate - 7.0 / 15.0).abs() < 0.005,
            "estimate = {estimate}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let ts = fig7_tuples();
        let mut a = WorldSampler::new(&ts, 5);
        let mut b = WorldSampler::new(&ts, 5);
        for _ in 0..50 {
            assert_eq!(a.sample().choices, b.sample().choices);
        }
    }

    #[test]
    fn zero_samples_estimate_is_zero() {
        let ts = fig7_tuples();
        let mut sampler = WorldSampler::new(&ts, 1);
        assert_eq!(sampler.estimate_full(0, |_| 1.0), 0.0);
    }
}
